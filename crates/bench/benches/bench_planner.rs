//! Criterion micro-benchmarks of the patrol planner (the Fig. 9a runtime
//! measurement at component scale): allocation MILP across PWL segment
//! counts, and the flow formulation on a tiny instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paws_data::Matrix;
use paws_geo::parks::test_park_spec;
use paws_geo::Park;
use paws_plan::{plan, PlannerConfig, PlannerMethod, PlanningProblem};
use std::hint::black_box;

fn problem(patrol_length_km: f64) -> PlanningProblem {
    let park = Park::generate(&test_park_spec(), 7);
    let post = park.patrol_posts[0];
    let grid: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let probs: Vec<Vec<f64>> = (0..park.n_cells())
        .map(|i| {
            let s = 0.1 + 0.8 * ((i * 37) % 100) as f64 / 100.0;
            grid.iter().map(|&e| s * (1.0 - (-0.7 * e).exp())).collect()
        })
        .collect();
    let vars: Vec<Vec<f64>> = (0..park.n_cells())
        .map(|i| {
            let b = 0.05 + 0.4 * ((i * 61) % 100) as f64 / 100.0;
            grid.iter().map(|&e| (b + 0.03 * e).min(0.95)).collect()
        })
        .collect();
    PlanningProblem::from_response(
        &park,
        post,
        &grid,
        &Matrix::from_rows(&probs),
        &Matrix::from_rows(&vars),
        patrol_length_km,
        3,
        1.0,
    )
}

fn bench_allocation_segments(c: &mut Criterion) {
    let problem = problem(10.0);
    let mut group = c.benchmark_group("allocation_milp_by_segments");
    group.sample_size(10);
    for segments in [5usize, 10, 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(segments),
            &segments,
            |b, &segments| {
                let config = PlannerConfig {
                    segments,
                    ..PlannerConfig::default()
                };
                b.iter(|| black_box(plan(&problem, &config)));
            },
        );
    }
    group.finish();
}

fn bench_flow_formulation(c: &mut Criterion) {
    let problem = problem(4.0);
    let config = PlannerConfig {
        method: PlannerMethod::Flow,
        segments: 6,
        ..PlannerConfig::default()
    };
    let mut group = c.benchmark_group("flow_formulation");
    group.sample_size(10);
    group.bench_function("flow_milp_tiny", |b| {
        b.iter(|| black_box(plan(&problem, &config)))
    });
    group.finish();
}

criterion_group!(benches, bench_allocation_segments, bench_flow_formulation);
criterion_main!(benches);
