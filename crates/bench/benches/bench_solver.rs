//! Criterion micro-benchmarks of the LP/MILP solver substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paws_solver::{solve_lp, solve_milp, ConstraintOp, MilpOptions, Model, Sense};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_lp(n_vars: usize, n_constraints: usize, seed: u64) -> Model {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n_vars)
        .map(|i| m.add_continuous(&format!("x{i}"), 0.0, 10.0, rng.gen_range(0.1..1.0)))
        .collect();
    for _ in 0..n_constraints {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen::<f64>() < 0.3 {
                terms.push((v, rng.gen_range(0.1..1.0)));
            }
        }
        if terms.is_empty() {
            terms.push((vars[0], 1.0));
        }
        m.add_constraint(&terms, ConstraintOp::Le, rng.gen_range(5.0..20.0));
    }
    m
}

fn knapsack(n_items: usize, seed: u64) -> Model {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n_items)
        .map(|i| m.add_binary(&format!("x{i}"), rng.gen_range(1.0..20.0)))
        .collect();
    let terms: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(1.0..8.0))).collect();
    m.add_constraint(&terms, ConstraintOp::Le, n_items as f64);
    m
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_random_lp");
    for size in [20usize, 60, 120] {
        let model = random_lp(size, size / 2, 3);
        group.bench_with_input(BenchmarkId::from_parameter(size), &model, |b, model| {
            b.iter(|| black_box(solve_lp(model, None)));
        });
    }
    group.finish();
}

fn bench_milp(c: &mut Criterion) {
    let model = knapsack(16, 5);
    c.bench_function("branch_and_bound_knapsack_16", |b| {
        b.iter(|| black_box(solve_milp(&model, &MilpOptions::default())))
    });
}

criterion_group!(benches, bench_lp, bench_milp);
criterion_main!(benches);
