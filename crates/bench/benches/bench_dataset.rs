//! Criterion micro-benchmarks of the data substrate: park generation,
//! history simulation and dataset assembly (the inputs behind Table I and
//! Fig. 4).

use criterion::{criterion_group, criterion_main, Criterion};
use paws_core::Scenario;
use paws_data::{build_dataset, Discretization};
use paws_geo::parks::test_park_spec;
use paws_geo::Park;
use std::hint::black_box;

fn bench_park_generation(c: &mut Criterion) {
    let spec = test_park_spec();
    c.bench_function("park_generate_500_cells", |b| {
        b.iter(|| black_box(Park::generate(&spec, 7)))
    });
}

fn bench_history_simulation(c: &mut Criterion) {
    let scenario = Scenario::test_scenario(7);
    c.bench_function("simulate_one_year_history", |b| {
        b.iter(|| black_box(scenario.simulate_years(2014, 1)))
    });
}

fn bench_dataset_build(c: &mut Criterion) {
    let scenario = Scenario::test_scenario(7);
    let history = scenario.simulate_years(2014, 2);
    c.bench_function("build_quarterly_dataset", |b| {
        b.iter(|| {
            black_box(build_dataset(
                &scenario.park,
                &history,
                Discretization::quarterly(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_park_generation,
    bench_history_simulation,
    bench_dataset_build
);
criterion_main!(benches);
