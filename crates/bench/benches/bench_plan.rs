//! Criterion benchmarks for the sparse planning stack: dense-tableau vs
//! sparse revised-simplex LP engines on allocation-shaped LPs across cell
//! counts, branch-and-bound node throughput with and without warm-started
//! sparse relaxations, and the column-generation planner on an LLC-scale
//! park. The headline curves (up to study-park and 100k-cell scale, where
//! a criterion loop would take hours on the dense engine) are recorded by
//! `fig8 --llc` / `fig9 --llc` into `results/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paws_bench::full_reach_problem;
use paws_geo::parks::llc_park_spec;
use paws_geo::Park;
use paws_plan::{plan, Decomposition, PlannerConfig};
use paws_solver::{
    solve_lp, solve_lp_dense, solve_milp, ConstraintOp, LpEngine, MilpOptions, Model, Sense,
};
use std::hint::black_box;

/// The park-wide allocation LP at `n_cells` candidate cells: a per-cell λ
/// block over a 6-breakpoint concave utility, one convexity row per cell,
/// one budget row — the exact row/column structure the planner emits.
fn allocation_lp(n_cells: usize) -> Model {
    let xs = [0.0f64, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut m = Model::new(Sense::Maximize);
    let mut budget_terms = Vec::new();
    for i in 0..n_cells {
        let s = 0.1 + 0.8 * ((i * 37) % 100) as f64 / 100.0;
        let rate = 0.3 + 0.5 * ((i * 53) % 97) as f64 / 97.0;
        let lambdas: Vec<_> = xs
            .iter()
            .enumerate()
            .map(|(j, &x)| {
                let y = s * (1.0 - (-rate * x).exp());
                m.add_continuous(&format!("l_{i}_{j}"), 0.0, f64::INFINITY, y)
            })
            .collect();
        let conv: Vec<_> = lambdas.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(&conv, ConstraintOp::Eq, 1.0);
        budget_terms.extend(
            lambdas
                .iter()
                .zip(&xs)
                .filter(|&(_, &x)| x != 0.0)
                .map(|(&v, &x)| (v, x)),
        );
    }
    m.add_constraint(&budget_terms, ConstraintOp::Le, 0.05 * n_cells as f64);
    m
}

fn bench_lp_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_engine_scaling");
    group.sample_size(10);
    for n_cells in [64usize, 256, 1024, 4096] {
        let model = allocation_lp(n_cells);
        group.bench_with_input(BenchmarkId::new("sparse", n_cells), &model, |b, model| {
            b.iter(|| black_box(solve_lp(model, None)))
        });
        // The dense tableau is O(rows × columns) per pivot; past ~256
        // cells a single solve takes seconds, so the dense curve stops
        // early here and continues one-shot in `fig8 --llc`.
        if n_cells <= 256 {
            group.bench_with_input(BenchmarkId::new("dense", n_cells), &model, |b, model| {
                b.iter(|| black_box(solve_lp_dense(model, None)))
            });
        }
    }
    group.finish();
}

/// A deterministic correlated multi-knapsack: enough fractional LP optima
/// that branch-and-bound explores a real tree, so engine timing measures
/// per-node relaxation cost (the sparse engine warm-starts each node from
/// its parent's basis; the dense engine re-solves from scratch).
fn knapsack_milp(n_items: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let items: Vec<_> = (0..n_items)
        .map(|i| {
            let value = 1.0 + ((i * 29) % 17) as f64 / 3.0;
            m.add_binary(&format!("x{i}"), value)
        })
        .collect();
    for (k, period) in [(0usize, 13), (1, 11), (2, 7)] {
        let terms: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + ((i * 31 + k * 5) % period) as f64 / 2.0))
            .collect();
        let cap = terms.iter().map(|(_, w)| w).sum::<f64>() * 0.35;
        m.add_constraint(&terms, ConstraintOp::Le, cap);
    }
    m
}

fn bench_milp_nodes(c: &mut Criterion) {
    let model = knapsack_milp(24);
    let mut group = c.benchmark_group("milp_node_throughput");
    group.sample_size(10);
    for (label, engine) in [
        ("sparse_warm", LpEngine::Sparse),
        ("dense", LpEngine::Dense),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &engine, |b, &engine| {
            let options = MilpOptions {
                engine,
                ..MilpOptions::default()
            };
            b.iter(|| black_box(solve_milp(&model, &options)))
        });
    }
    group.finish();
}

fn bench_colgen_llc(c: &mut Criterion) {
    let park = Park::generate(&llc_park_spec(10_000), 11);
    let problem = full_reach_problem(&park, 500.0, 1.0);
    let config = PlannerConfig {
        decomposition: Decomposition::ColumnGeneration,
        ..PlannerConfig::default()
    };
    let mut group = c.benchmark_group("colgen_planner");
    group.sample_size(10);
    group.bench_function("llc_10k_cells", |b| {
        b.iter(|| black_box(plan(&problem, &config)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lp_engines,
    bench_milp_nodes,
    bench_colgen_llc
);
criterion_main!(benches);
