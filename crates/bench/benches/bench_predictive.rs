//! Criterion micro-benchmarks of the predictive stage (Table II / Fig. 6
//! building blocks): weak-learner training, iWare-E training and park-wide
//! prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paws_core::{train, ModelConfig, Scenario, WeakLearnerKind};
use paws_data::{build_dataset, split_by_test_year, Dataset, Discretization, TrainTestSplit};
use paws_ml::bagging::{BaggingClassifier, BaggingConfig};
use paws_ml::gp::{GaussianProcess, GpConfig};
use std::hint::black_box;

fn setup() -> (Scenario, Dataset, TrainTestSplit) {
    let scenario = Scenario::test_scenario(7);
    let history = scenario.simulate_years(2014, 3);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2016, 2).expect("2016 present");
    (scenario, dataset, split)
}

fn quick_config(learner: WeakLearnerKind, use_iware: bool) -> ModelConfig {
    let mut cfg = ModelConfig::new(learner, use_iware, 7);
    cfg.n_learners = 5;
    cfg.n_estimators = 4;
    cfg.gp_max_points = 120;
    cfg.weight_mode = paws_iware::WeightMode::Uniform;
    cfg
}

fn bench_weak_learners(c: &mut Criterion) {
    let (_, dataset, split) = setup();
    let rows = dataset.feature_rows(&split.train);
    let labels = dataset.labels(&split.train);
    let mut c = c.benchmark_group("weak_learners");
    c.sample_size(20);
    c.bench_function("fit_bagged_trees_10", |b| {
        b.iter(|| {
            black_box(BaggingClassifier::fit(
                &BaggingConfig::trees(10, 3),
                rows.view(),
                &labels,
            ))
        })
    });
    c.bench_function("fit_gp_200_points", |b| {
        b.iter(|| {
            black_box(GaussianProcess::fit(
                &GpConfig {
                    max_points: 200,
                    ..GpConfig::default()
                },
                rows.view(),
                &labels,
                3,
            ))
        })
    });
    c.finish();
}

fn bench_iware_training(c: &mut Criterion) {
    let (_, dataset, split) = setup();
    let mut group = c.benchmark_group("iware_training");
    group.sample_size(10);
    group.bench_function("train_dtb_iware", |b| {
        b.iter(|| {
            black_box(train(
                &dataset,
                &split,
                &quick_config(WeakLearnerKind::DecisionTree, true),
            ))
        })
    });
    group.finish();
}

fn bench_park_prediction(c: &mut Criterion) {
    let (scenario, dataset, split) = setup();
    let model = train(
        &dataset,
        &split,
        &quick_config(WeakLearnerKind::DecisionTree, true),
    );
    // The same variant with the f32 prediction plane selected (training is
    // f64 either way; only the serving arena differs).
    let mut cfg32 = quick_config(WeakLearnerKind::DecisionTree, true);
    cfg32.precision = paws_core::Precision::F32;
    let model32 = train(&dataset, &split, &cfg32);
    // And with the QuickScorer-style bitvector layout (surfaces are
    // bit-identical to the interleaved arena; only the engine differs).
    let mut cfg_bv = quick_config(WeakLearnerKind::DecisionTree, true);
    cfg_bv.layout = paws_core::TraversalLayout::BitVector;
    let model_bv = train(&dataset, &split, &cfg_bv);
    let prev = dataset.coverage.last().unwrap().clone();
    let mut group = c.benchmark_group("park_prediction");
    group.sample_size(20);
    group.bench_function("risk_map_500_cells", |b| {
        b.iter(|| black_box(model.risk_map(&scenario.park, &dataset, &prev, 1.0)))
    });
    group.bench_function("risk_map_500_cells_f32", |b| {
        b.iter(|| black_box(model32.risk_map(&scenario.park, &dataset, &prev, 1.0)))
    });
    group.bench_function("risk_map_500_cells_bitvector", |b| {
        b.iter(|| black_box(model_bv.risk_map(&scenario.park, &dataset, &prev, 1.0)))
    });
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    group.bench_function("park_response_500_cells_6_levels", |b| {
        b.iter(|| black_box(model.park_response(&scenario.park, &dataset, &prev, &grid)))
    });
    group.bench_function("park_response_500_cells_6_levels_f32", |b| {
        b.iter(|| black_box(model32.park_response(&scenario.park, &dataset, &prev, &grid)))
    });
    group.bench_function("park_response_500_cells_6_levels_bitvector", |b| {
        b.iter(|| black_box(model_bv.park_response(&scenario.park, &dataset, &prev, &grid)))
    });
    group.finish();
}

fn bench_park_prediction_llc(c: &mut Criterion) {
    // LLC-scale park (50k cells): the feature matrix (~8 MB) and response
    // surfaces outgrow the last-level cache, which is where the traversal
    // layouts and precision planes actually differ in memory behaviour —
    // the 500-cell test park above stays cache-resident throughout.
    let scenario = paws_core::Scenario::llc_scenario(50_000, 5);
    let history = scenario.simulate_years(2014, 2);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2015, 1).expect("2015 present");
    let prev = dataset.coverage.last().unwrap().clone();
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];

    let mut group = c.benchmark_group("park_prediction_llc");
    group.sample_size(10);
    for (tag, layout, precision) in [
        (
            "",
            paws_core::TraversalLayout::Interleaved,
            paws_core::Precision::F64,
        ),
        (
            "_bitvector",
            paws_core::TraversalLayout::BitVector,
            paws_core::Precision::F64,
        ),
        (
            "_f32",
            paws_core::TraversalLayout::Interleaved,
            paws_core::Precision::F32,
        ),
        (
            "_f32_bitvector",
            paws_core::TraversalLayout::BitVector,
            paws_core::Precision::F32,
        ),
    ] {
        let mut cfg = quick_config(WeakLearnerKind::DecisionTree, true);
        cfg.layout = layout;
        cfg.precision = precision;
        let model = train(&dataset, &split, &cfg);
        group.bench_function(format!("risk_map_llc_50k_cells{tag}"), |b| {
            b.iter(|| black_box(model.risk_map(&scenario.park, &dataset, &prev, 1.0)))
        });
        group.bench_function(format!("park_response_llc_50k_cells_6_levels{tag}"), |b| {
            b.iter(|| black_box(model.park_response(&scenario.park, &dataset, &prev, &grid)))
        });
    }
    group.finish();
}

fn bench_park_prediction_threads(c: &mut Criterion) {
    // 1-vs-N-thread park-wide prediction over the work-stealing pool: the
    // 256-row traversal blocks and the fused reduce/combine fan out per
    // block. On a single-core runner N > 1 only measures pool overhead.
    let (scenario, dataset, split) = setup();
    let model = train(
        &dataset,
        &split,
        &quick_config(WeakLearnerKind::DecisionTree, true),
    );
    let prev = dataset.coverage.last().unwrap().clone();
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut group = c.benchmark_group("park_response_threads");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                rayon::with_num_threads(threads, || {
                    b.iter(|| {
                        black_box(model.park_response(&scenario.park, &dataset, &prev, &grid))
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weak_learners,
    bench_iware_training,
    bench_park_prediction,
    bench_park_prediction_llc,
    bench_park_prediction_threads
);
criterion_main!(benches);
