//! Micro-benchmarks of the flat-matrix migration: index-gather vs per-row
//! clones, batch vs per-row prediction, and the iWare-E fit/effort_response
//! hot paths against a faithful copy of the pre-refactor nested-`Vec`
//! implementation (the `legacy` module below reproduces the seed's
//! clone-based tree/bagging/iWare code so the speedup stays measurable
//! after the old code path is gone).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paws_core::Scenario;
use paws_data::{build_dataset, split_by_test_year, Discretization, Matrix, StandardScaler};
use paws_data::{simd, simd32};
use paws_ml::bagging::{BaggingClassifier, BaggingConfig};
use paws_ml::traits::Classifier;
use paws_ml::tree::{DecisionTree, TreeConfig};
use std::hint::black_box;

/// The pre-refactor implementation, preserved verbatim in spirit: nested
/// `Vec<Vec<f64>>` features, per-row clones for bootstraps and filtered
/// subsets, per-threshold O(n) split scans, per-row scratch vectors in the
/// response evaluation. Sequential, like the flat path on one core.
#[allow(clippy::needless_range_loop)]
mod legacy {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    pub enum Node {
        Leaf {
            proba: f64,
        },
        Split {
            feature: usize,
            threshold: f64,
            left: usize,
            right: usize,
        },
    }

    pub struct Tree {
        nodes: Vec<Node>,
        n_features: usize,
    }

    impl Tree {
        pub fn fit(
            config: &super::TreeConfig,
            rows: &[Vec<f64>],
            labels: &[f64],
            _seed: u64,
        ) -> Self {
            let mut tree = Self {
                nodes: Vec::new(),
                n_features: rows[0].len(),
            };
            let indices: Vec<usize> = (0..rows.len()).collect();
            tree.build(config, rows, labels, &indices, 0);
            tree
        }

        fn build(
            &mut self,
            config: &super::TreeConfig,
            rows: &[Vec<f64>],
            labels: &[f64],
            indices: &[usize],
            depth: usize,
        ) -> usize {
            let n = indices.len();
            let positives: f64 = indices.iter().map(|&i| labels[i]).sum();
            let proba = positives / n as f64;
            let is_pure = positives == 0.0 || positives == n as f64;
            if depth >= config.max_depth || n < config.min_samples_split || is_pure {
                self.nodes.push(Node::Leaf { proba });
                return self.nodes.len() - 1;
            }
            let parent = 2.0 * proba * (1.0 - proba);
            let mut best: Option<(f64, usize, f64)> = None;
            for f in 0..self.n_features {
                let mut values: Vec<f64> = indices.iter().map(|&i| rows[i][f]).collect();
                values.sort_by(|a, b| a.total_cmp(b));
                values.dedup();
                if values.len() < 2 {
                    continue;
                }
                let stride = (values.len() / config.max_thresholds.max(1)).max(1);
                for w in (0..values.len() - 1).step_by(stride) {
                    let threshold = (values[w] + values[w + 1]) / 2.0;
                    let (mut nl, mut pl, mut nr, mut pr) = (0usize, 0.0f64, 0usize, 0.0f64);
                    for &i in indices {
                        if rows[i][f] <= threshold {
                            nl += 1;
                            pl += labels[i];
                        } else {
                            nr += 1;
                            pr += labels[i];
                        }
                    }
                    if nl < config.min_samples_leaf || nr < config.min_samples_leaf {
                        continue;
                    }
                    let gl = 2.0 * (pl / nl as f64) * (1.0 - pl / nl as f64);
                    let gr = 2.0 * (pr / nr as f64) * (1.0 - pr / nr as f64);
                    let gain = parent - (nl as f64 * gl + nr as f64 * gr) / n as f64;
                    if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                        best = Some((gain, f, threshold));
                    }
                }
            }
            let Some((_, feature, threshold)) = best else {
                self.nodes.push(Node::Leaf { proba });
                return self.nodes.len() - 1;
            };
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| rows[i][feature] <= threshold);
            let node_idx = self.nodes.len();
            self.nodes.push(Node::Leaf { proba });
            let left = self.build(config, rows, labels, &left_idx, depth + 1);
            let right = self.build(config, rows, labels, &right_idx, depth + 1);
            self.nodes[node_idx] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            node_idx
        }

        pub fn predict_row(&self, row: &[f64]) -> f64 {
            let mut idx = 0;
            loop {
                match &self.nodes[idx] {
                    Node::Leaf { proba } => return *proba,
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        idx = if row[*feature] <= *threshold {
                            *left
                        } else {
                            *right
                        };
                    }
                }
            }
        }

        pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
            rows.iter().map(|r| self.predict_row(r)).collect()
        }
    }

    pub struct Bagging {
        pub members: Vec<Tree>,
    }

    impl Bagging {
        pub fn fit(
            tree_config: &super::TreeConfig,
            n_estimators: usize,
            seed: u64,
            rows: &[Vec<f64>],
            labels: &[f64],
        ) -> Self {
            let members = (0..n_estimators)
                .map(|m| {
                    let member_seed = seed.wrapping_add(m as u64);
                    let mut rng = ChaCha8Rng::seed_from_u64(member_seed);
                    let indices: Vec<usize> = (0..rows.len())
                        .map(|_| rng.gen_range(0..rows.len()))
                        .collect();
                    // The pre-refactor bootstrap: one clone per sampled row.
                    let brows: Vec<Vec<f64>> = indices.iter().map(|&i| rows[i].clone()).collect();
                    let blabels: Vec<f64> = indices.iter().map(|&i| labels[i]).collect();
                    Tree::fit(tree_config, &brows, &blabels, member_seed)
                })
                .collect();
            Self { members }
        }

        /// Mean prediction plus member-spread variance, as the seed's
        /// `predict_with_variance` computed them for tree ensembles.
        pub fn predict_with_variance(&self, rows: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
            let per_member: Vec<Vec<f64>> = self.members.iter().map(|t| t.predict(rows)).collect();
            let b = per_member.len() as f64;
            let mut mean = vec![0.0; rows.len()];
            for preds in &per_member {
                for (m, p) in mean.iter_mut().zip(preds) {
                    *m += p;
                }
            }
            for m in mean.iter_mut() {
                *m /= b;
            }
            let mut var = vec![0.0; rows.len()];
            for preds in &per_member {
                for ((v, p), m) in var.iter_mut().zip(preds).zip(&mean) {
                    *v += (p - m) * (p - m);
                }
            }
            for v in var.iter_mut() {
                *v /= b;
            }
            (mean, var)
        }
    }

    pub struct IWare {
        pub thresholds: Vec<f64>,
        pub learners: Vec<Bagging>,
        pub weights: Vec<f64>,
    }

    impl IWare {
        pub fn fit(
            tree_config: &super::TreeConfig,
            n_learners: usize,
            n_estimators: usize,
            seed: u64,
            rows: &[Vec<f64>],
            labels: &[f64],
            efforts: &[f64],
        ) -> Self {
            let mut sorted = efforts.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let thresholds: Vec<f64> = (0..n_learners)
                .map(|i| {
                    if i == 0 {
                        0.0
                    } else {
                        sorted[(i as f64 / n_learners as f64 * (sorted.len() - 1) as f64).round()
                            as usize]
                    }
                })
                .collect();
            let learners = thresholds
                .iter()
                .enumerate()
                .map(|(i, &theta)| {
                    let mut idx: Vec<usize> = (0..labels.len())
                        .filter(|&j| labels[j] > 0.5 || efforts[j] > theta)
                        .collect();
                    let n_pos = idx.iter().filter(|&&j| labels[j] > 0.5).count();
                    if idx.len() < 20 || n_pos == 0 || n_pos == idx.len() {
                        idx = (0..rows.len()).collect();
                    }
                    // Pre-refactor filtered subset: per-row clones.
                    let srows: Vec<Vec<f64>> = idx.iter().map(|&j| rows[j].clone()).collect();
                    let slabels: Vec<f64> = idx.iter().map(|&j| labels[j]).collect();
                    Bagging::fit(
                        tree_config,
                        n_estimators,
                        seed.wrapping_add(1000 * i as u64),
                        &srows,
                        &slabels,
                    )
                })
                .collect();
            Self {
                thresholds,
                learners,
                weights: vec![1.0 / n_learners as f64; n_learners],
            }
        }

        /// Probability and variance response surfaces, as the seed's
        /// `effort_response` computed them: per-learner (p, v) passes plus
        /// per-row scratch vectors.
        pub fn effort_response(
            &self,
            rows: &[Vec<f64>],
            grid: &[f64],
        ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
            let pv: Vec<(Vec<f64>, Vec<f64>)> = self
                .learners
                .iter()
                .map(|l| l.predict_with_variance(rows))
                .collect();
            let mut per_learner_p = Vec::with_capacity(pv.len());
            let mut per_learner_v = Vec::with_capacity(pv.len());
            for (p, v) in pv {
                per_learner_p.push(p);
                per_learner_v.push(v);
            }
            let qualified: Vec<Vec<usize>> = grid
                .iter()
                .map(|&e| {
                    (0..self.thresholds.len())
                        .filter(|&i| self.thresholds[i] <= e)
                        .collect()
                })
                .collect();
            let combine = |p: &[f64], q: &[usize]| {
                let mut wsum = 0.0;
                let mut acc = 0.0;
                for &i in q {
                    wsum += self.weights[i];
                    acc += self.weights[i] * p[i];
                }
                if wsum <= 1e-12 {
                    0.0
                } else {
                    acc / wsum
                }
            };
            let mut probs = vec![vec![0.0; grid.len()]; rows.len()];
            let mut vars = vec![vec![0.0; grid.len()]; rows.len()];
            for r in 0..rows.len() {
                // Pre-refactor per-row scratch vectors.
                let p: Vec<f64> = per_learner_p.iter().map(|l| l[r]).collect();
                let v: Vec<f64> = per_learner_v.iter().map(|l| l[r]).collect();
                for (e, q) in qualified.iter().enumerate() {
                    probs[r][e] = combine(&p, q);
                    vars[r][e] = combine(&v, q);
                }
            }
            (probs, vars)
        }
    }
}

struct Workload {
    nested: Vec<Vec<f64>>,
    flat: Matrix,
    labels: Vec<f64>,
    efforts: Vec<f64>,
    park_nested: Vec<Vec<f64>>,
    park_flat: Matrix,
}

/// Test-scenario-park training data (standardised) in both layouts.
fn workload() -> Workload {
    let scenario = Scenario::test_scenario(7);
    let history = scenario.simulate_years(2014, 3);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2016, 2).expect("2016 present");
    let rows = dataset.feature_rows(&split.train);
    let labels = dataset.labels(&split.train);
    let efforts = dataset.efforts(&split.train);
    let (scaler, flat) = StandardScaler::fit_transform(rows);
    let prev = dataset.coverage.last().unwrap().clone();
    let mut park_flat = dataset.full_feature_matrix(&scenario.park, &prev);
    scaler.transform_in_place(&mut park_flat);
    Workload {
        nested: flat.to_rows(),
        flat,
        labels,
        efforts,
        park_nested: park_flat.to_rows(),
        park_flat,
    }
}

fn bench_gather_vs_clone(c: &mut Criterion) {
    let w = workload();
    let idx: Vec<usize> = (0..w.flat.n_rows()).filter(|i| i % 3 != 0).collect();
    let mut group = c.benchmark_group("subset_extraction");
    group.sample_size(30);
    group.bench_function("legacy_row_clones", |b| {
        b.iter(|| {
            black_box(
                idx.iter()
                    .map(|&i| w.nested[i].clone())
                    .collect::<Vec<Vec<f64>>>(),
            )
        })
    });
    group.bench_function("flat_gather", |b| b.iter(|| black_box(w.flat.gather(&idx))));
    group.finish();
}

fn bench_batch_vs_per_row_predict(c: &mut Criterion) {
    let w = workload();
    let tree = DecisionTree::fit(&TreeConfig::default(), w.flat.view(), &w.labels, 7);
    let mut group = c.benchmark_group("tree_prediction");
    group.sample_size(30);
    group.bench_function("per_row_single_calls", |b| {
        b.iter(|| {
            black_box(
                w.park_flat
                    .rows()
                    .map(|r| tree.predict_proba_one(r))
                    .collect::<Vec<f64>>(),
            )
        })
    });
    group.bench_function("batch_matrix", |b| {
        b.iter(|| black_box(tree.predict_proba(w.park_flat.view())))
    });
    group.finish();
}

fn bench_forest_traversal(c: &mut Criterion) {
    // The tentpole of the arena migration: a 10-tree DTB ensemble predicts
    // the whole park, walked row-at-a-time per tree (the pre-arena access
    // pattern, on the same slab) versus the level-synchronous batch kernel.
    let w = workload();
    let bag = BaggingClassifier::fit(&BaggingConfig::trees(10, 3), w.flat.view(), &w.labels);
    let forest = bag.forest().expect("tree ensembles are arena-backed");
    let mut group = c.benchmark_group("forest_traversal");
    group.sample_size(30);
    group.bench_function("per_row_tree_walks", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(forest.n_trees() * w.park_flat.n_rows());
            for t in 0..forest.n_trees() {
                for row in w.park_flat.rows() {
                    out.push(forest.predict_row(t, row));
                }
            }
            black_box(out)
        })
    });
    group.bench_function("level_sync_batch", |b| {
        b.iter(|| black_box(forest.predict_proba_batch(w.park_flat.view())))
    });
    // The f32 plane's 8-byte-node arena over a pre-narrowed park batch:
    // isolates the traversal bandwidth win from the per-call narrowing
    // cost (which the end-to-end park_prediction benches include).
    let forest32 = paws_ml::Forest32::from_forest(forest);
    let park32 = paws_data::Matrix32::from_f64(w.park_flat.view());
    group.bench_function("level_sync_batch_f32", |b| {
        b.iter(|| black_box(forest32.predict_proba_batch(park32.view())))
    });
    group.finish();
}

fn bench_tree_fit_legacy_vs_flat(c: &mut Criterion) {
    let w = workload();
    let cfg = TreeConfig::default();
    let mut group = c.benchmark_group("tree_fit");
    group.sample_size(15);
    group.bench_function("legacy_nested_vec", |b| {
        b.iter(|| black_box(legacy::Tree::fit(&cfg, &w.nested, &w.labels, 7)))
    });
    group.bench_function("flat_prefix_sums", |b| {
        b.iter(|| black_box(DecisionTree::fit(&cfg, w.flat.view(), &w.labels, 7)))
    });
    group.finish();
}

fn bench_bagging_fit_legacy_vs_flat(c: &mut Criterion) {
    let w = workload();
    let cfg = TreeConfig::default();
    let mut group = c.benchmark_group("bagging_fit_10_trees");
    group.sample_size(10);
    group.bench_function("legacy_clone_bootstrap", |b| {
        b.iter(|| black_box(legacy::Bagging::fit(&cfg, 10, 3, &w.nested, &w.labels)))
    });
    group.bench_function("flat_gather_bootstrap", |b| {
        b.iter(|| {
            black_box(BaggingClassifier::fit(
                &BaggingConfig::trees(10, 3),
                w.flat.view(),
                &w.labels,
            ))
        })
    });
    group.finish();
}

fn bench_iware_legacy_vs_flat(c: &mut Criterion) {
    use paws_iware::{IWareConfig, IWareModel, ThresholdMode, WeightMode};
    let w = workload();
    let cfg = TreeConfig::default();
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let config = IWareConfig {
        n_learners: 5,
        base: BaggingConfig::trees(4, 3),
        threshold_mode: ThresholdMode::Percentile,
        weight_mode: WeightMode::Uniform,
        min_subset_size: 20,
        seed: 3,
    };

    let mut group = c.benchmark_group("iware_fit");
    group.sample_size(10);
    group.bench_function("legacy_nested_vec", |b| {
        b.iter(|| {
            black_box(legacy::IWare::fit(
                &cfg, 5, 4, 3, &w.nested, &w.labels, &w.efforts,
            ))
        })
    });
    group.bench_function("flat_gather", |b| {
        b.iter(|| {
            black_box(IWareModel::fit(
                &config,
                w.flat.view(),
                &w.labels,
                &w.efforts,
            ))
        })
    });
    group.finish();

    let legacy_model = legacy::IWare::fit(&cfg, 5, 4, 3, &w.nested, &w.labels, &w.efforts);
    let flat_model = IWareModel::fit(&config, w.flat.view(), &w.labels, &w.efforts);
    let mut group = c.benchmark_group("iware_effort_response");
    group.sample_size(20);
    group.bench_function("legacy_nested_vec", |b| {
        b.iter(|| black_box(legacy_model.effort_response(&w.park_nested, &grid)))
    });
    group.bench_function("flat_cell_parallel", |b| {
        b.iter(|| black_box(flat_model.effort_response(w.park_flat.view(), &grid)))
    });
    let mut f32_model = IWareModel::fit(&config, w.flat.view(), &w.labels, &w.efforts);
    f32_model.set_precision(paws_iware::Precision::F32).unwrap();
    group.bench_function("flat_cell_parallel_f32", |b| {
        b.iter(|| black_box(f32_model.effort_response(w.park_flat.view(), &grid)))
    });
    group.finish();
}

fn bench_simd_kernels(c: &mut Criterion) {
    // The `f64x4` micro-kernels against their sequential scalar
    // references, at the GP-solve scale (n ≈ 400, the `L⁻¹k*` prefix dots)
    // and a longer streaming length.
    for n in [400usize, 4096] {
        let a: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.91).cos()).collect();
        let mut group = c.benchmark_group(format!("simd_kernels_{n}"));
        group.sample_size(30);
        group.bench_function("dot_scalar", |bch| {
            bch.iter(|| black_box(simd::dot_scalar(&a, &b)))
        });
        group.bench_function("dot_f64x4", |bch| bch.iter(|| black_box(simd::dot(&a, &b))));
        group.bench_function("sum_scalar", |bch| {
            bch.iter(|| black_box(simd::sum_scalar(&a)))
        });
        group.bench_function("sum_f64x4", |bch| bch.iter(|| black_box(simd::sum(&a))));
        group.bench_function("sqdist_scalar", |bch| {
            bch.iter(|| {
                black_box(
                    a.iter()
                        .zip(&b)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>(),
                )
            })
        });
        group.bench_function("sqdist_f64x4", |bch| {
            bch.iter(|| black_box(simd::squared_distance(&a, &b)))
        });
        group.bench_function("axpy_autovec", |bch| {
            let mut y = b.clone();
            bch.iter(|| {
                simd::axpy(1.0000001, &a, &mut y);
                black_box(y[0])
            })
        });
        // f32x8 counterparts on the same (narrowed) contents: the
        // per-kernel half of the f32 plane's bandwidth story.
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        group.bench_function("dot_f32x8", |bch| {
            bch.iter(|| black_box(simd32::dot(&a32, &b32)))
        });
        group.bench_function("sum_f32x8", |bch| bch.iter(|| black_box(simd32::sum(&a32))));
        group.bench_function("sqdist_f32x8", |bch| {
            bch.iter(|| black_box(simd32::squared_distance(&a32, &b32)))
        });
        group.bench_function("axpy_f32_autovec", |bch| {
            let mut y = b32.clone();
            bch.iter(|| {
                simd32::axpy(1.0000001, &a32, &mut y);
                black_box(y[0])
            })
        });
        group.finish();
    }
}

fn bench_effort_response_threads(c: &mut Criterion) {
    // 1-vs-N-thread scaling of the park-wide response surface over the
    // work-stealing pool. On a single-core runner N > 1 only measures the
    // pool's oversubscription overhead; run on a multi-core host to see
    // real scaling.
    use paws_iware::{IWareConfig, IWareModel, ThresholdMode, WeightMode};
    let w = workload();
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let config = IWareConfig {
        n_learners: 5,
        base: BaggingConfig::trees(4, 3),
        threshold_mode: ThresholdMode::Percentile,
        weight_mode: WeightMode::Uniform,
        min_subset_size: 20,
        seed: 3,
    };
    let model = IWareModel::fit(&config, w.flat.view(), &w.labels, &w.efforts);
    let mut group = c.benchmark_group("effort_response_threads");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                rayon::with_num_threads(threads, || {
                    b.iter(|| black_box(model.effort_response(w.park_flat.view(), &grid)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gather_vs_clone,
    bench_batch_vs_per_row_predict,
    bench_forest_traversal,
    bench_tree_fit_legacy_vs_flat,
    bench_bagging_fit_legacy_vs_flat,
    bench_iware_legacy_vs_flat,
    bench_simd_kernels,
    bench_effort_response_threads
);
criterion_main!(benches);
