//! Criterion micro-benchmarks of the staged fit pipeline: a full cold
//! `fit_cached`, a warm refit after a small patrol-log append (unchanged
//! learners kept from the cache), and the degenerate warm refit with no
//! appended rows (every learner kept bit-identically — only the CV-weight
//! solve reruns). The warm/resolve timings include the `FitCache` clone a
//! live registry would never pay (it mutates its resident cache in
//! place), so the measured speedups are conservative.

use criterion::{criterion_group, criterion_main, Criterion};
use paws_core::{ModelConfig, Scenario, WeakLearnerKind};
use paws_data::{build_dataset, Discretization, Matrix, StandardScaler};
use paws_iware::{IWareConfig, IWareModel};
use std::hint::black_box;

struct FitWorkload {
    config: IWareConfig,
    /// All standardised rows (base + the 2% append).
    rows: Matrix,
    labels: Vec<f64>,
    efforts: Vec<f64>,
    /// Rows resident before the append.
    n_base: usize,
}

fn setup() -> FitWorkload {
    let scenario = Scenario::test_scenario(7);
    let history = scenario.simulate_years(2014, 3);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let idx: Vec<usize> = (0..dataset.n_points()).collect();
    let raw = dataset.feature_rows(&idx);
    let labels = dataset.labels(&idx);
    let efforts = dataset.efforts(&idx);
    let (_, rows) = StandardScaler::fit_transform(raw);

    // Paper-scale ensemble shape: 10 learners × 8 bagged trees, CV-solved
    // weights (the ModelConfig defaults).
    let config = ModelConfig::new(WeakLearnerKind::DecisionTree, true, 7);
    let n_base = rows.n_rows() - rows.n_rows() / 50; // ~2% append
    FitWorkload {
        config: config.iware_config(),
        rows,
        labels,
        efforts,
        n_base,
    }
}

fn bench_fit_paths(c: &mut Criterion) {
    let w = setup();
    let base_rows = w.rows.view().head(w.n_base).to_matrix();
    let base_labels = &w.labels[..w.n_base];
    let base_efforts = &w.efforts[..w.n_base];

    let mut group = c.benchmark_group("staged_fit");
    group.sample_size(10);

    // Cold: the full staged pipeline (thresholds, member fits, arena
    // build, CV-weight solve) on every row.
    group.bench_function("cold_fit", |b| {
        b.iter(|| {
            black_box(IWareModel::fit_cached(
                &w.config,
                w.rows.view(),
                &w.labels,
                &w.efforts,
            ))
        })
    });

    // Warm: ~2% of the rows are new; the drift budget keeps every
    // unchanged learner, so only moved subsets refit and the CV weights
    // resolve from cached fold predictions.
    let (_, warm_cache) =
        IWareModel::fit_cached(&w.config, base_rows.view(), base_labels, base_efforts);
    group.bench_function("warm_refit_2pct_append", |b| {
        b.iter(|| {
            let mut cache = warm_cache.clone();
            black_box(IWareModel::warm_refit(
                &w.config,
                &mut cache,
                w.rows.view(),
                &w.labels,
                &w.efforts,
                1.0,
            ))
        })
    });

    // Resolve-only: no appended rows at all — every learner is kept
    // bit-identically and only the CV simplex solve reruns.
    let (_, full_cache) = IWareModel::fit_cached(&w.config, w.rows.view(), &w.labels, &w.efforts);
    group.bench_function("cv_weight_resolve_only", |b| {
        b.iter(|| {
            let mut cache = full_cache.clone();
            black_box(IWareModel::warm_refit(
                &w.config,
                &mut cache,
                w.rows.view(),
                &w.labels,
                &w.efforts,
                1.0,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fit_paths);
criterion_main!(benches);
