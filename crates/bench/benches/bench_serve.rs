//! Criterion benchmarks of the serving surface: prepared-park queries
//! (cached standardize + narrow) vs the unprepared per-call path, and the
//! batched admission layer vs per-request submits.
//!
//! The LLC group is the evidence for the PR 7 acceptance criterion: with
//! `PreparedPark` caching the standardized f64 plane and the f32 narrowing,
//! the f32 `park_response` at 50k cells must no longer trail f64 (the
//! per-call `Matrix32::from_f64` narrowing cost that BENCH_5 measured as a
//! 0.84x slowdown is paid once at prepare time, not per query).

use criterion::{criterion_group, criterion_main, Criterion};
use paws_core::{
    train, ModelConfig, Precision, Scenario, ServingModel, TraversalLayout, WeakLearnerKind,
};
use paws_data::{build_dataset, split_by_test_year, Dataset, Discretization};
use paws_serve::{PawsServer, QueryKind, QueryRequest};
use std::hint::black_box;

fn quick_config(learner: WeakLearnerKind, use_iware: bool) -> ModelConfig {
    let mut cfg = ModelConfig::new(learner, use_iware, 7);
    cfg.n_learners = 5;
    cfg.n_estimators = 4;
    cfg.gp_max_points = 120;
    cfg.weight_mode = paws_iware::WeightMode::Uniform;
    cfg
}

fn bench_prepared_queries_llc(c: &mut Criterion) {
    // LLC-scale park (50k cells): the standardized feature stack (~8 MB)
    // outgrows the last-level cache, so the per-call standardize + narrow
    // work the prepared path amortizes actually shows up in the numbers.
    let scenario = Scenario::llc_scenario(50_000, 5);
    let history = scenario.simulate_years(2014, 2);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2015, 1).expect("2015 present");
    let prev = dataset.coverage.last().unwrap().clone();
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];

    let mut group = c.benchmark_group("serving_prepared_llc");
    group.sample_size(10);
    for (tag, precision) in [("", Precision::F64), ("_f32", Precision::F32)] {
        let mut cfg = quick_config(WeakLearnerKind::DecisionTree, true);
        cfg.precision = precision;
        let model = train(&dataset, &split, &cfg).into_serving();
        let prepared = model
            .prepare_park(&scenario.park, &dataset, &prev)
            .expect("park prepares");
        // Unprepared: every call re-standardizes the stack (and, on the
        // f32 plane, re-narrows it) before traversal.
        group.bench_function(format!("park_response_llc_50k_cells_6_levels{tag}"), |b| {
            b.iter(|| black_box(model.park_response(&scenario.park, &dataset, &prev, &grid)))
        });
        // Prepared: traversal only, straight off the cached plane.
        group.bench_function(
            format!("park_response_prepared_llc_50k_cells_6_levels{tag}"),
            |b| b.iter(|| black_box(model.park_response_prepared(&prepared, &grid))),
        );
        group.bench_function(format!("risk_map_prepared_llc_50k_cells{tag}"), |b| {
            b.iter(|| black_box(model.risk_map_prepared(&prepared, 1.0)))
        });
        // The one-time cost the prepared path pays up front.
        group.bench_function(format!("prepare_park_llc_50k_cells{tag}"), |b| {
            b.iter(|| {
                black_box(
                    model
                        .prepare_park(&scenario.park, &dataset, &prev)
                        .expect("park prepares"),
                )
            })
        });
    }
    group.finish();
}

fn bench_shard_fanout_llc(c: &mut Criterion) {
    // PR 10 acceptance evidence: the spatial-shard fan-out across the
    // persistent worker pool must not tax the single-core container —
    // forcing 4 workers onto 1 core measures pure pool overhead (publish,
    // steal, stitch) on the 50k-cell prepared queries, and the criterion
    // is that it stays within 1.15x of the forced-1 (inline sequential)
    // run. On real multi-core hardware the same fan-out is the speedup
    // path; here it must at least be nearly free.
    let scenario = Scenario::llc_scenario(50_000, 5);
    let history = scenario.simulate_years(2014, 2);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2015, 1).expect("2015 present");
    let prev = dataset.coverage.last().unwrap().clone();
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];

    let cfg = quick_config(WeakLearnerKind::DecisionTree, true);
    let model = train(&dataset, &split, &cfg).into_serving();
    let prepared = model
        .prepare_park(&scenario.park, &dataset, &prev)
        .expect("park prepares");
    assert!(
        prepared.shards().len() > 1,
        "a 50k-cell park must tile into multiple shards"
    );

    let mut group = c.benchmark_group("serving_shard_fanout_llc");
    group.sample_size(10);
    for forced in [1usize, 4] {
        group.bench_function(format!("risk_map_prepared_llc_50k_forced{forced}"), |b| {
            b.iter(|| {
                rayon::with_num_threads(forced, || {
                    black_box(model.risk_map_prepared(&prepared, 1.0))
                })
            })
        });
        group.bench_function(
            format!("park_response_prepared_llc_50k_6_levels_forced{forced}"),
            |b| {
                b.iter(|| {
                    rayon::with_num_threads(forced, || {
                        black_box(model.park_response_prepared(&prepared, &grid))
                    })
                })
            },
        );
    }
    group.finish();
}

fn fit_resident(seed: u64, tweak: u8) -> (Scenario, Dataset, ServingModel) {
    let scenario = Scenario::test_scenario(seed);
    let history = scenario.simulate_years(2014, 3);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2016, 2).expect("2016 present");
    let mut cfg = quick_config(WeakLearnerKind::DecisionTree, true);
    cfg.seed = seed;
    match tweak {
        1 => cfg.precision = Precision::F32,
        2 => cfg.layout = TraversalLayout::BitVector,
        _ => {}
    }
    let model = train(&dataset, &split, &cfg).into_serving();
    (scenario, dataset, model)
}

fn bench_serve_throughput(c: &mut Criterion) {
    // Three resident parks spanning the engine mix (f64, f32, bitvector).
    // The batched submit coalesces each park's risk levels into one
    // response-surface kernel and shares identical grids; the per-request
    // loop pays admission, lookup and traversal per query.
    let server = PawsServer::new();
    let names = ["gonarezhou", "mondulkiri", "queen-elizabeth"];
    for (i, name) in names.iter().enumerate() {
        let (scenario, dataset, model) = fit_resident(3 + i as u64, i as u8);
        let prev = vec![0.0; scenario.park.n_cells()];
        server
            .registry()
            .install(*name, model, scenario.park.clone(), &dataset, &prev)
            .expect("install succeeds");
    }

    // 24 risk-map queries: 8 per park over 4 distinct effort levels, with
    // duplicates, so coalescing and the response cache both engage.
    let mut risk_batch = Vec::new();
    for q in 0..24usize {
        risk_batch.push(QueryRequest::new(
            names[q % names.len()],
            QueryKind::RiskMap {
                effort_km: 0.5 * (1 + q % 4) as f64,
            },
        ));
    }
    // A mixed batch folds in whole response surfaces alongside risk maps.
    let mut mixed_batch = risk_batch[..16].to_vec();
    for name in &names {
        mixed_batch.push(QueryRequest::new(
            *name,
            QueryKind::ParkResponse {
                effort_grid: vec![0.0, 0.5, 1.0, 2.0],
            },
        ));
    }

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.bench_function("submit_batched_24_risk_maps_3_parks", |b| {
        b.iter(|| black_box(server.submit(&risk_batch)))
    });
    group.bench_function("submit_individual_24_risk_maps_3_parks", |b| {
        b.iter(|| {
            for req in &risk_batch {
                black_box(server.submit(std::slice::from_ref(req)));
            }
        })
    });
    group.bench_function("submit_batched_19_mixed_3_parks", |b| {
        b.iter(|| black_box(server.submit(&mixed_batch)))
    });
    group.bench_function("submit_individual_19_mixed_3_parks", |b| {
        b.iter(|| {
            for req in &mixed_batch {
                black_box(server.submit(std::slice::from_ref(req)));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_prepared_queries_llc,
    bench_shard_fanout_llc,
    bench_serve_throughput
);
criterion_main!(benches);
