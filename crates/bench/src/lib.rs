//! Shared infrastructure for the experiment binaries (one per paper table /
//! figure) and the Criterion benchmarks.
//!
//! Every binary accepts `--full` to run at the paper's full experimental
//! scale; the default "quick" scale uses the same full-size parks and
//! datasets but fewer test years, smaller ensembles and fewer sweep points
//! so the whole suite finishes in minutes. EXPERIMENTS.md records which
//! scale produced the reported numbers.

use paws_core::{ModelConfig, Scenario, WeakLearnerKind};
use paws_data::{build_dataset, Dataset, Discretization};
use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced ensembles / sweeps; minutes instead of hours.
    Quick,
    /// The paper's full experimental grid.
    Full,
}

impl Scale {
    /// Parse the scale from the process arguments (`--full` selects
    /// [`Scale::Full`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// True for the full experimental grid.
    pub fn is_full(&self) -> bool {
        matches!(self, Scale::Full)
    }
}

/// First simulated year of every history (six years, 2013–2018, mirroring
/// the "four years of data … up to 18 years" setup trimmed to what Table I
/// reports).
pub const START_YEAR: u32 = 2013;
/// Number of simulated years per park.
pub const SIM_YEARS: u32 = 6;

/// The three study sites, generated with their calibrated simulators.
pub fn study_scenarios() -> Vec<Scenario> {
    ["MFNP", "QENP", "SWS"]
        .iter()
        .map(|name| Scenario::study_site(name, 2013))
        .collect()
}

/// One study site by name.
pub fn scenario(name: &str) -> Scenario {
    Scenario::study_site(name, 2013)
}

/// Simulate the six-year history and build the quarterly dataset of a
/// scenario.
pub fn quarterly_dataset(scenario: &Scenario) -> Dataset {
    let history = scenario.simulate_years(START_YEAR, SIM_YEARS);
    build_dataset(&scenario.park, &history, Discretization::quarterly())
}

/// Simulate the six-year history and build the dry-season dataset (used for
/// SWS dry in Table I/II and the SWS field tests).
pub fn dry_season_dataset(scenario: &Scenario) -> Dataset {
    let history = scenario.simulate_years(START_YEAR, SIM_YEARS);
    build_dataset(&scenario.park, &history, Discretization::dry_season())
}

/// The model configuration a park uses in the paper: 20 iWare-E learners for
/// MFNP/QENP, 10 for SWS, balanced bagging only for SWS; ensemble sizes are
/// reduced at `Scale::Quick`.
pub fn park_model_config(
    park_name: &str,
    learner: WeakLearnerKind,
    use_iware: bool,
    scale: Scale,
) -> ModelConfig {
    let mut cfg = ModelConfig::new(learner, use_iware, 2020);
    cfg.n_learners = match (park_name, scale) {
        ("SWS", _) => 10,
        (_, Scale::Full) => 20,
        (_, Scale::Quick) => 10,
    };
    cfg.n_estimators = if scale.is_full() { 10 } else { 5 };
    cfg.balanced = park_name == "SWS";
    cfg.gp_max_points = if scale.is_full() { 300 } else { 200 };
    if !scale.is_full() {
        cfg.weight_mode = paws_iware::WeightMode::CvOptimized {
            folds: 3,
            iterations: 60,
        };
    }
    cfg
}

/// Directory experiment outputs (JSON) are written to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Serialise an experiment result to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialise result");
    std::fs::write(&path, body).expect("write result file");
    println!("\n[results written to {}]", path.display());
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_default() {
        assert!(!Scale::Quick.is_full());
        assert!(Scale::Full.is_full());
    }

    #[test]
    fn park_configs_follow_paper_hyperparameters() {
        let mfnp = park_model_config("MFNP", WeakLearnerKind::GaussianProcess, true, Scale::Full);
        let sws = park_model_config("SWS", WeakLearnerKind::GaussianProcess, true, Scale::Full);
        assert_eq!(mfnp.n_learners, 20);
        assert_eq!(sws.n_learners, 10);
        assert!(sws.balanced);
        assert!(!mfnp.balanced);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
