//! Shared infrastructure for the experiment binaries (one per paper table /
//! figure) and the Criterion benchmarks.
//!
//! Every binary accepts `--full` to run at the paper's full experimental
//! scale; the default "quick" scale uses the same full-size parks and
//! datasets but fewer test years, smaller ensembles and fewer sweep points
//! so the whole suite finishes in minutes. EXPERIMENTS.md records which
//! scale produced the reported numbers.

use paws_core::{ModelConfig, Scenario, WeakLearnerKind};
use paws_data::{build_dataset, Dataset, Discretization};
use paws_geo::Park;
use paws_plan::{PlanningCell, PlanningProblem, PwlFunction};
use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced ensembles / sweeps; minutes instead of hours.
    Quick,
    /// The paper's full experimental grid.
    Full,
}

impl Scale {
    /// Parse the scale from the process arguments (`--full` selects
    /// [`Scale::Full`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// True for the full experimental grid.
    pub fn is_full(&self) -> bool {
        matches!(self, Scale::Full)
    }
}

/// First simulated year of every history (six years, 2013–2018, mirroring
/// the "four years of data … up to 18 years" setup trimmed to what Table I
/// reports).
pub const START_YEAR: u32 = 2013;
/// Number of simulated years per park.
pub const SIM_YEARS: u32 = 6;

/// The three study sites, generated with their calibrated simulators.
pub fn study_scenarios() -> Vec<Scenario> {
    ["MFNP", "QENP", "SWS"]
        .iter()
        .map(|name| Scenario::study_site(name, 2013))
        .collect()
}

/// One study site by name.
pub fn scenario(name: &str) -> Scenario {
    Scenario::study_site(name, 2013)
}

/// Simulate the six-year history and build the quarterly dataset of a
/// scenario.
pub fn quarterly_dataset(scenario: &Scenario) -> Dataset {
    let history = scenario.simulate_years(START_YEAR, SIM_YEARS);
    build_dataset(&scenario.park, &history, Discretization::quarterly())
}

/// Simulate the six-year history and build the dry-season dataset (used for
/// SWS dry in Table I/II and the SWS field tests).
pub fn dry_season_dataset(scenario: &Scenario) -> Dataset {
    let history = scenario.simulate_years(START_YEAR, SIM_YEARS);
    build_dataset(&scenario.park, &history, Discretization::dry_season())
}

/// The model configuration a park uses in the paper: 20 iWare-E learners for
/// MFNP/QENP, 10 for SWS, balanced bagging only for SWS; ensemble sizes are
/// reduced at `Scale::Quick`.
pub fn park_model_config(
    park_name: &str,
    learner: WeakLearnerKind,
    use_iware: bool,
    scale: Scale,
) -> ModelConfig {
    let mut cfg = ModelConfig::new(learner, use_iware, 2020);
    cfg.n_learners = match (park_name, scale) {
        ("SWS", _) => 10,
        (_, Scale::Full) => 20,
        (_, Scale::Quick) => 10,
    };
    cfg.n_estimators = if scale.is_full() { 10 } else { 5 };
    cfg.balanced = park_name == "SWS";
    cfg.gp_max_points = if scale.is_full() { 300 } else { 200 };
    if !scale.is_full() {
        cfg.weight_mode = paws_iware::WeightMode::CvOptimized {
            folds: 3,
            iterations: 60,
        };
    }
    cfg
}

/// A park-wide synthetic allocation problem: every cell is a candidate
/// (the full-reach LP the sparse planner is sized for) with a deterministic
/// saturating concave detection curve over effort `[0, 8]` km and an
/// uncertainty curve rising with effort, varied cell-to-cell so the LP
/// optimum spreads effort across many cells. `budget_km` is the total
/// effort budget T×K; four patrols share it, and every cell's travel time
/// is set so its feasible effort is exactly the curve domain (8 km) —
/// otherwise the planner would resample each 8 km curve over a
/// budget-sized domain and flatten it into noise. Neighbour lists are
/// left empty — these problems feed the allocation planner, not route
/// extraction.
pub fn full_reach_problem(park: &Park, budget_km: f64, beta: f64) -> PlanningProblem {
    let grid = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let patrol_length_km = budget_km / 4.0;
    // (T − 2·travel) × 4 patrols = 8 km of feasible effort per cell.
    let travel_km = ((patrol_length_km - 2.0) / 2.0).max(0.0);
    let cells: Vec<PlanningCell> = park
        .cells
        .iter()
        .enumerate()
        .map(|(i, &cell)| {
            let s = 0.1 + 0.8 * ((i * 37) % 100) as f64 / 100.0;
            let rate = 0.3 + 0.5 * ((i * 53) % 97) as f64 / 97.0;
            let b = 0.05 + 0.4 * ((i * 61) % 100) as f64 / 100.0;
            let g_ys: Vec<f64> = grid
                .iter()
                .map(|&e| s * (1.0 - (-rate * e).exp()))
                .collect();
            let nu_ys: Vec<f64> = grid.iter().map(|&e| (b + 0.03 * e).min(0.95)).collect();
            PlanningCell {
                cell,
                park_index: i,
                travel_km,
                g: PwlFunction::new(grid.to_vec(), g_ys),
                nu: PwlFunction::new(grid.to_vec(), nu_ys),
            }
        })
        .collect();
    let post = park.patrol_posts[0];
    let post_index = park
        .cells
        .iter()
        .position(|&c| c == post)
        .expect("patrol post is an in-park cell");
    let n = cells.len();
    PlanningProblem {
        post,
        cells,
        neighbours: vec![Vec::new(); n],
        post_index,
        patrol_length_km,
        n_patrols: 4,
        beta,
    }
}

/// Directory experiment outputs (JSON) are written to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Serialise an experiment result to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialise result");
    std::fs::write(&path, body).expect("write result file");
    println!("\n[results written to {}]", path.display());
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_default() {
        assert!(!Scale::Quick.is_full());
        assert!(Scale::Full.is_full());
    }

    #[test]
    fn park_configs_follow_paper_hyperparameters() {
        let mfnp = park_model_config("MFNP", WeakLearnerKind::GaussianProcess, true, Scale::Full);
        let sws = park_model_config("SWS", WeakLearnerKind::GaussianProcess, true, Scale::Full);
        assert_eq!(mfnp.n_learners, 20);
        assert_eq!(sws.n_learners, 10);
        assert!(sws.balanced);
        assert!(!mfnp.balanced);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
