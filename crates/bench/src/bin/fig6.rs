//! Figure 6 — predicted probability of detecting poaching and its
//! uncertainty across MFNP at several prospective patrol-effort levels,
//! alongside the historical patrol effort and detections they derive from.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin fig6
//! ```

use paws_bench::{park_model_config, quarterly_dataset, scenario, write_json, Scale};
use paws_core::{ascii_heatmap, format_table, train, WeakLearnerKind};
use paws_data::split_by_test_year;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Level {
    effort_km: f64,
    mean_risk: f64,
    max_risk: f64,
    mean_uncertainty: f64,
    /// Mean uncertainty over the historically least-patrolled quartile of
    /// cells minus the most-patrolled quartile (positive = the model is less
    /// sure where rangers rarely go, the Fig. 6 observation).
    uncertainty_gap_unpatrolled_vs_patrolled: f64,
}

fn main() {
    let scale = Scale::from_args();
    println!("Figure 6: MFNP risk and uncertainty maps (GPB-iW, test period 2017-Q1)\n");

    let sc = scenario("MFNP");
    let dataset = quarterly_dataset(&sc);
    let split = split_by_test_year(&dataset, 2016, 3).expect("2016 present");
    let config = park_model_config("MFNP", WeakLearnerKind::GaussianProcess, true, scale);
    let model = train(&dataset, &split, &config);
    println!(
        "{} test AUC: {:.3}\n",
        config.name(),
        model.auc_on(&dataset, &split.test)
    );

    // Historical patrol effort and detections over the training years (Fig. 6a/6b).
    let n = sc.park.n_cells();
    let hist_effort: Vec<f64> = (0..n)
        .map(|i| dataset.coverage.iter().map(|step| step[i]).sum())
        .collect();
    let hist_detections: Vec<f64> = (0..n)
        .map(|i| dataset.detections.iter().filter(|step| step[i]).count() as f64)
        .collect();
    println!("(a) Historical patrol effort (km, darker = more patrolled):");
    println!("{}", ascii_heatmap(&sc.park, &hist_effort));
    println!("(b) Historical detected illegal activity:");
    println!("{}", ascii_heatmap(&sc.park, &hist_detections));

    // Quartiles of historical effort, used to summarise the uncertainty maps.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| hist_effort[a].total_cmp(&hist_effort[b]));
    let q = n / 4;
    let least_patrolled = &order[..q];
    let most_patrolled = &order[n - q..];

    let prev = dataset.coverage.last().unwrap().clone();
    let mut levels = Vec::new();
    let mut rows = Vec::new();
    for effort in [0.5, 1.0, 2.0, 4.0] {
        let (risk, unc) = model.risk_map(&sc.park, &dataset, &prev, effort);
        if (effort - 1.0).abs() < 1e-9 {
            println!("(c) Predicted probability of detecting poaching at 1 km of effort:");
            println!("{}", ascii_heatmap(&sc.park, &risk));
            println!("    Corresponding prediction uncertainty:");
            println!("{}", ascii_heatmap(&sc.park, &unc));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mean_at =
            |idx: &[usize], v: &[f64]| idx.iter().map(|&i| v[i]).sum::<f64>() / idx.len() as f64;
        let level = Fig6Level {
            effort_km: effort,
            mean_risk: mean(&risk),
            max_risk: risk.iter().cloned().fold(0.0, f64::max),
            mean_uncertainty: mean(&unc),
            uncertainty_gap_unpatrolled_vs_patrolled: mean_at(least_patrolled, &unc)
                - mean_at(most_patrolled, &unc),
        };
        rows.push(vec![
            format!("{:.1}", level.effort_km),
            format!("{:.4}", level.mean_risk),
            format!("{:.4}", level.max_risk),
            format!("{:.4}", level.mean_uncertainty),
            format!("{:+.4}", level.uncertainty_gap_unpatrolled_vs_patrolled),
        ]);
        levels.push(level);
    }

    println!(
        "{}",
        format_table(
            &[
                "Effort (km)",
                "Mean risk",
                "Max risk",
                "Mean uncertainty",
                "Uncertainty gap (rarely vs often patrolled)",
            ],
            &rows
        )
    );
    println!("Paper findings reproduced when: mean risk rises with prospective effort,");
    println!(
        "and the uncertainty gap is positive (the model is least certain where rangers rarely go)."
    );
    write_json("fig6", &levels);
}
