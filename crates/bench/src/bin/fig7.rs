//! Figure 7 — correlation between prediction and uncertainty for a Gaussian
//! process versus a bagging ensemble of decision trees (one weak learner on
//! the MFNP 2016 dataset). The paper reports Pearson correlations of −0.198
//! (GP) and 0.979 (bagged trees).
//!
//! ```bash
//! cargo run --release -p paws-bench --bin fig7
//! ```

use paws_bench::{quarterly_dataset, scenario, write_json};
use paws_core::format_table;
use paws_data::{split_by_test_year, StandardScaler};
use paws_ml::bagging::{BaggingClassifier, BaggingConfig};
use paws_ml::gp::{GaussianProcess, GpConfig};
use paws_ml::jackknife::infinitesimal_jackknife_variance;
use paws_ml::metrics::{pearson, roc_auc};
use paws_ml::traits::{Classifier, UncertainClassifier};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Result {
    model: String,
    auc: f64,
    pearson_prediction_vs_variance: f64,
    paper_reference: f64,
}

fn main() {
    println!("Figure 7: prediction vs uncertainty correlation (MFNP, test year 2016)\n");
    let sc = scenario("MFNP");
    let dataset = quarterly_dataset(&sc);
    let split = split_by_test_year(&dataset, 2016, 3).expect("2016 present");

    let train_rows = dataset.feature_rows(&split.train);
    let train_labels = dataset.labels(&split.train);
    let test_rows = dataset.feature_rows(&split.test);
    let test_labels = dataset.labels(&split.test);
    let (scaler, train_scaled) = StandardScaler::fit_transform(train_rows);
    let test_scaled = scaler.transform(test_rows.view());

    // One GP classifier C_{θi^-} (a single weak learner, as in the figure).
    let gp = GaussianProcess::fit(
        &GpConfig {
            max_points: 400,
            ..GpConfig::default()
        },
        train_scaled.view(),
        &train_labels,
        7,
    );
    let (gp_pred, gp_var) = gp.predict_with_variance(test_scaled.view());
    let gp_corr = pearson(&gp_pred, &gp_var);
    let gp_auc = roc_auc(&test_labels, &gp_pred);

    // One bagging ensemble of decision trees with the infinitesimal-jackknife
    // confidence interval as the uncertainty surrogate.
    let bag = BaggingClassifier::fit(
        &BaggingConfig::trees(30, 7),
        train_scaled.view(),
        &train_labels,
    );
    let bag_pred = bag.predict_proba(test_scaled.view());
    let bag_var = infinitesimal_jackknife_variance(&bag, test_scaled.view());
    let bag_corr = pearson(&bag_pred, &bag_var);
    let bag_auc = roc_auc(&test_labels, &bag_pred);

    let results = vec![
        Fig7Result {
            model: "Gaussian process".to_string(),
            auc: gp_auc,
            pearson_prediction_vs_variance: gp_corr,
            paper_reference: -0.198,
        },
        Fig7Result {
            model: "Bagging decision trees".to_string(),
            auc: bag_auc,
            pearson_prediction_vs_variance: bag_corr,
            paper_reference: 0.979,
        },
    ];

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.3}", r.auc),
                format!("{:+.3}", r.pearson_prediction_vs_variance),
                format!("{:+.3}", r.paper_reference),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Model", "AUC", "corr(pred, variance)", "paper corr"],
            &rows
        )
    );
    println!("Shape to reproduce: the tree-ensemble correlation is far larger than the GP's,");
    println!("so only the GP variance adds information beyond the prediction itself.");
    write_json("fig7", &results);
}
