//! Table II — AUC of every model variant (SVB / DTB / GPB, with and without
//! iWare-E) on each park dataset and test year, plus the paper's two
//! aggregate claims: iWare-E raises AUC on average, and GPB-iW is the most
//! consistently strong variant.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin table2           # quick grid
//! cargo run --release -p paws-bench --bin table2 -- --full # full grid
//! ```

use paws_bench::{
    dry_season_dataset, park_model_config, quarterly_dataset, scenario, write_json, Scale,
};
use paws_core::{format_table, train, WeakLearnerKind};
use paws_data::{split_by_test_year, Dataset};
use serde::Serialize;

#[derive(Serialize)]
struct Table2Row {
    dataset: String,
    test_year: u32,
    model: String,
    auc: f64,
}

fn evaluate_dataset(
    park_name: &str,
    label: &str,
    dataset: &Dataset,
    test_years: &[u32],
    scale: Scale,
    rows: &mut Vec<Table2Row>,
) {
    for &year in test_years {
        let Some(split) = split_by_test_year(dataset, year, 3) else {
            eprintln!("  [skip] {label} {year}: split unavailable");
            continue;
        };
        for use_iware in [false, true] {
            for learner in WeakLearnerKind::all() {
                let config = {
                    let mut c = park_model_config(park_name, learner, use_iware, scale);
                    c.seed = 100 + year as u64;
                    c
                };
                let model = train(dataset, &split, &config);
                let auc = model.auc_on(dataset, &split.test);
                println!("  {label:<10} {year}  {:<7} AUC = {auc:.3}", config.name());
                rows.push(Table2Row {
                    dataset: label.to_string(),
                    test_year: year,
                    model: config.name(),
                    auc,
                });
            }
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    println!(
        "Table II: predictive performance (AUC) per model variant [{} scale]\n",
        if scale.is_full() { "full" } else { "quick" }
    );

    let mut rows: Vec<Table2Row> = Vec::new();
    let park_years: Vec<(&str, Vec<u32>)> = if scale.is_full() {
        vec![
            ("MFNP", vec![2014, 2015, 2016]),
            ("QENP", vec![2014, 2015, 2016]),
            ("SWS", vec![2016, 2017, 2018]),
        ]
    } else {
        vec![
            ("MFNP", vec![2016]),
            ("QENP", vec![2016]),
            ("SWS", vec![2017]),
        ]
    };

    for (park_name, years) in &park_years {
        let sc = scenario(park_name);
        let dataset = quarterly_dataset(&sc);
        evaluate_dataset(park_name, park_name, &dataset, years, scale, &mut rows);
        if *park_name == "SWS" {
            let dry = dry_season_dataset(&sc);
            evaluate_dataset(park_name, "SWS dry", &dry, years, scale, &mut rows);
        }
    }

    // Pivot: one row per (dataset, year), one column per model.
    let models = ["SVB", "DTB", "GPB", "SVB-iW", "DTB-iW", "GPB-iW"];
    let mut keys: Vec<(String, u32)> = rows
        .iter()
        .map(|r| (r.dataset.clone(), r.test_year))
        .collect();
    keys.dedup();
    let table: Vec<Vec<String>> = keys
        .iter()
        .map(|(ds, year)| {
            let mut row = vec![ds.clone(), year.to_string()];
            for m in &models {
                let auc = rows
                    .iter()
                    .find(|r| &r.dataset == ds && r.test_year == *year && r.model == *m)
                    .map(|r| format!("{:.3}", r.auc))
                    .unwrap_or_else(|| "-".to_string());
                row.push(auc);
            }
            row
        })
        .collect();
    println!();
    println!(
        "{}",
        format_table(
            &["Dataset", "Year", "SVB", "DTB", "GPB", "SVB-iW", "DTB-iW", "GPB-iW"],
            &table
        )
    );

    // Aggregate claims.
    let avg = |f: &dyn Fn(&Table2Row) -> bool| {
        let vals: Vec<f64> = rows.iter().filter(|r| f(r)).map(|r| r.auc).collect();
        paws_bench::mean(&vals)
    };
    let plain = avg(&|r: &Table2Row| !r.model.ends_with("-iW"));
    let iware = avg(&|r: &Table2Row| r.model.ends_with("-iW"));
    println!("Average AUC without iWare-E: {plain:.3}");
    println!("Average AUC with    iWare-E: {iware:.3}");
    println!(
        "iWare-E gain: {:+.3}   (paper: +0.100 on average)",
        iware - plain
    );

    // How often is GPB-iW the best variant?
    let mut gpb_best = 0usize;
    for (ds, year) in &keys {
        let best = models
            .iter()
            .filter_map(|m| {
                rows.iter()
                    .find(|r| &r.dataset == ds && r.test_year == *year && r.model == *m)
                    .map(|r| (m, r.auc))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((name, _)) = best {
            if *name == "GPB-iW" {
                gpb_best += 1;
            }
        }
    }
    println!(
        "GPB-iW is the best variant in {}/{} dataset-year cases (paper: best in over half).",
        gpb_best,
        keys.len()
    );

    write_json("table2", &rows);
}
