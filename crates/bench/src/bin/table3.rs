//! Table III / Figure 10 — simulated field tests in MFNP and SWS: detected
//! poaching per patrolled cell in high / medium / low predicted-risk blocks,
//! with Pearson chi-squared significance tests.
//!
//! The real trials were two MFNP trials (Nov–Dec 2017 and Jan–Mar 2018, 2×2
//! km blocks, DTB-iW predictions) and two SWS trials (Dec 2018–Jan 2019 and
//! Feb–Mar 2019, 3×3 km blocks, GPB-iW on dry-season data). The simulated
//! protocol mirrors those choices against the synthetic ground truth.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin table3
//! ```

use paws_bench::{
    dry_season_dataset, park_model_config, quarterly_dataset, scenario, write_json, Scale,
};
use paws_core::{format_table, train, WeakLearnerKind};
use paws_data::{split_by_test_year, Dataset};
use paws_field::{
    design_field_test, run_trial, ProtocolConfig, RiskGroup, TrialConfig, TrialOutcome,
};
use paws_sim::Season;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct TrialReport {
    name: String,
    months: usize,
    chi_squared: f64,
    p_value: f64,
    ranking_holds: bool,
    rows: Vec<(String, usize, usize, f64, f64)>,
}

fn report(name: &str, months: usize, outcome: &TrialOutcome) -> TrialReport {
    let rows = RiskGroup::all()
        .iter()
        .map(|&g| {
            let r = outcome.group(g);
            (
                g.label().to_string(),
                r.observed_cells,
                r.patrolled_cells,
                r.effort_km,
                r.obs_per_cell,
            )
        })
        .collect();
    TrialReport {
        name: name.to_string(),
        months,
        chi_squared: outcome.chi_squared.statistic,
        p_value: outcome.chi_squared.p_value,
        ranking_holds: outcome.ranking_holds(),
        rows,
    }
}

fn print_report(r: &TrialReport) {
    println!("{} ({} months):", r.name, r.months);
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(g, obs, cells, effort, rate)| {
            vec![
                g.clone(),
                obs.to_string(),
                cells.to_string(),
                format!("{effort:.1}"),
                format!("{rate:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Risk group",
                "# Obs.",
                "# Cells",
                "Effort",
                "# Obs. / # Cells"
            ],
            &rows
        )
    );
    println!(
        "chi-squared = {:.2}, p = {:.4}, High >= Medium >= Low: {}\n",
        r.chi_squared, r.p_value, r.ranking_holds
    );
}

/// Train the park's field-test model, produce a risk map and historical
/// effort, and design the block layout.
#[allow(clippy::too_many_arguments)]
fn design(
    park_name: &str,
    dataset: &Dataset,
    test_year: u32,
    learner: WeakLearnerKind,
    block_size: u32,
    blocks_per_group: usize,
    scale: Scale,
    seed: u64,
) -> (paws_core::Scenario, paws_field::FieldTestPlan) {
    let sc = scenario(park_name);
    let split = split_by_test_year(dataset, test_year, 3).expect("test year present");
    let config = park_model_config(park_name, learner, true, scale);
    let model = train(dataset, &split, &config);
    println!(
        "{park_name}: {} test AUC {:.3}",
        config.name(),
        model.auc_on(dataset, &split.test)
    );

    let prev = dataset.coverage.last().unwrap().clone();
    let (risk, _) = model.risk_map(&sc.park, dataset, &prev, 1.0);
    let historical: Vec<f64> = (0..sc.park.n_cells())
        .map(|i| dataset.coverage.iter().map(|step| step[i]).sum())
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let plan = design_field_test(
        &sc.park,
        &risk,
        &historical,
        &ProtocolConfig {
            block_size,
            blocks_per_group,
            ..ProtocolConfig::default()
        },
        &mut rng,
    );
    (sc, plan)
}

fn main() {
    let scale = Scale::from_args();
    println!("Table III / Fig. 10: simulated field tests\n");
    let mut reports = Vec::new();

    // MFNP: DTB-iW predictions, 2×2 km blocks, two trials (2 and 3 months).
    {
        let sc0 = scenario("MFNP");
        let dataset = quarterly_dataset(&sc0);
        let (sc, plan) = design(
            "MFNP",
            &dataset,
            2016,
            WeakLearnerKind::DecisionTree,
            2,
            8,
            scale,
            41,
        );
        for (label, months, seed) in [
            ("MFNP trial 1 (Nov-Dec 2017)", 2, 1u64),
            ("MFNP trial 2 (Jan-Mar 2018)", 3, 2),
        ] {
            let outcome = run_trial(
                &sc.park,
                &sc.poacher,
                &plan,
                &TrialConfig {
                    months,
                    season: Season::Dry,
                    detection: sc.sim.detection,
                    ..TrialConfig::default()
                },
                seed,
            );
            let r = report(label, months, &outcome);
            print_report(&r);
            reports.push(r);
        }
    }

    // SWS: GPB-iW on dry-season data, 3×3 km blocks, five blocks per group.
    {
        let sc0 = scenario("SWS");
        let dataset = dry_season_dataset(&sc0);
        let (sc, plan) = design(
            "SWS",
            &dataset,
            2017,
            WeakLearnerKind::GaussianProcess,
            3,
            5,
            scale,
            43,
        );
        for (label, months, seed) in [
            ("SWS trial 1 (Dec 2018-Jan 2019)", 2, 3u64),
            ("SWS trial 2 (Feb-Mar 2019)", 2, 4),
        ] {
            let outcome = run_trial(
                &sc.park,
                &sc.poacher,
                &plan,
                &TrialConfig {
                    months,
                    season: Season::Dry,
                    detection: sc.sim.detection,
                    patrols_per_block_month: 5,
                    patrol_length_km: 20.0,
                    ..TrialConfig::default()
                },
                seed,
            );
            let r = report(label, months, &outcome);
            print_report(&r);
            reports.push(r);
        }
    }

    let significant = reports.iter().filter(|r| r.p_value < 0.05).count();
    let ranked = reports.iter().filter(|r| r.ranking_holds).count();
    println!(
        "{}/{} trials significant at 0.05 (paper: all reported trials), {}/{} trials with High >= Medium >= Low.",
        significant,
        reports.len(),
        ranked,
        reports.len()
    );
    write_json("table3", &reports);
}
