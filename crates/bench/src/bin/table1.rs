//! Table I — "About the datasets": number of features, cells, points,
//! positive labels, percent positive and average patrol effort for MFNP,
//! QENP, SWS and SWS dry season.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin table1
//! ```

use paws_bench::{dry_season_dataset, quarterly_dataset, study_scenarios, write_json};
use paws_core::format_table;
use paws_data::DatasetStats;
use serde::Serialize;

#[derive(Serialize)]
struct Table1Row {
    name: String,
    paper_features: usize,
    paper_cells: usize,
    paper_points: usize,
    paper_pct_positive: f64,
    paper_avg_effort: f64,
    measured: DatasetStats,
}

fn paper_reference(name: &str) -> (usize, usize, usize, f64, f64) {
    match name {
        "MFNP" => (22, 4613, 18_254, 14.3, 1.75),
        "QENP" => (19, 2522, 19_864, 4.7, 2.08),
        "SWS" => (21, 3750, 43_269, 0.36, 3.96),
        "SWS dry" => (21, 3750, 30_569, 0.25, 3.03),
        _ => unreachable!(),
    }
}

fn main() {
    println!("Table I: dataset statistics (paper reference vs this reproduction)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();

    for scenario in study_scenarios() {
        let mut variants: Vec<(String, DatasetStats)> = vec![(
            scenario.park.name.clone(),
            DatasetStats::compute(&scenario.park.name, &quarterly_dataset(&scenario)),
        )];
        if scenario.park.name == "SWS" {
            variants.push((
                "SWS dry".to_string(),
                DatasetStats::compute("SWS dry", &dry_season_dataset(&scenario)),
            ));
        }
        for (name, stats) in variants {
            let (pf, pc, pp, ppct, peff) = paper_reference(&name);
            rows.push(vec![
                name.clone(),
                format!("{} / {}", pf, stats.n_features),
                format!("{} / {}", pc, stats.n_cells),
                format!("{} / {}", pp, stats.n_points),
                format!("{:.2} / {:.2}", ppct, stats.pct_positive),
                format!("{:.2} / {:.2}", peff, stats.avg_effort_km),
            ]);
            json.push(Table1Row {
                name,
                paper_features: pf,
                paper_cells: pc,
                paper_points: pp,
                paper_pct_positive: ppct,
                paper_avg_effort: peff,
                measured: stats,
            });
        }
    }

    println!(
        "{}",
        format_table(
            &[
                "Dataset",
                "Features (paper/ours)",
                "Cells (paper/ours)",
                "Points (paper/ours)",
                "% positive (paper/ours)",
                "Avg effort km (paper/ours)",
            ],
            &rows
        )
    );
    write_json("table1", &json);
}
