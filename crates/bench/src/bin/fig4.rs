//! Figure 4 — percentage of positive labels at different patrol-effort
//! percentile thresholds, for the training and test portions of each park's
//! dataset.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin fig4
//! ```

use paws_bench::{dry_season_dataset, quarterly_dataset, study_scenarios, write_json};
use paws_core::format_table;
use paws_data::{positive_rate_by_effort_percentile, split_by_test_year, Dataset, ThresholdPoint};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Series {
    dataset: String,
    test_year: u32,
    train: Vec<ThresholdPoint>,
    test: Vec<ThresholdPoint>,
}

fn curves(dataset: &Dataset, name: &str, test_year: u32) -> Option<Fig4Series> {
    let split = split_by_test_year(dataset, test_year, 3)?;
    let percentiles: Vec<f64> = (0..=8).map(|i| i as f64 * 10.0).collect();
    let make = |idx: &[usize]| {
        let efforts = dataset.efforts(idx);
        let labels: Vec<bool> = idx.iter().map(|&i| dataset.points[i].label).collect();
        positive_rate_by_effort_percentile(&efforts, &labels, &percentiles)
    };
    Some(Fig4Series {
        dataset: name.to_string(),
        test_year,
        train: make(&split.train),
        test: make(&split.test),
    })
}

fn main() {
    println!("Figure 4: % positive labels vs patrol-effort percentile threshold\n");
    let mut all = Vec::new();

    for scenario in study_scenarios() {
        let (dataset, name, test_year) = match scenario.park.name.as_str() {
            "SWS" => (dry_season_dataset(&scenario), "SWS (dry)", 2017),
            other => (quarterly_dataset(&scenario), other, 2016),
        };
        let Some(series) = curves(&dataset, name, test_year) else {
            continue;
        };
        println!("{} (test year {}):", series.dataset, series.test_year);
        let rows: Vec<Vec<String>> = series
            .train
            .iter()
            .zip(&series.test)
            .map(|(tr, te)| {
                vec![
                    format!("{:.0}", tr.percentile),
                    format!("{:.2}", tr.effort_km),
                    format!("{:.2}", tr.pct_positive),
                    format!("{:.2}", te.pct_positive),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "Effort percentile",
                    "Threshold (km)",
                    "% positive (train)",
                    "% positive (test)"
                ],
                &rows
            )
        );
        all.push(series);
    }

    println!("The paper's qualitative finding: the positive-label rate rises with the");
    println!("patrol-effort threshold in every park (one-sided label noise).");
    write_json("fig4", &all);
}
