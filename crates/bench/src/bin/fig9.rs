//! Figure 9 — prescriptive-model runtime (a) and patrol-plan utility (b) as
//! a function of the number of segments in the PWL approximation, for the
//! three parks.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin fig9            # reduced sweep
//! cargo run --release -p paws-bench --bin fig9 -- --full  # 5..25 segments
//! cargo run --release -p paws-bench --bin fig9 -- --llc   # LLC park sizes
//! ```
//!
//! `--llc` swaps the segment sweep for the runtime-vs-park-size curve at
//! LLC scale (10k–100k cells, every cell a candidate): the workload the
//! column-generation planner over the sparse revised simplex exists for.

use paws_bench::{
    full_reach_problem, mean, park_model_config, quarterly_dataset, scenario, write_json, Scale,
};
use paws_core::{format_table, train, WeakLearnerKind};
use paws_data::split_by_test_year;
use paws_geo::parks::llc_park_spec;
use paws_geo::Park;
use paws_plan::{plan, squash_matrix, PlannerConfig, PlanningProblem};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Fig9Point {
    park: String,
    segments: usize,
    runtime_seconds: f64,
    utility: f64,
}

#[derive(Serialize)]
struct Fig9LlcPoint {
    cells: usize,
    lambda_vars: usize,
    budget_km: f64,
    runtime_seconds: f64,
    status: String,
    objective: f64,
    colgen_rounds: usize,
}

/// `--llc`: planner runtime vs park size at LLC scale. Auto decomposition
/// routes every one of these through column generation over the sparse
/// revised simplex — the monolithic dense tableau would need tens of
/// gigabytes before the first pivot.
fn llc_scaling(scale: Scale) {
    let sizes: &[usize] = if scale.is_full() {
        &[10_000, 25_000, 50_000, 100_000]
    } else {
        &[10_000, 25_000, 50_000]
    };
    println!("Figure 9 (LLC): robust planner runtime vs park size\n");
    let config = PlannerConfig::default();
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &cells in sizes {
        let park = Park::generate(&llc_park_spec(cells), 11);
        let budget_km = 0.05 * cells as f64;
        let problem = full_reach_problem(&park, budget_km, 1.0);
        let start = Instant::now();
        let result = plan(&problem, &config);
        let runtime_seconds = start.elapsed().as_secs_f64();
        let point = Fig9LlcPoint {
            cells,
            lambda_vars: cells * (config.segments + 1),
            budget_km,
            runtime_seconds,
            status: format!("{:?}", result.status),
            objective: result.objective,
            colgen_rounds: result.lp_solves,
        };
        rows.push(vec![
            cells.to_string(),
            point.lambda_vars.to_string(),
            format!("{:.2}", point.runtime_seconds),
            point.status.clone(),
            format!("{:.2}", point.objective),
            point.colgen_rounds.to_string(),
        ]);
        points.push(point);
    }
    println!(
        "{}",
        format_table(
            &[
                "cells",
                "λ vars",
                "runtime (s)",
                "status",
                "objective",
                "CG rounds"
            ],
            &rows
        )
    );
    write_json("fig9_llc", &points);
}

fn main() {
    let scale = Scale::from_args();
    if std::env::args().any(|a| a == "--llc") {
        llc_scaling(scale);
        return;
    }
    println!(
        "Figure 9: planner runtime and utility vs PWL segments [{} scale]\n",
        if scale.is_full() { "full" } else { "quick" }
    );
    let segment_counts: Vec<usize> = if scale.is_full() {
        (1..=5).map(|i| i * 5).collect()
    } else {
        vec![5, 10, 15, 25]
    };

    let mut points = Vec::new();
    for park_name in ["MFNP", "QENP", "SWS"] {
        let sc = scenario(park_name);
        let dataset = quarterly_dataset(&sc);
        let test_year = if park_name == "SWS" { 2017 } else { 2016 };
        let split = split_by_test_year(&dataset, test_year, 3).expect("test year present");
        let config = park_model_config(park_name, WeakLearnerKind::GaussianProcess, true, scale);
        let model = train(&dataset, &split, &config);

        let prev = dataset.coverage.last().unwrap().clone();
        let effort_grid: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
        let (probs, raw_vars) = model.park_response(&sc.park, &dataset, &prev, &effort_grid);
        let (_, vars) = squash_matrix(&raw_vars);

        // Fully robust plans (β = 1), as in Fig. 9b; a couple of posts keep
        // runtimes representative without dominating the harness.
        let posts: Vec<_> = sc.park.patrol_posts.iter().copied().take(3).collect();
        let mut rows = Vec::new();
        for &segments in &segment_counts {
            let planner = PlannerConfig {
                segments,
                ..PlannerConfig::default()
            };
            let mut runtimes = Vec::new();
            let mut utilities = Vec::new();
            for &post in &posts {
                let problem = PlanningProblem::from_response(
                    &sc.park,
                    post,
                    &effort_grid,
                    &probs,
                    &vars,
                    10.0,
                    4,
                    1.0,
                );
                let result = plan(&problem, &planner);
                runtimes.push(result.solve_time.as_secs_f64());
                utilities.push(problem.coverage_utility(&result.coverage, 1.0));
            }
            let point = Fig9Point {
                park: park_name.to_string(),
                segments,
                runtime_seconds: mean(&runtimes),
                utility: mean(&utilities),
            };
            rows.push(vec![
                segments.to_string(),
                format!("{:.3}", point.runtime_seconds),
                format!("{:.3}", point.utility),
            ]);
            points.push(point);
        }
        println!("{park_name}:");
        println!(
            "{}",
            format_table(&["PWL segments", "runtime (s)", "utility U_1(C_1)"], &rows)
        );
    }

    println!("Shapes to reproduce: runtime grows with the number of segments (Fig. 9a)");
    println!("and the utility of the robust solution converges by ~20-25 segments (Fig. 9b).");
    write_json("fig9", &points);
}
