//! Figure 9 — prescriptive-model runtime (a) and patrol-plan utility (b) as
//! a function of the number of segments in the PWL approximation, for the
//! three parks.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin fig9            # reduced sweep
//! cargo run --release -p paws-bench --bin fig9 -- --full  # 5..25 segments
//! ```

use paws_bench::{mean, park_model_config, quarterly_dataset, scenario, write_json, Scale};
use paws_core::{format_table, train, WeakLearnerKind};
use paws_data::split_by_test_year;
use paws_plan::{plan, squash_matrix, PlannerConfig, PlanningProblem};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Point {
    park: String,
    segments: usize,
    runtime_seconds: f64,
    utility: f64,
}

fn main() {
    let scale = Scale::from_args();
    println!(
        "Figure 9: planner runtime and utility vs PWL segments [{} scale]\n",
        if scale.is_full() { "full" } else { "quick" }
    );
    let segment_counts: Vec<usize> = if scale.is_full() {
        (1..=5).map(|i| i * 5).collect()
    } else {
        vec![5, 10, 15, 25]
    };

    let mut points = Vec::new();
    for park_name in ["MFNP", "QENP", "SWS"] {
        let sc = scenario(park_name);
        let dataset = quarterly_dataset(&sc);
        let test_year = if park_name == "SWS" { 2017 } else { 2016 };
        let split = split_by_test_year(&dataset, test_year, 3).expect("test year present");
        let config = park_model_config(park_name, WeakLearnerKind::GaussianProcess, true, scale);
        let model = train(&dataset, &split, &config);

        let prev = dataset.coverage.last().unwrap().clone();
        let effort_grid: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
        let (probs, raw_vars) = model.park_response(&sc.park, &dataset, &prev, &effort_grid);
        let (_, vars) = squash_matrix(&raw_vars);

        // Fully robust plans (β = 1), as in Fig. 9b; a couple of posts keep
        // runtimes representative without dominating the harness.
        let posts: Vec<_> = sc.park.patrol_posts.iter().copied().take(3).collect();
        let mut rows = Vec::new();
        for &segments in &segment_counts {
            let planner = PlannerConfig {
                segments,
                ..PlannerConfig::default()
            };
            let mut runtimes = Vec::new();
            let mut utilities = Vec::new();
            for &post in &posts {
                let problem = PlanningProblem::from_response(
                    &sc.park,
                    post,
                    &effort_grid,
                    &probs,
                    &vars,
                    10.0,
                    4,
                    1.0,
                );
                let result = plan(&problem, &planner);
                runtimes.push(result.solve_time.as_secs_f64());
                utilities.push(problem.coverage_utility(&result.coverage, 1.0));
            }
            let point = Fig9Point {
                park: park_name.to_string(),
                segments,
                runtime_seconds: mean(&runtimes),
                utility: mean(&utilities),
            };
            rows.push(vec![
                segments.to_string(),
                format!("{:.3}", point.runtime_seconds),
                format!("{:.3}", point.utility),
            ]);
            points.push(point);
        }
        println!("{park_name}:");
        println!(
            "{}",
            format_table(&["PWL segments", "runtime (s)", "utility U_1(C_1)"], &rows)
        );
    }

    println!("Shapes to reproduce: runtime grows with the number of segments (Fig. 9a)");
    println!("and the utility of the robust solution converges by ~20-25 segments (Fig. 9b).");
    write_json("fig9", &points);
}
