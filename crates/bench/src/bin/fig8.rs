//! Figure 8 — improvement in solution quality (and snare detections) from
//! accounting for uncertainty in patrol planning.
//!
//! Panels (a)–(c): the ratio Uβ(Cβ)/Uβ(Cβ=0) as a function of the
//! robustness parameter β, averaged and maximised over patrol posts, for
//! QENP / MFNP / SWS. Panels (d)–(f): the same ratio as a function of the
//! number of PWL segments at β = 1. The section's headline claim — robust
//! plans detect ≈30 % more snares on average — is checked against the
//! ground-truth poacher model.
//!
//! ```bash
//! cargo run --release -p paws-bench --bin fig8            # reduced sweep
//! cargo run --release -p paws-bench --bin fig8 -- --full  # full sweep
//! cargo run --release -p paws-bench --bin fig8 -- --llc   # engine curves
//! ```
//!
//! `--llc` swaps the quality sweeps for LP-engine scaling curves: the same
//! park-wide allocation LP solved through the column-generation sparse
//! planner, the monolithic sparse revised simplex, and the dense tableau
//! reference, at study-park sizes (every cell a candidate). The dense
//! engine runs under a wall-clock budget so the curve terminates even
//! where it is hopelessly outscaled.

use paws_bench::{
    full_reach_problem, mean, park_model_config, quarterly_dataset, scenario, write_json, Scale,
};
use paws_core::{format_table, train, WeakLearnerKind};
use paws_data::split_by_test_year;
use paws_geo::parks::{mfnp_spec, qenp_spec, sws_spec, test_park_spec};
use paws_geo::Park;
use paws_plan::{
    compare_with_ground_truth, plan, squash_matrix, Decomposition, PlannerConfig, PlanningProblem,
};
use paws_sim::Season;
use paws_solver::{LpEngine, MilpOptions, SolveBudget};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct BetaPoint {
    park: String,
    beta: f64,
    avg_ratio: f64,
    max_ratio: f64,
    avg_detection_gain: f64,
}

#[derive(Serialize)]
struct SegmentPoint {
    park: String,
    segments: usize,
    avg_ratio: f64,
    max_ratio: f64,
}

#[derive(Serialize)]
struct Fig8Output {
    beta_sweep: Vec<BetaPoint>,
    segment_sweep: Vec<SegmentPoint>,
    overall_detection_improvement_pct: f64,
}

const PATROL_LENGTH_KM: f64 = 10.0;
const N_PATROLS: usize = 4;

#[derive(Serialize)]
struct EnginePoint {
    park: String,
    cells: usize,
    lambda_vars: usize,
    engine: String,
    runtime_seconds: f64,
    status: String,
    objective: f64,
}

/// `--llc`: dense-vs-sparse LP engine scaling on park-wide allocation LPs.
fn llc_engines(scale: Scale) {
    // The dense engine gets a generous wall-clock budget; past it, the
    // point is recorded as Degraded with the budget as a runtime floor.
    const DENSE_CAP: Duration = Duration::from_secs(600);
    let mut parks = vec![
        ("test", Park::generate(&test_park_spec(), 11)),
        ("QENP", Park::generate(&qenp_spec(), 11)),
        ("SWS", Park::generate(&sws_spec(), 11)),
    ];
    if scale.is_full() {
        parks.push(("MFNP", Park::generate(&mfnp_spec(), 11)));
    }
    println!("Figure 8 (LLC): LP engine scaling on park-wide allocation LPs\n");
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (name, park) in &parks {
        let cells = park.n_cells();
        let problem = full_reach_problem(park, 0.05 * cells as f64, 1.0);
        let base = PlannerConfig::default();
        let configs = [
            (
                "sparse-colgen",
                PlannerConfig {
                    decomposition: Decomposition::ColumnGeneration,
                    ..base.clone()
                },
            ),
            (
                "sparse-full",
                PlannerConfig {
                    decomposition: Decomposition::FullModel,
                    ..base.clone()
                },
            ),
            (
                "dense-full",
                PlannerConfig {
                    decomposition: Decomposition::FullModel,
                    milp: MilpOptions {
                        engine: LpEngine::Dense,
                        budget: SolveBudget::with_time_limit(DENSE_CAP),
                        ..MilpOptions::default()
                    },
                    ..base.clone()
                },
            ),
        ];
        for (engine, config) in configs {
            let start = Instant::now();
            let result = plan(&problem, &config);
            let runtime_seconds = start.elapsed().as_secs_f64();
            let point = EnginePoint {
                park: name.to_string(),
                cells,
                lambda_vars: cells * (base.segments + 1),
                engine: engine.to_string(),
                runtime_seconds,
                status: format!("{:?}", result.status),
                objective: result.objective,
            };
            rows.push(vec![
                name.to_string(),
                cells.to_string(),
                engine.to_string(),
                format!("{:.2}", point.runtime_seconds),
                point.status.clone(),
                format!("{:.3}", point.objective),
            ]);
            println!(
                "  {name} ({cells} cells) {engine}: {:.2}s {} obj={:.3}",
                point.runtime_seconds, point.status, point.objective
            );
            points.push(point);
        }
    }
    println!(
        "\n{}",
        format_table(
            &[
                "park",
                "cells",
                "engine",
                "runtime (s)",
                "status",
                "objective"
            ],
            &rows
        )
    );
    write_json("fig8_llc", &points);
}

fn main() {
    let scale = Scale::from_args();
    if std::env::args().any(|a| a == "--llc") {
        llc_engines(scale);
        return;
    }
    println!(
        "Figure 8: gain from uncertainty-aware patrol planning [{} scale]\n",
        if scale.is_full() { "full" } else { "quick" }
    );

    let betas: Vec<f64> = if scale.is_full() {
        vec![0.80, 0.85, 0.90, 0.95, 1.0]
    } else {
        vec![0.80, 0.90, 1.0]
    };
    let segment_counts: Vec<usize> = if scale.is_full() {
        vec![5, 10, 15, 20, 25, 30]
    } else {
        vec![5, 10, 20, 30]
    };
    let parks = ["QENP", "MFNP", "SWS"];

    let mut beta_sweep = Vec::new();
    let mut segment_sweep = Vec::new();
    let mut all_detection_gains = Vec::new();

    for park_name in parks {
        println!("=== {park_name} ===");
        let sc = scenario(park_name);
        let dataset = quarterly_dataset(&sc);
        let test_year = if park_name == "SWS" { 2017 } else { 2016 };
        let split = split_by_test_year(&dataset, test_year, 3).expect("test year present");
        let config = park_model_config(park_name, WeakLearnerKind::GaussianProcess, true, scale);
        let model = train(&dataset, &split, &config);

        // Park-wide response curves are computed once and reused for every
        // post, β and segment count.
        let prev = dataset.coverage.last().unwrap().clone();
        let effort_grid: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
        let (probs, raw_vars) = model.park_response(&sc.park, &dataset, &prev, &effort_grid);
        let (_, vars) = squash_matrix(&raw_vars);
        let attack = sc.attack_probabilities(&vec![0.0; sc.park.n_cells()], Season::Dry);
        let detection = sc.sim.detection;

        let posts: Vec<_> = if scale.is_full() {
            sc.park.patrol_posts.clone()
        } else {
            sc.park.patrol_posts.iter().copied().take(4).collect()
        };
        let build = |post, beta| {
            PlanningProblem::from_response(
                &sc.park,
                post,
                &effort_grid,
                &probs,
                &vars,
                PATROL_LENGTH_KM,
                N_PATROLS,
                beta,
            )
        };

        // (a)-(c): sweep β.
        let mut rows = Vec::new();
        for &beta in &betas {
            let mut ratios = Vec::new();
            let mut gains = Vec::new();
            for &post in &posts {
                let problem = build(post, beta);
                let attack_local: Vec<f64> =
                    problem.cells.iter().map(|c| attack[c.park_index]).collect();
                let cmp = compare_with_ground_truth(
                    &problem,
                    &PlannerConfig::default(),
                    &attack_local,
                    |c| detection.probability(c),
                );
                ratios.push(cmp.improvement_ratio);
                if cmp.baseline_detections > 1e-9 {
                    gains.push(cmp.robust_detections / cmp.baseline_detections);
                }
            }
            let point = BetaPoint {
                park: park_name.to_string(),
                beta,
                avg_ratio: mean(&ratios),
                max_ratio: ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                avg_detection_gain: mean(&gains),
            };
            rows.push(vec![
                format!("{beta:.2}"),
                format!("{:.3}", point.avg_ratio),
                format!("{:.3}", point.max_ratio),
                format!("{:.3}", point.avg_detection_gain),
            ]);
            all_detection_gains.extend(gains);
            beta_sweep.push(point);
        }
        println!(
            "{}",
            format_table(
                &["beta", "avg ratio", "max ratio", "avg detection gain"],
                &rows
            )
        );

        // (d)-(f): sweep PWL segments at β = 1.
        let mut rows = Vec::new();
        for &segments in &segment_counts {
            let planner = PlannerConfig {
                segments,
                ..PlannerConfig::default()
            };
            let mut ratios = Vec::new();
            for &post in &posts {
                let problem = build(post, 1.0);
                let mut baseline_problem = problem.clone();
                baseline_problem.beta = 0.0;
                let robust = plan(&problem, &planner);
                let baseline = plan(&baseline_problem, &planner);
                let ub = problem.coverage_utility(&baseline.coverage, 1.0).max(1e-9);
                ratios.push(problem.coverage_utility(&robust.coverage, 1.0) / ub);
            }
            let point = SegmentPoint {
                park: park_name.to_string(),
                segments,
                avg_ratio: mean(&ratios),
                max_ratio: ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            };
            rows.push(vec![
                segments.to_string(),
                format!("{:.3}", point.avg_ratio),
                format!("{:.3}", point.max_ratio),
            ]);
            segment_sweep.push(point);
        }
        println!(
            "{}",
            format_table(&["PWL segments (beta=1)", "avg ratio", "max ratio"], &rows)
        );
    }

    let overall = (mean(&all_detection_gains) - 1.0) * 100.0;
    println!("Average increase in expected snare detections from robust planning: {overall:+.1}%");
    println!("(paper: +30% on average)");

    write_json(
        "fig8",
        &Fig8Output {
            beta_sweep,
            segment_sweep,
            overall_detection_improvement_pct: overall,
        },
    );
}
