//! The synthetic full-reach allocation problem (the LLC benchmark workload)
//! must solve to the same objective through column generation as through
//! the monolithic model — at a scale where the monolith is still cheap.

use paws_bench::full_reach_problem;
use paws_geo::parks::test_park_spec;
use paws_geo::Park;
use paws_plan::{plan, Decomposition, PlannerConfig};
use paws_solver::SolveStatus;

#[test]
fn colgen_matches_full_model_on_the_full_reach_workload() {
    let park = Park::generate(&test_park_spec(), 11);
    let problem = full_reach_problem(&park, 0.05 * park.n_cells() as f64, 1.0);

    let full = plan(
        &problem,
        &PlannerConfig {
            decomposition: Decomposition::FullModel,
            ..PlannerConfig::default()
        },
    );
    let colgen = plan(
        &problem,
        &PlannerConfig {
            decomposition: Decomposition::ColumnGeneration,
            ..PlannerConfig::default()
        },
    );
    assert_eq!(full.status, SolveStatus::Optimal);
    assert_eq!(colgen.status, SolveStatus::Optimal);
    assert!(
        (full.objective - colgen.objective).abs() <= 1e-6 * full.objective.abs().max(1.0),
        "full {} vs colgen {}",
        full.objective,
        colgen.objective
    );
    let spent: f64 = colgen.coverage.iter().sum();
    assert!(spent <= problem.budget_km() + 1e-6);
}
