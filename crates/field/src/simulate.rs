//! Simulated field deployment and Table III analysis.
//!
//! In the real field tests (Sec. VII) rangers were given the GPS centres of
//! the selected blocks — without their risk labels — and asked to focus
//! their patrols there for several months; afterwards the detections per
//! patrolled cell were compared across risk groups with a chi-squared test.
//! This module replays that protocol against the ground-truth poacher model:
//! targeted patrols are simulated towards each block, attacks and detections
//! are sampled, and the per-group summary rows of Table III / Fig. 10 are
//! produced.

use crate::chisq::{chi_squared_test, ChiSquaredResult};
use crate::protocol::{FieldTestPlan, RiskGroup};
use paws_geo::Park;
use paws_sim::patrol::{simulate_patrol, PatrolConfig};
use paws_sim::{DetectionModel, PoacherModel, Season};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated field trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialConfig {
    /// Number of months the trial runs (e.g. 2 for the SWS trials, 2–3 for MFNP).
    pub months: usize,
    /// Targeted patrols dispatched to each block per month.
    pub patrols_per_block_month: usize,
    /// Length of each targeted patrol in km.
    pub patrol_length_km: f64,
    /// Season the trial takes place in (Dry for the SWS trials).
    pub season: Season,
    /// Ranger detection model.
    pub detection: DetectionModel,
    /// Patrol-walk parameters (waypoint spacing is irrelevant here; the
    /// simulator's true effort is used directly).
    pub patrol: PatrolConfig,
}

impl Default for TrialConfig {
    fn default() -> Self {
        Self {
            months: 2,
            patrols_per_block_month: 4,
            patrol_length_km: 12.0,
            season: Season::Dry,
            detection: DetectionModel::default(),
            patrol: PatrolConfig {
                post_bias: 2.5,
                risk_seeking: 0.0,
                ..PatrolConfig::default()
            },
        }
    }
}

/// Per-risk-group outcome row (one row of Table III).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupOutcome {
    /// Risk group.
    pub group: RiskGroup,
    /// Number of cells in which poaching activity was observed (# Obs.).
    pub observed_cells: usize,
    /// Number of 1×1 km cells patrolled (# Cells).
    pub patrolled_cells: usize,
    /// Total patrol effort in km (Effort).
    pub effort_km: f64,
    /// Normalised observations, # Obs. / # Cells.
    pub obs_per_cell: f64,
}

/// Outcome of a simulated field trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Per-group rows in High / Medium / Low order.
    pub groups: Vec<GroupOutcome>,
    /// Chi-squared test of independence between risk group and observation.
    pub chi_squared: ChiSquaredResult,
}

impl TrialOutcome {
    /// The row of a specific group.
    pub fn group(&self, group: RiskGroup) -> &GroupOutcome {
        self.groups
            .iter()
            .find(|g| g.group == group)
            .expect("all groups are always reported")
    }

    /// True when detections per patrolled cell are ordered
    /// High ≥ Medium ≥ Low — the headline finding of the field tests.
    pub fn ranking_holds(&self) -> bool {
        let h = self.group(RiskGroup::High).obs_per_cell;
        let m = self.group(RiskGroup::Medium).obs_per_cell;
        let l = self.group(RiskGroup::Low).obs_per_cell;
        h >= m && m >= l
    }
}

/// Run one simulated field trial.
pub fn run_trial(
    park: &Park,
    poacher: &PoacherModel,
    plan: &FieldTestPlan,
    config: &TrialConfig,
    seed: u64,
) -> TrialOutcome {
    assert!(config.months >= 1, "trial needs at least one month");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = park.n_cells();

    // Accumulated over the whole trial.
    let mut total_effort = vec![0.0f64; n];
    let mut observed = vec![false; n];
    let mut prev_effort = vec![0.0f64; n];

    for _ in 0..config.months {
        // Rangers run targeted patrols to every block centre from the nearest
        // patrol post (they do not know the blocks' risk groups).
        let mut month_effort = vec![0.0f64; n];
        for block in &plan.blocks {
            let post = *park
                .patrol_posts
                .iter()
                .min_by(|a, b| {
                    park.grid
                        .distance_km(**a, block.centre)
                        .total_cmp(&park.grid.distance_km(**b, block.centre))
                })
                .expect("park has patrol posts");
            for _ in 0..config.patrols_per_block_month {
                // Rangers are asked to focus on the block, so the outing is
                // long enough to reach it from the post (possibly camping en
                // route, as the real teams do) plus the configured wandering
                // length inside and around the block.
                let approach_km = 2.0 * park.grid.distance_km(post, block.centre);
                let patrol_cfg = PatrolConfig {
                    patrol_length_km: config.patrol_length_km + approach_km,
                    ..config.patrol.clone()
                };
                let patrol = simulate_patrol(park, post, &patrol_cfg, Some(block.centre), &mut rng);
                for &(idx, km) in &patrol.true_effort {
                    month_effort[idx] += km;
                }
            }
        }

        // Poachers attack in response to last month's coverage; rangers
        // detect attacks in the cells they actually walked through.
        let attacks = poacher.sample_attacks(&prev_effort, config.season, &mut rng);
        for i in 0..n {
            if attacks[i] && rng.gen::<f64>() < config.detection.probability(month_effort[i]) {
                observed[i] = true;
            }
            total_effort[i] += month_effort[i];
        }
        prev_effort = month_effort;
    }

    // Aggregate per risk group, restricted to the experiment blocks.
    let mut groups = Vec::new();
    for group in RiskGroup::all() {
        let mut observed_cells = 0usize;
        let mut patrolled_cells = 0usize;
        let mut effort_km = 0.0;
        for block in plan.blocks_in(group) {
            for &cell in &block.cells {
                let i = park.cell_position(cell).expect("block cells are in park");
                if total_effort[i] > 0.0 {
                    patrolled_cells += 1;
                    effort_km += total_effort[i];
                    if observed[i] {
                        observed_cells += 1;
                    }
                }
            }
        }
        let obs_per_cell = if patrolled_cells == 0 {
            0.0
        } else {
            observed_cells as f64 / patrolled_cells as f64
        };
        groups.push(GroupOutcome {
            group,
            observed_cells,
            patrolled_cells,
            effort_km,
            obs_per_cell,
        });
    }

    // Chi-squared over the (group × observed/not-observed) table. Guard
    // against degenerate tables (no observations anywhere, or a group with
    // no patrolled cells) by adding a small continuity floor.
    let table: Vec<Vec<f64>> = groups
        .iter()
        .map(|g| {
            let obs = g.observed_cells as f64;
            let not = (g.patrolled_cells.saturating_sub(g.observed_cells)) as f64;
            vec![obs.max(0.25), not.max(0.25)]
        })
        .collect();
    let chi_squared = chi_squared_test(&table);

    TrialOutcome {
        groups,
        chi_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{design_field_test, ProtocolConfig};
    use paws_geo::parks::test_park_spec;
    use paws_sim::AttackModelConfig;

    fn setup() -> (Park, PoacherModel, FieldTestPlan) {
        let park = Park::generate(&test_park_spec(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let attack_cfg = AttackModelConfig {
            target_attack_rate: 0.25,
            ..AttackModelConfig::default()
        };
        let poacher = PoacherModel::new(&park, attack_cfg, &mut rng);
        // Use the ground-truth static risk as the "prediction" so the
        // protocol has a strong signal to separate groups.
        let risk: Vec<f64> = (0..park.n_cells())
            .map(|i| poacher.static_risk(i))
            .collect();
        let effort = vec![0.0; park.n_cells()];
        let plan = design_field_test(
            &park,
            &risk,
            &effort,
            &ProtocolConfig {
                block_size: 2,
                blocks_per_group: 4,
                ..ProtocolConfig::default()
            },
            &mut rng,
        );
        (park, poacher, plan)
    }

    #[test]
    fn trial_reports_all_three_groups() {
        let (park, poacher, plan) = setup();
        let outcome = run_trial(&park, &poacher, &plan, &TrialConfig::default(), 3);
        assert_eq!(outcome.groups.len(), 3);
        for g in &outcome.groups {
            assert!(
                g.patrolled_cells > 0,
                "every group should receive some patrols"
            );
            assert!(g.effort_km > 0.0);
            assert!(g.observed_cells <= g.patrolled_cells);
        }
    }

    #[test]
    fn high_risk_blocks_yield_more_detections_with_oracle_predictions() {
        let (park, poacher, plan) = setup();
        // Average over a few seeds to keep the test stable.
        let mut high = 0.0;
        let mut low = 0.0;
        for seed in 0..5 {
            let outcome = run_trial(&park, &poacher, &plan, &TrialConfig::default(), seed);
            high += outcome.group(RiskGroup::High).obs_per_cell;
            low += outcome.group(RiskGroup::Low).obs_per_cell;
        }
        assert!(
            high > low,
            "high-risk blocks should out-detect low-risk blocks ({high} vs {low})"
        );
    }

    #[test]
    fn chi_squared_is_computed_and_valid() {
        let (park, poacher, plan) = setup();
        let outcome = run_trial(&park, &poacher, &plan, &TrialConfig::default(), 11);
        assert!(outcome.chi_squared.p_value >= 0.0 && outcome.chi_squared.p_value <= 1.0);
        assert_eq!(outcome.chi_squared.dof, 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (park, poacher, plan) = setup();
        let a = run_trial(&park, &poacher, &plan, &TrialConfig::default(), 7);
        let b = run_trial(&park, &poacher, &plan, &TrialConfig::default(), 7);
        assert_eq!(
            a.group(RiskGroup::High).observed_cells,
            b.group(RiskGroup::High).observed_cells
        );
        assert_eq!(a.chi_squared.statistic, b.chi_squared.statistic);
    }

    #[test]
    fn longer_trials_accumulate_more_effort() {
        let (park, poacher, plan) = setup();
        let short = run_trial(
            &park,
            &poacher,
            &plan,
            &TrialConfig {
                months: 1,
                ..TrialConfig::default()
            },
            5,
        );
        let long = run_trial(
            &park,
            &poacher,
            &plan,
            &TrialConfig {
                months: 4,
                ..TrialConfig::default()
            },
            5,
        );
        let total = |o: &TrialOutcome| o.groups.iter().map(|g| g.effort_km).sum::<f64>();
        assert!(total(&long) > total(&short));
    }
}
