//! Pearson chi-squared test of independence.
//!
//! Sec. VII: "We use a Pearson's chi-squared test to assess independence of
//! the observations on two variables (# Obs. and Risk group)". The test is
//! applied to the contingency table of (risk group) × (cells with / without
//! detected poaching); the paper reports p-values of 1.05 × 10⁻², 2.3 × 10⁻²
//! and 0.7 × 10⁻² for the MFNP and SWS trials.

use serde::{Deserialize, Serialize};

/// Result of a chi-squared independence test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChiSquaredResult {
    /// The chi-squared statistic.
    pub statistic: f64,
    /// Degrees of freedom, (rows − 1)(cols − 1).
    pub dof: usize,
    /// The p-value (upper tail).
    pub p_value: f64,
}

impl ChiSquaredResult {
    /// Whether the association is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson chi-squared test of independence on an R×C contingency table of
/// observed counts.
///
/// # Panics
/// Panics when the table is not rectangular, has fewer than 2 rows or
/// columns, or a row/column total is zero (expected counts undefined).
pub fn chi_squared_test(table: &[Vec<f64>]) -> ChiSquaredResult {
    assert!(table.len() >= 2, "need at least two rows");
    let cols = table[0].len();
    assert!(cols >= 2, "need at least two columns");
    assert!(
        table.iter().all(|r| r.len() == cols),
        "ragged contingency table"
    );
    assert!(
        table.iter().flatten().all(|&x| x >= 0.0),
        "counts must be non-negative"
    );

    let row_totals: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_totals: Vec<f64> = (0..cols)
        .map(|c| table.iter().map(|r| r[c]).sum())
        .collect();
    let grand: f64 = row_totals.iter().sum();
    assert!(grand > 0.0, "empty contingency table");
    assert!(
        row_totals.iter().all(|&t| t > 0.0) && col_totals.iter().all(|&t| t > 0.0),
        "every row and column must have a positive total"
    );

    let mut statistic = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &obs) in row.iter().enumerate() {
            let expected = row_totals[i] * col_totals[j] / grand;
            statistic += (obs - expected).powi(2) / expected;
        }
    }
    let dof = (table.len() - 1) * (cols - 1);
    ChiSquaredResult {
        statistic,
        dof,
        p_value: chi_squared_sf(statistic, dof as f64),
    }
}

/// Upper-tail probability of the chi-squared distribution:
/// `P(X >= x)` with `k` degrees of freedom.
pub fn chi_squared_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - lower_regularized_gamma(k / 2.0, x / 2.0)
}

/// Lower regularised incomplete gamma function P(a, x), via the series
/// expansion for x < a + 1 and the continued fraction otherwise
/// (Numerical Recipes style).
fn lower_regularized_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid incomplete-gamma arguments");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(10.0) - (362880.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn chi_squared_sf_known_values() {
        // P(X >= 3.841) with 1 dof ≈ 0.05; P(X >= 5.991) with 2 dof ≈ 0.05.
        assert!((chi_squared_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi_squared_sf(5.991, 2.0) - 0.05).abs() < 1e-3);
        assert!((chi_squared_sf(9.210, 2.0) - 0.01).abs() < 1e-3);
        assert_eq!(chi_squared_sf(0.0, 3.0), 1.0);
    }

    #[test]
    fn independence_test_on_independent_table_is_not_significant() {
        // Perfectly proportional rows: statistic 0, p = 1.
        let table = vec![vec![10.0, 30.0], vec![20.0, 60.0]];
        let r = chi_squared_test(&table);
        assert!(r.statistic.abs() < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert_eq!(r.dof, 1);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn independence_test_on_associated_table_is_significant() {
        // Strong association between group and outcome.
        let table = vec![vec![30.0, 10.0], vec![5.0, 40.0]];
        let r = chi_squared_test(&table);
        assert!(r.statistic > 10.0);
        assert!(r.significant_at(0.01));
    }

    #[test]
    fn three_group_table_matches_reference_dof() {
        // 3 risk groups × 2 outcomes -> dof 2 (as in the field tests).
        let table = vec![vec![6.0, 12.0], vec![5.0, 16.0], vec![2.0, 8.0]];
        let r = chi_squared_test(&table);
        assert_eq!(r.dof, 2);
        assert!(r.p_value > 0.0 && r.p_value < 1.0);
    }

    #[test]
    fn hand_computed_statistic() {
        // Table: [[12, 8], [4, 16]]; expected under independence:
        // rows 20/20, cols 16/24, grand 40 -> E = [[8,12],[8,12]].
        // statistic = (4²/8 + 4²/12) * 2 = 2*(2 + 1.333) = 6.667.
        let r = chi_squared_test(&[vec![12.0, 8.0], vec![4.0, 16.0]]);
        assert!((r.statistic - 6.6667).abs() < 1e-3);
        assert!(r.significant_at(0.05));
        assert!(!r.significant_at(0.001));
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn zero_column_rejected() {
        chi_squared_test(&[vec![0.0, 5.0], vec![0.0, 7.0]]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_table_rejected() {
        chi_squared_test(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
