//! # paws-field
//!
//! The field-test protocol of Sec. VII, run against the simulated ground
//! truth instead of real ranger deployments: block selection by predicted
//! risk percentile ([`protocol`]), simulated blind deployments
//! ([`simulate`]), and the Pearson chi-squared analysis ([`chisq`]) that
//! produces the Table III / Fig. 10 summaries.

pub mod chisq;
pub mod protocol;
pub mod simulate;

pub use chisq::{chi_squared_sf, chi_squared_test, ChiSquaredResult};
pub use protocol::{design_field_test, FieldBlock, FieldTestPlan, ProtocolConfig, RiskGroup};
pub use simulate::{run_trial, GroupOutcome, TrialConfig, TrialOutcome};
