//! Field-test design: selecting experiment blocks by predicted risk.
//!
//! Sec. VII: risk predictions on 1×1 km cells are averaged over adjacent
//! cells to produce larger experiment blocks (3×3 km in SWS, 2×2 km in
//! MFNP); blocks that were frequently patrolled in the past are discarded
//! ("we discarded all blocks with historical patrol effort above the 50th
//! percentile, to ensure we were assessing the ability of our model to make
//! predictions in regions with limited data"); and high / medium / low risk
//! blocks are drawn from the 80–100, 40–60 and 0–20 risk percentiles. The
//! risk group of each block is *not* revealed to the rangers.

use paws_geo::{CellId, Park};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Predicted-risk group of an experiment block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RiskGroup {
    /// 80–100th percentile of predicted risk.
    High,
    /// 40–60th percentile.
    Medium,
    /// 0–20th percentile.
    Low,
}

impl RiskGroup {
    /// All groups in reporting order (High, Medium, Low).
    pub fn all() -> [RiskGroup; 3] {
        [RiskGroup::High, RiskGroup::Medium, RiskGroup::Low]
    }

    /// Display label used in Table III.
    pub fn label(&self) -> &'static str {
        match self {
            RiskGroup::High => "High",
            RiskGroup::Medium => "Medium",
            RiskGroup::Low => "Low",
        }
    }
}

/// One selected experiment block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FieldBlock {
    /// Cell nearest the block centre (the GPS coordinate given to rangers).
    pub centre: CellId,
    /// In-park cells belonging to the block.
    pub cells: Vec<CellId>,
    /// Risk group of the block (hidden from rangers during the trial).
    pub group: RiskGroup,
    /// Mean predicted risk over the block's cells.
    pub mean_risk: f64,
}

/// A designed field test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FieldTestPlan {
    /// Selected blocks across all risk groups.
    pub blocks: Vec<FieldBlock>,
    /// Side length of each block in km.
    pub block_size: u32,
}

impl FieldTestPlan {
    /// Blocks belonging to one risk group.
    pub fn blocks_in(&self, group: RiskGroup) -> Vec<&FieldBlock> {
        self.blocks.iter().filter(|b| b.group == group).collect()
    }
}

/// Configuration of the block-selection protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Block side length in km (3 for SWS, 2 for MFNP).
    pub block_size: u32,
    /// Number of blocks selected per risk group (5 in SWS).
    pub blocks_per_group: usize,
    /// Blocks whose mean historical effort exceeds this percentile of all
    /// candidate blocks are discarded.
    pub max_effort_percentile: f64,
    /// Risk percentile range of the high group.
    pub high_range: (f64, f64),
    /// Risk percentile range of the medium group.
    pub medium_range: (f64, f64),
    /// Risk percentile range of the low group.
    pub low_range: (f64, f64),
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            block_size: 3,
            blocks_per_group: 5,
            max_effort_percentile: 50.0,
            high_range: (80.0, 100.0),
            medium_range: (40.0, 60.0),
            low_range: (0.0, 20.0),
        }
    }
}

/// Design a field test: tile the park into blocks, filter by historical
/// effort, and sample blocks from each risk-percentile band.
///
/// * `risk[i]` — predicted risk of in-park cell `i` (`Park::cells` order).
/// * `historical_effort[i]` — total historical patrol effort of cell `i`.
pub fn design_field_test<R: Rng>(
    park: &Park,
    risk: &[f64],
    historical_effort: &[f64],
    config: &ProtocolConfig,
    rng: &mut R,
) -> FieldTestPlan {
    assert_eq!(risk.len(), park.n_cells(), "risk length mismatch");
    assert_eq!(
        historical_effort.len(),
        park.n_cells(),
        "effort length mismatch"
    );
    assert!(config.block_size >= 1, "block size must be at least 1 km");
    assert!(
        config.blocks_per_group >= 1,
        "need at least one block per group"
    );

    // Tile the bounding rectangle into non-overlapping blocks.
    struct Candidate {
        centre: CellId,
        cells: Vec<CellId>,
        mean_risk: f64,
        mean_effort: f64,
    }
    let bs = config.block_size;
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut row = 0;
    while row + bs <= park.grid.rows() {
        let mut col = 0;
        while col + bs <= park.grid.cols() {
            let mut cells = Vec::new();
            let mut risk_sum = 0.0;
            let mut effort_sum = 0.0;
            for r in row..row + bs {
                for c in col..col + bs {
                    let cell = park.grid.cell(r, c);
                    if let Some(i) = park.cell_position(cell) {
                        cells.push(cell);
                        risk_sum += risk[i];
                        effort_sum += historical_effort[i];
                    }
                }
            }
            // Require the block to lie (almost) entirely inside the park.
            if cells.len() as u32 >= bs * bs {
                let n = cells.len() as f64;
                let mean_risk = risk_sum / n;
                let mean_effort = effort_sum / n;
                // Reject blocks touching a non-finite risk or effort cell up
                // front: a single NaN prediction used to panic the
                // percentile sort below, and under a NaN-tolerant sort it
                // would land in an arbitrary risk band. Such a block cannot
                // be ranked, so it cannot be a candidate.
                if mean_risk.is_finite() && mean_effort.is_finite() {
                    let centre_cell = park.grid.cell(row + bs / 2, col + bs / 2);
                    candidates.push(Candidate {
                        centre: centre_cell,
                        cells,
                        mean_risk,
                        mean_effort,
                    });
                }
            }
            col += bs;
        }
        row += bs;
    }
    assert!(
        candidates.len() >= 3 * config.blocks_per_group,
        "park too small for the requested field-test design"
    );

    // Discard frequently-patrolled blocks.
    let effort_threshold = percentile(
        &candidates.iter().map(|c| c.mean_effort).collect::<Vec<_>>(),
        config.max_effort_percentile,
    );
    let mut valid: Vec<Candidate> = candidates
        .into_iter()
        .filter(|c| c.mean_effort <= effort_threshold)
        .collect();
    assert!(
        valid.len() >= 3 * config.blocks_per_group,
        "not enough rarely-patrolled blocks for the field-test design"
    );

    // Rank by risk and pick from the configured percentile bands. The
    // candidates are all-finite by construction, so total_cmp agrees with
    // the naive float order; it just cannot panic.
    valid.sort_by(|a, b| a.mean_risk.total_cmp(&b.mean_risk));
    let n = valid.len();
    let band_indices = |range: (f64, f64)| -> Vec<usize> {
        let lo = ((range.0 / 100.0) * n as f64).floor() as usize;
        let hi = (((range.1 / 100.0) * n as f64).ceil() as usize).min(n);
        (lo..hi).collect()
    };

    let mut blocks = Vec::new();
    for (group, range) in [
        (RiskGroup::High, config.high_range),
        (RiskGroup::Medium, config.medium_range),
        (RiskGroup::Low, config.low_range),
    ] {
        let mut band = band_indices(range);
        band.shuffle(rng);
        for &i in band.iter().take(config.blocks_per_group) {
            blocks.push(FieldBlock {
                centre: valid[i].centre,
                cells: valid[i].cells.clone(),
                group,
                mean_risk: valid[i].mean_risk,
            });
        }
    }

    FieldTestPlan {
        blocks,
        block_size: config.block_size,
    }
}

fn percentile(values: &[f64], pct: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_geo::parks::test_park_spec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Park, Vec<f64>, Vec<f64>) {
        let park = Park::generate(&test_park_spec(), 7);
        // Risk increases with the cell's column; effort increases with row.
        let risk: Vec<f64> = park
            .cells
            .iter()
            .map(|&c| {
                let (_, col) = park.grid.coords(c);
                col as f64 / park.grid.cols() as f64
            })
            .collect();
        let effort: Vec<f64> = park
            .cells
            .iter()
            .map(|&c| {
                let (row, _) = park.grid.coords(c);
                row as f64 / park.grid.rows() as f64
            })
            .collect();
        (park, risk, effort)
    }

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            block_size: 2,
            blocks_per_group: 3,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn design_selects_requested_blocks_per_group() {
        let (park, risk, effort) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let plan = design_field_test(&park, &risk, &effort, &config(), &mut rng);
        for g in RiskGroup::all() {
            assert_eq!(plan.blocks_in(g).len(), 3, "group {g:?}");
        }
        assert_eq!(plan.blocks.len(), 9);
    }

    #[test]
    fn high_blocks_have_higher_risk_than_low_blocks() {
        let (park, risk, effort) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let plan = design_field_test(&park, &risk, &effort, &config(), &mut rng);
        let mean = |g: RiskGroup| {
            let blocks = plan.blocks_in(g);
            blocks.iter().map(|b| b.mean_risk).sum::<f64>() / blocks.len() as f64
        };
        assert!(mean(RiskGroup::High) > mean(RiskGroup::Medium));
        assert!(mean(RiskGroup::Medium) > mean(RiskGroup::Low));
    }

    #[test]
    fn blocks_are_made_of_in_park_cells_of_the_right_size() {
        let (park, risk, effort) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let plan = design_field_test(&park, &risk, &effort, &config(), &mut rng);
        for b in &plan.blocks {
            assert_eq!(b.cells.len(), 4, "2×2 block");
            for c in &b.cells {
                assert!(park.contains(*c));
            }
        }
    }

    #[test]
    fn frequently_patrolled_blocks_are_excluded() {
        let (park, risk, effort) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let plan = design_field_test(&park, &risk, &effort, &config(), &mut rng);
        // Effort rises with the row index, so selected blocks should sit in
        // the low-effort (low-row) half of the park on average.
        let mean_row: f64 = plan
            .blocks
            .iter()
            .flat_map(|b| b.cells.iter())
            .map(|&c| park.grid.coords(c).0 as f64)
            .sum::<f64>()
            / plan
                .blocks
                .iter()
                .map(|b| b.cells.len() as f64)
                .sum::<f64>();
        assert!(
            mean_row < park.grid.rows() as f64 * 0.55,
            "mean row {mean_row}"
        );
    }

    #[test]
    fn blocks_do_not_overlap() {
        let (park, risk, effort) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let plan = design_field_test(&park, &risk, &effort, &config(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for b in &plan.blocks {
            for c in &b.cells {
                assert!(seen.insert(*c), "cell {c:?} appears in two blocks");
            }
        }
    }

    #[test]
    fn nan_risk_cells_are_rejected_not_ranked() {
        // Regression: one NaN risk prediction used to panic the
        // `partial_cmp().unwrap()` ranking sort; now the affected block is
        // dropped at candidate collection and the design still succeeds.
        let (park, mut risk, effort) = setup();
        let mid = risk.len() / 2;
        let poisoned = park.cells[mid];
        risk[mid] = f64::NAN;
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let plan = design_field_test(&park, &risk, &effort, &config(), &mut rng);
        assert_eq!(plan.blocks.len(), 9);
        for b in &plan.blocks {
            assert!(b.mean_risk.is_finite(), "selected block risk is finite");
            assert!(
                !b.cells.contains(&poisoned),
                "the NaN-risk cell's block must not be selected"
            );
        }
        // An infinite effort cell is equally unrankable.
        let (park, risk, mut effort) = setup();
        effort[3] = f64::INFINITY;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let plan = design_field_test(&park, &risk, &effort, &config(), &mut rng);
        assert_eq!(plan.blocks.len(), 9);
    }

    #[test]
    #[should_panic(expected = "park too small")]
    fn too_small_park_is_rejected() {
        let (park, risk, effort) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = ProtocolConfig {
            block_size: 12,
            blocks_per_group: 5,
            ..ProtocolConfig::default()
        };
        let _ = design_field_test(&park, &risk, &effort, &cfg, &mut rng);
    }
}
