//! The Green Security Game planning problem.
//!
//! Sec. VI-A: the protected area is a graph of 1×1 km cells; the defender
//! (rangers) picks patrol routes starting and ending at a patrol post, and
//! each of the N adversaries (one per cell) decides whether to place snares.
//! The defender's expected utility is the probability of detecting an attack
//! summed over cells, where both the attack probability and the detection
//! probability are captured by the learned response function g_v(c_v)
//! (probability of a *detected* attack as a function of patrol effort) and —
//! in the enhanced model — its uncertainty ν_v(c_v).
//!
//! A [`PlanningProblem`] gathers everything the planner needs for one patrol
//! post: the candidate cells with their response functions, travel times
//! from the post, the patrol length T, the number of patrols K, and the
//! robustness parameter β.

use crate::pwl::PwlFunction;
use paws_data::matrix::Matrix;
use paws_geo::{CellId, Park};
use serde::{Deserialize, Serialize};

/// One candidate cell in a planning problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanningCell {
    /// Park cell id.
    pub cell: CellId,
    /// In-park cell index (into `Park::cells`).
    pub park_index: usize,
    /// Shortest-path travel distance from the patrol post, in km.
    pub travel_km: f64,
    /// Detected-attack probability as a function of patrol effort, g_v(c).
    pub g: PwlFunction,
    /// Squashed prediction uncertainty as a function of effort, ν_v(c) ∈ [0, 1].
    pub nu: PwlFunction,
}

/// A patrol-planning problem for one patrol post.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanningProblem {
    /// The patrol post all routes start and end at.
    pub post: CellId,
    /// Candidate cells (those reachable within the patrol length).
    pub cells: Vec<PlanningCell>,
    /// Adjacency between candidate cells (indices into `cells`), including
    /// only in-park neighbours that are themselves candidates.
    pub neighbours: Vec<Vec<usize>>,
    /// Index into `cells` of the post itself.
    pub post_index: usize,
    /// Length of a single patrol, T, in km (= time steps).
    pub patrol_length_km: f64,
    /// Number of patrols K conducted during the planning period.
    pub n_patrols: usize,
    /// Robustness weight β ∈ [0, 1] on the uncertainty penalty.
    pub beta: f64,
}

impl PlanningProblem {
    /// Build a planning problem from per-cell response curves.
    ///
    /// * `park` — the park geometry.
    /// * `post` — the patrol post cell.
    /// * `effort_grid` — the effort levels at which `probs`/`vars` were
    ///   sampled (ascending, starting at 0).
    /// * `probs`, `vars` — flat response matrices with one row per in-park
    ///   cell and one column per effort level (as produced by
    ///   `IWareModel::effort_response`), the variance already squashed to
    ///   [0, 1].
    #[allow(clippy::too_many_arguments)]
    pub fn from_response(
        park: &Park,
        post: CellId,
        effort_grid: &[f64],
        probs: &Matrix,
        vars: &Matrix,
        patrol_length_km: f64,
        n_patrols: usize,
        beta: f64,
    ) -> Self {
        assert!(park.contains(post), "patrol post must be inside the park");
        assert_eq!(
            probs.n_rows(),
            park.n_cells(),
            "probs must cover every in-park cell"
        );
        assert_eq!(
            vars.n_rows(),
            park.n_cells(),
            "vars must cover every in-park cell"
        );
        assert!(effort_grid.len() >= 2, "need at least two effort levels");
        assert!(
            patrol_length_km > 0.0 && n_patrols > 0,
            "empty patrol budget"
        );
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");

        // Travel distance from the post to every in-park cell (km, octile).
        let travel = park_travel_distances(park, post);

        // Candidate cells: reachable and back within a single patrol.
        let reach_limit = patrol_length_km / 2.0;
        let mut cells = Vec::new();
        let mut park_index_to_planning: Vec<Option<usize>> = vec![None; park.n_cells()];
        for (pi, &cell) in park.cells.iter().enumerate() {
            let t = travel[pi];
            if t <= reach_limit {
                let max_effort = effective_max_effort(patrol_length_km, n_patrols, t);
                let g = resample_response(effort_grid, probs.row(pi), max_effort);
                let nu = resample_response(effort_grid, vars.row(pi), max_effort);
                park_index_to_planning[pi] = Some(cells.len());
                cells.push(PlanningCell {
                    cell,
                    park_index: pi,
                    travel_km: t,
                    g,
                    nu,
                });
            }
        }
        let post_index = cells
            .iter()
            .position(|c| c.cell == post)
            .expect("post is always reachable from itself");

        let neighbours = cells
            .iter()
            .map(|c| {
                park.park_neighbours(c.cell)
                    .into_iter()
                    .filter_map(|(n, _)| {
                        park.cell_position(n)
                            .and_then(|pi| park_index_to_planning[pi])
                    })
                    .collect()
            })
            .collect();

        Self {
            post,
            cells,
            neighbours,
            post_index,
            patrol_length_km,
            n_patrols,
            beta,
        }
    }

    /// Total effort budget T × K in km (Sec. VI-B, last constraint of P).
    pub fn budget_km(&self) -> f64 {
        self.patrol_length_km * self.n_patrols as f64
    }

    /// Number of discrete steps in one patrol (see [`steps_for`]).
    pub fn patrol_steps(&self) -> usize {
        steps_for(self.patrol_length_km)
    }

    /// Number of candidate cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Maximum effort that can feasibly be spent in candidate cell `i`,
    /// accounting for the round trip from the post within each patrol.
    pub fn max_effort(&self, i: usize) -> f64 {
        effective_max_effort(
            self.patrol_length_km,
            self.n_patrols,
            self.cells[i].travel_km,
        )
    }

    /// The robust per-cell utility U_v(c) = g_v(c) − β·g_v(c)·ν_v(c)
    /// (Eq. 4), as a PWL function over the same breakpoints as g_v.
    pub fn utility(&self, i: usize, beta: f64) -> PwlFunction {
        self.cells[i]
            .g
            .combine(&self.cells[i].nu, |g, nu| g - beta * g * nu)
    }

    /// Evaluate Σ_v U_v(c_v) for a coverage vector under a given β.
    pub fn coverage_utility(&self, coverage: &[f64], beta: f64) -> f64 {
        assert_eq!(coverage.len(), self.cells.len(), "coverage length mismatch");
        coverage
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let g = self.cells[i].g.eval(c);
                let nu = self.cells[i].nu.eval(c);
                g - beta * g * nu
            })
            .sum()
    }
}

/// The number of discrete patrol steps implied by a patrol length in km
/// (one step ≈ one km, nearest-integer, never zero).
///
/// Route extraction and the time-unrolled flow MILP used to duplicate this
/// conversion — and a third site truncated with `as usize` instead of
/// rounding, so a 8.5 km patrol was 9 steps in one layer and 8 in another.
/// Every step-budget consumer now goes through this single helper.
pub fn steps_for(patrol_length_km: f64) -> usize {
    patrol_length_km.round().max(1.0) as usize
}

/// Min-heap entry for [`park_travel_distances`]: ordered by distance with
/// [`f64::total_cmp`], so a NaN distance has a consistent (greatest) rank
/// instead of silently comparing `Equal` to everything — which would let
/// it float around the heap and corrupt the pop order.
#[derive(PartialEq)]
struct MinDistEntry(f64, usize);
impl Eq for MinDistEntry {}
impl Ord for MinDistEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest distance.
        other.0.total_cmp(&self.0)
    }
}
impl PartialOrd for MinDistEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest octile travel distance (km) from `post` to every in-park cell.
pub fn park_travel_distances(park: &Park, post: CellId) -> Vec<f64> {
    use std::collections::BinaryHeap;

    let mut dist = vec![f64::INFINITY; park.n_cells()];
    let start = park
        .cell_position(post)
        .expect("post must be inside the park");
    dist[start] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(MinDistEntry(0.0, start));
    while let Some(MinDistEntry(d, i)) = heap.pop() {
        if d > dist[i] {
            continue;
        }
        for (n, step) in park.park_neighbours(park.cells[i]) {
            let ni = park.cell_position(n).expect("neighbour is in park");
            let nd = d + step;
            // A degenerate grid (NaN/infinite step weight) must not enter
            // the frontier: a non-finite key would outrank real paths under
            // any ordering and poison every distance downstream of it.
            debug_assert!(step.is_finite(), "non-finite neighbour step weight");
            if !nd.is_finite() {
                continue;
            }
            if nd < dist[ni] {
                dist[ni] = nd;
                heap.push(MinDistEntry(nd, ni));
            }
        }
    }
    dist
}

fn effective_max_effort(patrol_length_km: f64, n_patrols: usize, travel_km: f64) -> f64 {
    let per_patrol = (patrol_length_km - 2.0 * travel_km).max(0.0);
    // Even an on-post cell cannot absorb more than the per-patrol length.
    (per_patrol * n_patrols as f64).max(0.1)
}

/// Restrict a sampled response curve to `[0, max_effort]`, re-sampling the
/// breakpoints by interpolation so every cell's PWL lives on its own
/// feasible-effort domain.
fn resample_response(effort_grid: &[f64], values: &[f64], max_effort: f64) -> PwlFunction {
    assert_eq!(
        effort_grid.len(),
        values.len(),
        "response sample length mismatch"
    );
    let base = PwlFunction::new(effort_grid.to_vec(), values.to_vec());
    let n = effort_grid.len().max(2) - 1;
    let hi = max_effort.max(1e-3);
    let xs: Vec<f64> = (0..=n).map(|i| hi * i as f64 / n as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| base.eval(x)).collect();
    PwlFunction::new(xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_geo::parks::test_park_spec;

    fn toy_problem() -> (Park, PlanningProblem) {
        let park = Park::generate(&test_park_spec(), 7);
        let post = park.patrol_posts[0];
        let grid: Vec<f64> = vec![0.0, 1.0, 2.0, 4.0];
        // Saturating detection response, uncertainty rising with effort.
        let probs: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let scale = 0.2 + 0.6 * (i % 7) as f64 / 7.0;
                grid.iter()
                    .map(|&e| scale * (1.0 - (-0.8 * e).exp()))
                    .collect()
            })
            .collect();
        let vars: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                grid.iter()
                    .map(|&e| 0.1 + 0.05 * e + 0.002 * (i % 13) as f64)
                    .collect()
            })
            .collect();
        let problem = PlanningProblem::from_response(
            &park,
            post,
            &grid,
            &Matrix::from_rows(&probs),
            &Matrix::from_rows(&vars),
            10.0,
            3,
            1.0,
        );
        (park, problem)
    }

    #[test]
    fn candidate_cells_are_reachable_and_include_post() {
        let (park, p) = toy_problem();
        assert!(p.n_cells() > 1);
        assert!(p.n_cells() <= park.n_cells());
        assert_eq!(p.cells[p.post_index].cell, p.post);
        for c in &p.cells {
            assert!(c.travel_km <= p.patrol_length_km / 2.0 + 1e-9);
        }
    }

    #[test]
    fn neighbours_are_valid_indices() {
        let (_, p) = toy_problem();
        for (i, ns) in p.neighbours.iter().enumerate() {
            for &n in ns {
                assert!(n < p.n_cells());
                assert_ne!(n, i);
            }
        }
    }

    #[test]
    fn budget_and_max_effort_are_consistent() {
        let (_, p) = toy_problem();
        assert_eq!(p.budget_km(), 30.0);
        for i in 0..p.n_cells() {
            assert!(p.max_effort(i) > 0.0);
            assert!(p.max_effort(i) <= p.budget_km() + 1e-9);
        }
        // The post cell can absorb the most effort.
        let post_max = p.max_effort(p.post_index);
        assert!((0..p.n_cells()).all(|i| p.max_effort(i) <= post_max + 1e-9));
    }

    #[test]
    fn utility_penalises_uncertainty() {
        let (_, p) = toy_problem();
        let i = p.post_index;
        let u0 = p.utility(i, 0.0);
        let u1 = p.utility(i, 1.0);
        let c = p.max_effort(i) / 2.0;
        assert!(u1.eval(c) <= u0.eval(c) + 1e-12);
        // With β = 0 the utility is exactly g.
        assert!((u0.eval(c) - p.cells[i].g.eval(c)).abs() < 1e-12);
    }

    #[test]
    fn coverage_utility_matches_manual_sum() {
        let (_, p) = toy_problem();
        let coverage: Vec<f64> = (0..p.n_cells()).map(|i| (i % 3) as f64 * 0.5).collect();
        let total = p.coverage_utility(&coverage, 0.7);
        let manual: f64 = (0..p.n_cells())
            .map(|i| {
                let g = p.cells[i].g.eval(coverage[i]);
                let nu = p.cells[i].nu.eval(coverage[i]);
                g - 0.7 * g * nu
            })
            .sum();
        assert!((total - manual).abs() < 1e-9);
    }

    #[test]
    fn travel_distances_are_zero_at_post_and_metric() {
        let (park, p) = toy_problem();
        let d = park_travel_distances(&park, p.post);
        assert_eq!(d[park.cell_position(p.post).unwrap()], 0.0);
        for (i, &cell) in park.cells.iter().enumerate() {
            if d[i].is_finite() {
                // Octile path distance is at least the Euclidean distance.
                assert!(d[i] + 1e-9 >= park.grid.distance_km(p.post, cell) - 1e-9);
            }
        }
    }

    #[test]
    fn steps_for_rounds_at_half_km_boundaries() {
        // The single step-budget helper: nearest-integer with ties away
        // from zero, clamped to at least one step. Pinning the x.5 cases
        // guards against a regression to the truncating `as usize` math
        // that used to live in the route-length test.
        assert_eq!(steps_for(8.5), 9);
        assert_eq!(steps_for(7.5), 8);
        assert_eq!(steps_for(8.49), 8);
        assert_eq!(steps_for(0.5), 1);
        assert_eq!(steps_for(0.2), 1);
        // And the truncating math it replaces would have said 8 here:
        assert_ne!(steps_for(8.5), 8.5f64 as usize);
    }

    #[test]
    fn patrol_steps_uses_the_shared_helper() {
        let (_, p) = toy_problem();
        assert_eq!(p.patrol_steps(), steps_for(p.patrol_length_km));
    }

    #[test]
    fn heap_entries_rank_nan_last_not_equal() {
        // Regression: the Dijkstra heap used `partial_cmp(..).unwrap_or(Equal)`,
        // so a NaN key compared Equal to *everything* and could surface
        // ahead of genuinely shorter paths. Under total_cmp a NaN key has a
        // consistent, worst possible rank.
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        for (d, i) in [(2.0, 0), (f64::NAN, 1), (0.5, 2), (1.0, 3)] {
            heap.push(MinDistEntry(d, i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|e| e.1)).collect();
        assert_eq!(order, vec![2, 3, 0, 1], "NaN pops last, finite ascending");
        // And the ordering is total: NaN vs NaN is consistent, not Equal to
        // finite keys.
        assert_eq!(
            MinDistEntry(f64::NAN, 0).cmp(&MinDistEntry(1.0, 1)),
            std::cmp::Ordering::Less,
            "reversed min-heap order ranks NaN below (popped after) finite"
        );
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_rejected() {
        let park = Park::generate(&test_park_spec(), 7);
        let post = park.patrol_posts[0];
        let grid: Vec<f64> = vec![0.0, 1.0];
        let probs = vec![vec![0.0, 0.1]; park.n_cells()];
        let vars = vec![vec![0.1, 0.1]; park.n_cells()];
        let _ = PlanningProblem::from_response(
            &park,
            post,
            &grid,
            &Matrix::from_rows(&probs),
            &Matrix::from_rows(&vars),
            8.0,
            2,
            1.5,
        );
    }
}
