//! Piecewise-linear approximation of black-box effort-response functions.
//!
//! Sec. VI-B: "piecewise linear (PWL) approximations to these functions g_v
//! are constructed using m × N sampled points", which turns the black-box
//! machine-learning predictions into something a MILP can optimise. The same
//! construction is applied to the uncertainty functions ν_v in Sec. VI-C.

use serde::{Deserialize, Serialize};

/// Errors from the checked PWL constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PwlError {
    /// No curve: fewer than two breakpoints (including the fully empty
    /// case, where `eval`/`domain` would have hit `xs.last().unwrap()`),
    /// or an empty sampling interval.
    Empty,
    /// Breakpoint coordinate vectors differ in length.
    LengthMismatch,
    /// Breakpoint x values are not strictly ascending.
    NotAscending,
}

impl std::fmt::Display for PwlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PwlError::Empty => write!(f, "piecewise-linear curve needs at least two breakpoints"),
            PwlError::LengthMismatch => write!(f, "breakpoint coordinate length mismatch"),
            PwlError::NotAscending => {
                write!(f, "breakpoint x values must be strictly ascending")
            }
        }
    }
}

impl std::error::Error for PwlError {}

/// A piecewise-linear function defined by ascending breakpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PwlFunction {
    /// Breakpoint x-coordinates, strictly ascending.
    xs: Vec<f64>,
    /// Breakpoint y-coordinates.
    ys: Vec<f64>,
}

impl PwlFunction {
    /// Checked construction from breakpoints: an empty (or single-point)
    /// curve is a [`PwlError::Empty`] instead of a later
    /// `xs.last().unwrap()` panic inside `eval`/`domain`.
    pub fn try_new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, PwlError> {
        if xs.len() < 2 {
            return Err(PwlError::Empty);
        }
        if xs.len() != ys.len() {
            return Err(PwlError::LengthMismatch);
        }
        if !xs.windows(2).all(|w| w[1] > w[0]) {
            return Err(PwlError::NotAscending);
        }
        Ok(Self { xs, ys })
    }

    /// Build from breakpoints.
    ///
    /// # Panics
    /// Panics when fewer than two breakpoints are given or the x values are
    /// not strictly ascending; use [`PwlFunction::try_new`] to handle these
    /// as errors.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        match Self::try_new(xs, ys) {
            Ok(f) => f,
            Err(PwlError::Empty) => panic!("a PWL function needs at least two breakpoints"),
            Err(PwlError::LengthMismatch) => panic!("breakpoint coordinate length mismatch"),
            Err(PwlError::NotAscending) => {
                panic!("breakpoint x values must be strictly ascending")
            }
        }
    }

    /// Checked sampling construction: a degenerate request (zero segments
    /// or an empty interval) is a [`PwlError::Empty`].
    pub fn try_from_samples(
        lo: f64,
        hi: f64,
        segments: usize,
        f: impl Fn(f64) -> f64,
    ) -> Result<Self, PwlError> {
        // `hi > lo` must hold; the negation (rather than `hi <= lo`) also
        // rejects NaN bounds, which are incomparable.
        let interval_ok = hi > lo;
        if segments < 1 || !interval_ok {
            return Err(PwlError::Empty);
        }
        let xs: Vec<f64> = (0..=segments)
            .map(|i| lo + (hi - lo) * i as f64 / segments as f64)
            .collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        Self::try_new(xs, ys)
    }

    /// Sample a black-box function at `segments + 1` evenly spaced points on
    /// `[lo, hi]` and return its PWL approximation.
    ///
    /// # Panics
    /// Panics on a degenerate request; use
    /// [`PwlFunction::try_from_samples`] to handle it as an error.
    pub fn from_samples(lo: f64, hi: f64, segments: usize, f: impl Fn(f64) -> f64) -> Self {
        assert!(segments >= 1, "need at least one segment");
        assert!(hi > lo, "empty sampling interval");
        Self::try_from_samples(lo, hi, segments, f).expect("checked above")
    }

    /// Breakpoint x-coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Breakpoint y-coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Number of linear segments.
    pub fn n_segments(&self) -> usize {
        self.xs.len() - 1
    }

    /// Domain of the function.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().unwrap())
    }

    /// Evaluate by linear interpolation; clamps outside the domain.
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().unwrap() {
            return *self.ys.last().unwrap();
        }
        // Binary search for the segment containing x.
        let mut lo = 0usize;
        let mut hi = self.xs.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] * (1.0 - t) + self.ys[hi] * t
    }

    /// True when the function is concave (segment slopes non-increasing),
    /// in which case its maximisation needs no binary variables.
    pub fn is_concave(&self, tol: f64) -> bool {
        let slopes: Vec<f64> = self
            .xs
            .windows(2)
            .zip(self.ys.windows(2))
            .map(|(x, y)| (y[1] - y[0]) / (x[1] - x[0]))
            .collect();
        slopes.windows(2).all(|w| w[1] <= w[0] + tol)
    }

    /// The upper concave envelope of the function over its breakpoints: the
    /// tightest concave PWL function that dominates it. Used by the planner
    /// to keep non-concave utilities solvable as a pure LP (the exact SOS2
    /// encoding remains available behind a flag).
    pub fn concave_envelope(&self) -> PwlFunction {
        // Upper convex hull of the breakpoints (Andrew's monotone chain on
        // the upper side), then re-evaluate at the original x grid.
        let pts: Vec<(f64, f64)> = self
            .xs
            .iter()
            .copied()
            .zip(self.ys.iter().copied())
            .collect();
        let mut hull: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for &p in &pts {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Keep b only if it lies strictly above the chord a→p.
                let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
                if cross >= 0.0 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        let hull_fn = PwlFunction::new(
            hull.iter().map(|p| p.0).collect(),
            hull.iter().map(|p| p.1).collect(),
        );
        let ys = self.xs.iter().map(|&x| hull_fn.eval(x)).collect();
        PwlFunction::new(self.xs.clone(), ys)
    }

    /// Pointwise combination of two PWL functions sharing the same
    /// breakpoints: `h(x) = f(x) ⊗ g(x)` evaluated at the breakpoints.
    pub fn combine(&self, other: &PwlFunction, op: impl Fn(f64, f64) -> f64) -> PwlFunction {
        assert_eq!(self.xs, other.xs, "combine requires identical breakpoints");
        let ys = self
            .ys
            .iter()
            .zip(&other.ys)
            .map(|(&a, &b)| op(a, b))
            .collect();
        PwlFunction::new(self.xs.clone(), ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evaluates_exactly_at_breakpoints() {
        let f = PwlFunction::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 1.0]);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(3.0), 1.0);
    }

    #[test]
    fn interpolates_linearly_between_breakpoints() {
        let f = PwlFunction::new(vec![0.0, 2.0], vec![0.0, 4.0]);
        assert!((f.eval(0.5) - 1.0).abs() < 1e-12);
        assert!((f.eval(1.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_domain() {
        let f = PwlFunction::new(vec![1.0, 2.0], vec![3.0, 5.0]);
        assert_eq!(f.eval(0.0), 3.0);
        assert_eq!(f.eval(10.0), 5.0);
    }

    #[test]
    fn from_samples_matches_function_at_breakpoints() {
        let f = PwlFunction::from_samples(0.0, 4.0, 8, |x| 1.0 - (-x).exp());
        assert_eq!(f.n_segments(), 8);
        for (&x, &y) in f.xs().iter().zip(f.ys()) {
            assert!((y - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn concavity_detection() {
        let concave = PwlFunction::from_samples(0.0, 4.0, 10, |x| 1.0 - (-x).exp());
        assert!(concave.is_concave(1e-9));
        let non_concave = PwlFunction::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.1, 1.0]);
        assert!(!non_concave.is_concave(1e-9));
    }

    #[test]
    fn combine_multiplies_pointwise() {
        let g = PwlFunction::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.5, 1.0]);
        let v = PwlFunction::new(vec![0.0, 1.0, 2.0], vec![1.0, 0.5, 0.2]);
        let u = g.combine(&v, |a, b| a - 0.5 * a * b);
        assert!((u.eval(2.0) - (1.0 - 0.5 * 1.0 * 0.2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_non_monotone_breakpoints() {
        PwlFunction::new(vec![0.0, 0.0, 1.0], vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn try_new_reports_empty_curves_instead_of_panicking() {
        // Regression: an empty curve used to surface as an
        // `xs.last().unwrap()` panic inside eval/domain; the checked
        // constructor catches it at the boundary.
        assert_eq!(PwlFunction::try_new(vec![], vec![]), Err(PwlError::Empty));
        assert_eq!(
            PwlFunction::try_new(vec![1.0], vec![2.0]),
            Err(PwlError::Empty)
        );
        assert_eq!(
            PwlFunction::try_new(vec![0.0, 1.0], vec![0.0]),
            Err(PwlError::LengthMismatch)
        );
        assert_eq!(
            PwlFunction::try_new(vec![1.0, 1.0], vec![0.0, 0.0]),
            Err(PwlError::NotAscending)
        );
        let f = PwlFunction::try_new(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        assert_eq!(f.eval(0.5), 1.0);
    }

    #[test]
    fn try_from_samples_rejects_degenerate_requests() {
        assert_eq!(
            PwlFunction::try_from_samples(0.0, 0.0, 4, |x| x).err(),
            Some(PwlError::Empty)
        );
        assert_eq!(
            PwlFunction::try_from_samples(2.0, 1.0, 4, |x| x).err(),
            Some(PwlError::Empty)
        );
        assert_eq!(
            PwlFunction::try_from_samples(0.0, 1.0, 0, |x| x).err(),
            Some(PwlError::Empty)
        );
        assert!(PwlFunction::try_from_samples(0.0, 1.0, 4, |x| x).is_ok());
        assert!(PwlError::Empty.to_string().contains("two breakpoints"));
    }

    #[test]
    fn concave_envelope_of_concave_function_is_itself() {
        let f = PwlFunction::from_samples(0.0, 4.0, 10, |x| 1.0 - (-x).exp());
        let env = f.concave_envelope();
        for (&a, &b) in f.ys().iter().zip(env.ys()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn concave_envelope_dominates_and_is_concave() {
        let f = PwlFunction::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 0.1, 0.9, 0.5, 1.0]);
        let env = f.concave_envelope();
        assert!(env.is_concave(1e-9));
        for (&orig, &e) in f.ys().iter().zip(env.ys()) {
            assert!(e >= orig - 1e-12, "envelope must dominate the function");
        }
        // Endpoints are preserved.
        assert_eq!(env.eval(0.0), 0.0);
        assert_eq!(env.eval(4.0), 1.0);
    }

    proptest! {
        #[test]
        fn eval_stays_within_breakpoint_range(x in -10.0..10.0f64) {
            let f = PwlFunction::new(vec![0.0, 1.0, 2.0, 5.0], vec![0.1, 0.9, 0.4, 0.6]);
            let y = f.eval(x);
            prop_assert!((0.1 - 1e-12..=0.9 + 1e-12).contains(&y));
        }

        #[test]
        fn sampled_approximation_is_close_for_smooth_functions(x in 0.0..4.0f64) {
            let f = PwlFunction::from_samples(0.0, 4.0, 40, |x| 1.0 - (-1.3 * x).exp());
            let truth = 1.0 - (-1.3f64 * x).exp();
            prop_assert!((f.eval(x) - truth).abs() < 0.01);
        }

        #[test]
        fn interpolation_is_monotone_for_monotone_breakpoints(a in 0.0..5.0f64, b in 0.0..5.0f64) {
            let f = PwlFunction::from_samples(0.0, 5.0, 10, |x| x / (1.0 + x));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(f.eval(lo) <= f.eval(hi) + 1e-12);
        }
    }
}
