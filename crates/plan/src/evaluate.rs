//! Evaluation of patrol plans: solution-quality ratios (Fig. 8) and
//! ground-truth snare detections.
//!
//! Sec. VI-D: "we compare the patrols computed with and without uncertainty
//! scores by evaluating them on the ground truth given by the objective with
//! uncertainty … and compute the ratio of the solution quality of the plan
//! at a given β to the baseline of β = 0, Uβ(Cβ)/Uβ(Cβ=0)."

use crate::game::PlanningProblem;
use crate::planner::{plan, try_plan, PlanError, PlannerConfig};
use serde::{Deserialize, Serialize};

/// Result of comparing a robust plan against the non-robust baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustComparison {
    /// The β used for the robust plan (and for the evaluation objective).
    pub beta: f64,
    /// Uβ(Cβ): utility of the robust plan under the uncertainty-aware objective.
    pub robust_utility: f64,
    /// Uβ(Cβ=0): utility of the β = 0 plan under the same objective.
    pub baseline_utility: f64,
    /// The solution-quality ratio Uβ(Cβ)/Uβ(Cβ=0) plotted in Fig. 8.
    pub improvement_ratio: f64,
    /// Expected snares detected by the robust plan under the ground truth
    /// supplied to [`compare_with_ground_truth`] (0 when not evaluated).
    pub robust_detections: f64,
    /// Expected snares detected by the baseline plan.
    pub baseline_detections: f64,
}

/// Compute the Fig. 8 ratio for one planning problem: plan with β = 0 and
/// with `problem.beta`, evaluate both under the β-weighted objective.
///
/// # Panics
/// Panics when either plan's utility PWLs cannot be built; use
/// [`try_compare_robust_vs_baseline`] to handle that as an error.
pub fn compare_robust_vs_baseline(
    problem: &PlanningProblem,
    config: &PlannerConfig,
) -> RobustComparison {
    try_compare_robust_vs_baseline(problem, config)
        .unwrap_or_else(|e| panic!("robust-vs-baseline comparison failed: {e}"))
}

/// Checked Fig. 8 comparison: a degenerate piecewise-linear utility or a
/// malformed optimisation model surfaces as the [`PlanError`] the planner
/// hit (e.g. [`PlanError::Pwl`] for an empty curve) instead of a panic
/// mid-evaluation.
pub fn try_compare_robust_vs_baseline(
    problem: &PlanningProblem,
    config: &PlannerConfig,
) -> Result<RobustComparison, PlanError> {
    let beta = problem.beta;
    let mut baseline_problem = problem.clone();
    baseline_problem.beta = 0.0;
    let baseline = try_plan(&baseline_problem, config)?;
    let robust = try_plan(problem, config)?;

    let baseline_utility = problem.coverage_utility(&baseline.coverage, beta).max(1e-9);
    let robust_utility = problem.coverage_utility(&robust.coverage, beta);
    Ok(RobustComparison {
        beta,
        robust_utility,
        baseline_utility,
        improvement_ratio: robust_utility / baseline_utility,
        robust_detections: 0.0,
        baseline_detections: 0.0,
    })
}

/// Expected number of snare detections of a coverage vector under a ground
/// truth: Σ_v Pr[attack at v] · Pr[detect | attack, effort c_v].
///
/// `attack_probability[i]` refers to candidate cell `i` of the problem and
/// `detection` maps effort in km to a detection probability.
pub fn expected_detections(
    problem: &PlanningProblem,
    coverage: &[f64],
    attack_probability: &[f64],
    detection: impl Fn(f64) -> f64,
) -> f64 {
    assert_eq!(
        coverage.len(),
        problem.n_cells(),
        "coverage length mismatch"
    );
    assert_eq!(
        attack_probability.len(),
        problem.n_cells(),
        "attack probability length mismatch"
    );
    coverage
        .iter()
        .zip(attack_probability)
        .map(|(&c, &a)| a * detection(c))
        .sum()
}

/// Full comparison including ground-truth detections: the robust and
/// baseline plans are both scored by expected snares found, which is how the
/// paper arrives at the "+30 % detections on average" claim.
pub fn compare_with_ground_truth(
    problem: &PlanningProblem,
    config: &PlannerConfig,
    attack_probability: &[f64],
    detection: impl Fn(f64) -> f64 + Copy,
) -> RobustComparison {
    let mut cmp = compare_robust_vs_baseline(problem, config);
    let mut baseline_problem = problem.clone();
    baseline_problem.beta = 0.0;
    let baseline = plan(&baseline_problem, config);
    let robust = plan(problem, config);
    cmp.baseline_detections =
        expected_detections(problem, &baseline.coverage, attack_probability, detection);
    cmp.robust_detections =
        expected_detections(problem, &robust.coverage, attack_probability, detection);
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_data::matrix::Matrix;
    use paws_geo::parks::test_park_spec;
    use paws_geo::Park;

    /// A problem where high-g cells also carry high uncertainty, so the
    /// robust plan meaningfully deviates from the nominal one.
    fn uncertain_problem(beta: f64) -> PlanningProblem {
        let park = Park::generate(&test_park_spec(), 7);
        let post = park.patrol_posts[0];
        let grid: Vec<f64> = vec![0.0, 1.0, 2.0, 4.0, 8.0];
        let probs: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let s = 0.1 + 0.8 * ((i * 29) % 50) as f64 / 50.0;
                grid.iter().map(|&e| s * (1.0 - (-0.7 * e).exp())).collect()
            })
            .collect();
        // Uncertainty correlates with the cell's attractiveness: the model is
        // least sure about exactly the cells it finds most promising.
        let vars: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let s = 0.9 * ((i * 29) % 50) as f64 / 50.0;
                grid.iter().map(|&e| s + 0.02 * e).collect()
            })
            .collect();
        PlanningProblem::from_response(
            &park,
            post,
            &grid,
            &Matrix::from_rows(&probs),
            &Matrix::from_rows(&vars),
            8.0,
            2,
            beta,
        )
    }

    #[test]
    fn ratio_is_one_when_beta_is_zero() {
        let problem = uncertain_problem(0.0);
        let cmp = compare_robust_vs_baseline(&problem, &PlannerConfig::default());
        assert!((cmp.improvement_ratio - 1.0).abs() < 1e-6);
    }

    #[test]
    fn robust_plan_never_loses_under_its_own_objective() {
        for beta in [0.5, 0.8, 1.0] {
            let problem = uncertain_problem(beta);
            let cmp = compare_robust_vs_baseline(&problem, &PlannerConfig::default());
            assert!(
                cmp.improvement_ratio >= 1.0 - 1e-6,
                "beta={beta}: ratio {} < 1",
                cmp.improvement_ratio
            );
        }
    }

    #[test]
    fn ratio_grows_with_beta_for_uncertainty_correlated_risk() {
        let low = compare_robust_vs_baseline(&uncertain_problem(0.3), &PlannerConfig::default());
        let high = compare_robust_vs_baseline(&uncertain_problem(1.0), &PlannerConfig::default());
        assert!(high.improvement_ratio >= low.improvement_ratio - 1e-6);
    }

    #[test]
    fn try_comparison_propagates_pwl_errors_and_matches_panicking_path() {
        use crate::pwl::PwlError;
        let problem = uncertain_problem(0.5);
        // A degenerate PWL request (zero segments) propagates as an error
        // through the planner and the evaluation instead of panicking.
        let bad = PlannerConfig {
            segments: 0,
            ..PlannerConfig::default()
        };
        assert_eq!(
            try_compare_robust_vs_baseline(&problem, &bad).err(),
            Some(PlanError::Pwl(PwlError::Empty))
        );
        // On a well-posed problem the checked path returns exactly what the
        // panicking wrapper returns.
        let ok = try_compare_robust_vs_baseline(&problem, &PlannerConfig::default()).unwrap();
        let reference = compare_robust_vs_baseline(&problem, &PlannerConfig::default());
        assert_eq!(ok.improvement_ratio, reference.improvement_ratio);
    }

    #[test]
    fn expected_detections_increase_with_coverage() {
        let problem = uncertain_problem(0.0);
        let attack = vec![0.1; problem.n_cells()];
        let detect = |c: f64| 1.0 - (-0.9 * c).exp();
        let none = expected_detections(&problem, &vec![0.0; problem.n_cells()], &attack, detect);
        let some = expected_detections(&problem, &vec![1.0; problem.n_cells()], &attack, detect);
        assert_eq!(none, 0.0);
        assert!(some > 0.0);
    }

    #[test]
    fn ground_truth_comparison_populates_detections() {
        let problem = uncertain_problem(0.9);
        let attack: Vec<f64> = (0..problem.n_cells())
            .map(|i| 0.05 + 0.002 * (i % 10) as f64)
            .collect();
        let cmp = compare_with_ground_truth(&problem, &PlannerConfig::default(), &attack, |c| {
            1.0 - (-0.9 * c).exp()
        });
        assert!(cmp.robust_detections > 0.0);
        assert!(cmp.baseline_detections > 0.0);
        assert!(cmp.improvement_ratio >= 1.0 - 1e-6);
    }
}
