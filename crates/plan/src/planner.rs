//! The patrol-planning optimiser (problem P of Sec. VI-B/C).
//!
//! Two formulations are provided:
//!
//! * [`PlannerMethod::Allocation`] — the effort-allocation MILP: one PWL
//!   (λ / SOS2) block per candidate cell, a total-budget constraint
//!   Σ_v c_v ≤ T·K, and per-cell effort caps derived from the round-trip
//!   travel time to the patrol post. Binary variables are introduced only
//!   for cells whose utility PWL is non-concave, so most instances solve as
//!   pure LPs. This is the formulation the benchmark harness sweeps
//!   (Figs. 8 and 9).
//! * [`PlannerMethod::Flow`] — the full time-unrolled flow formulation of
//!   Eq. (2): aggregate patrol flow over nodes (cell, t) with conservation,
//!   source/sink at the patrol post, coverage defined as flow through a cell
//!   and the same PWL objective. Exact but much larger; intended for small
//!   regions and for validating the allocation formulation.

use crate::game::{steps_for, PlanningProblem};
use crate::pwl::{PwlError, PwlFunction};
use paws_solver::{
    solve_milp, ConstraintOp, MilpOptions, Model, Sense, SolveStatus, SolverError, Variable,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Why patrol planning failed: either the utility curves could not be
/// piecewise-linearised, or the optimiser terminated without a usable
/// point. A budget-exhausted solve is *not* an error — the planner falls
/// back to a greedy feasible incumbent tagged [`SolveStatus::Degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// Building a piecewise-linear utility failed (degenerate cell domain,
    /// non-finite samples, zero segments).
    Pwl(PwlError),
    /// The optimiser produced no usable point (infeasible or unbounded
    /// model — both indicate a malformed problem rather than time pressure).
    Solver(SolverError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Pwl(e) => write!(f, "piecewise-linear utility construction failed: {e}"),
            PlanError::Solver(e) => write!(f, "patrol optimisation failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Pwl(e) => Some(e),
            PlanError::Solver(e) => Some(e),
        }
    }
}

impl From<PwlError> for PlanError {
    fn from(e: PwlError) -> Self {
        PlanError::Pwl(e)
    }
}

impl From<SolverError> for PlanError {
    fn from(e: SolverError) -> Self {
        PlanError::Solver(e)
    }
}

/// Which MILP formulation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMethod {
    /// Separable effort-allocation formulation (default).
    Allocation,
    /// Time-unrolled network-flow formulation (small instances only).
    Flow,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Number of segments in each PWL approximation (the paper sweeps 5–30).
    pub segments: usize,
    /// Formulation to use.
    pub method: PlannerMethod,
    /// Branch-and-bound options.
    pub milp: MilpOptions,
    /// Encode non-concave utilities exactly with SOS2 binaries. When false
    /// (the default) the planner optimises the upper concave envelope of
    /// each non-concave utility instead, which keeps park-scale instances
    /// pure LPs; the reported coverage is re-evaluated against the true
    /// utility. Set to true for exact solutions on small instances.
    pub exact_sos2: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            segments: 10,
            method: PlannerMethod::Allocation,
            milp: MilpOptions::default(),
            exact_sos2: false,
        }
    }
}

/// A computed patrol plan.
#[derive(Debug, Clone)]
pub struct PatrolPlan {
    /// Patrol effort (km) allocated to each candidate cell of the problem.
    pub coverage: Vec<f64>,
    /// Objective value Σ_v U_v(c_v) of the optimised (PWL) model.
    pub objective: f64,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxations solved.
    pub lp_solves: usize,
    /// Termination status of the underlying solver.
    pub status: SolveStatus,
}

/// Compute a patrol plan for a planning problem.
///
/// # Panics
/// Panics when the utility PWL construction fails (degenerate cell
/// domains) or the optimisation model is malformed; use [`try_plan`] to
/// handle those as a [`PlanError`].
pub fn plan(problem: &PlanningProblem, config: &PlannerConfig) -> PatrolPlan {
    try_plan(problem, config).unwrap_or_else(|e| panic!("patrol planning failed: {e}"))
}

/// Checked planning entry point: degenerate piecewise-linear utilities
/// (e.g. an empty sampling domain from a NaN-poisoned response surface)
/// and pointless solves (infeasible/unbounded models) surface as a
/// [`PlanError`] instead of a panic mid-optimisation.
///
/// Anytime behaviour: when `config.milp.budget` runs out, the best solver
/// incumbent is returned tagged [`SolveStatus::Degraded`]; if the budget
/// died before *any* incumbent was found, a greedy marginal-utility
/// allocation (feasible by construction) is returned instead, also tagged
/// `Degraded`. An unlimited budget reproduces the pre-budget behaviour
/// exactly.
pub fn try_plan(
    problem: &PlanningProblem,
    config: &PlannerConfig,
) -> Result<PatrolPlan, PlanError> {
    if config.segments < 1 {
        return Err(PlanError::Pwl(PwlError::Empty));
    }
    let start = Instant::now();
    let utilities = cell_utilities(problem, config.segments)?;
    let mut result = match config.method {
        PlannerMethod::Allocation => solve_allocation(problem, &utilities, config),
        PlannerMethod::Flow => solve_flow(problem, &utilities, config),
    };
    match result.status {
        SolveStatus::Infeasible => return Err(SolverError::Infeasible.into()),
        SolveStatus::Unbounded => return Err(SolverError::Unbounded.into()),
        SolveStatus::BudgetExceeded => {
            // The budget died before branch-and-bound found any incumbent:
            // fall back to the greedy fill, which needs no solver at all.
            let coverage = greedy_coverage(problem, &utilities);
            let objective = utilities
                .iter()
                .zip(&coverage)
                .map(|(u, &c)| u.eval(c))
                .sum();
            result = PatrolPlan {
                coverage,
                objective,
                status: SolveStatus::Degraded,
                ..result
            };
        }
        _ => {}
    }
    Ok(PatrolPlan {
        solve_time: start.elapsed(),
        ..result
    })
}

/// Greedy feasible incumbent for budget-starved solves: every segment of
/// every cell's concave-envelope utility is a `(slope, width)` candidate,
/// and filling them in descending-slope order until the km budget runs out
/// is optimal for the enveloped separable LP. Per-cell caps hold because a
/// cell's segments sum to its PWL domain width, and the total never
/// exceeds the budget — so the result is always feasible for problem (P).
fn greedy_coverage(problem: &PlanningProblem, utilities: &[PwlFunction]) -> Vec<f64> {
    struct Segment {
        slope: f64,
        cell: usize,
        width: f64,
    }
    let mut segments: Vec<Segment> = Vec::new();
    for (cell, u) in utilities.iter().enumerate() {
        let envelope;
        let u = if u.is_concave(1e-9) {
            u
        } else {
            envelope = u.concave_envelope();
            &envelope
        };
        let (xs, ys) = (u.xs(), u.ys());
        for j in 0..xs.len() - 1 {
            let width = xs[j + 1] - xs[j];
            if width <= 0.0 {
                continue;
            }
            let slope = (ys[j + 1] - ys[j]) / width;
            if slope.is_finite() && slope > 0.0 {
                segments.push(Segment { slope, cell, width });
            }
        }
    }
    segments.sort_by(|a, b| b.slope.total_cmp(&a.slope));
    let mut remaining = problem.budget_km();
    let mut coverage = vec![0.0; problem.n_cells()];
    for s in segments {
        if remaining <= 0.0 {
            break;
        }
        let take = s.width.min(remaining);
        coverage[s.cell] += take;
        remaining -= take;
    }
    coverage
}

/// Per-cell utility PWL resampled to the configured number of segments.
fn cell_utilities(
    problem: &PlanningProblem,
    segments: usize,
) -> Result<Vec<PwlFunction>, PwlError> {
    (0..problem.n_cells())
        .map(|i| {
            let u = problem.utility(i, problem.beta);
            let hi = problem.max_effort(i).max(1e-3);
            PwlFunction::try_from_samples(0.0, hi, segments, |c| u.eval(c))
        })
        .collect()
}

/// Add one cell's λ / SOS2 block to the model. Returns the λ variables and
/// their breakpoint x values.
fn add_pwl_block(
    model: &mut Model,
    utility: &PwlFunction,
    cell_label: usize,
    exact_sos2: bool,
) -> (Vec<Variable>, Vec<f64>) {
    // Non-concave utilities either get an exact SOS2 encoding (binaries) or
    // are replaced by their upper concave envelope, which the LP relaxation
    // solves exactly.
    let envelope;
    let utility = if !exact_sos2 && !utility.is_concave(1e-9) {
        envelope = utility.concave_envelope();
        &envelope
    } else {
        utility
    };
    let xs = utility.xs().to_vec();
    let ys = utility.ys();
    let lambdas: Vec<Variable> = (0..xs.len())
        .map(|j| model.add_continuous(&format!("lam_{cell_label}_{j}"), 0.0, f64::INFINITY, ys[j]))
        .collect();
    // Convexity: Σ λ = 1.
    let terms: Vec<(Variable, f64)> = lambdas.iter().map(|&v| (v, 1.0)).collect();
    model.add_constraint(&terms, ConstraintOp::Eq, 1.0);

    // SOS2 binaries only when the utility is non-concave; for concave
    // utilities the LP relaxation already attains the true maximum.
    if !utility.is_concave(1e-9) {
        let n_seg = xs.len() - 1;
        let zs: Vec<Variable> = (0..n_seg)
            .map(|s| model.add_binary(&format!("z_{cell_label}_{s}"), 0.0))
            .collect();
        let zterms: Vec<(Variable, f64)> = zs.iter().map(|&z| (z, 1.0)).collect();
        model.add_constraint(&zterms, ConstraintOp::Eq, 1.0);
        for j in 0..xs.len() {
            // λ_j can be positive only if an adjacent segment is selected.
            let mut terms = vec![(lambdas[j], 1.0)];
            if j > 0 {
                terms.push((zs[j - 1], -1.0));
            }
            if j < n_seg {
                terms.push((zs[j], -1.0));
            }
            model.add_constraint(&terms, ConstraintOp::Le, 0.0);
        }
    }
    (lambdas, xs)
}

fn solve_allocation(
    problem: &PlanningProblem,
    utilities: &[PwlFunction],
    config: &PlannerConfig,
) -> PatrolPlan {
    let mut model = Model::new(Sense::Maximize);
    let mut blocks = Vec::with_capacity(problem.n_cells());
    for (i, u) in utilities.iter().enumerate() {
        blocks.push(add_pwl_block(&mut model, u, i, config.exact_sos2));
    }
    // Budget: Σ_v c_v ≤ T·K where c_v = Σ_j λ_vj x_vj.
    let mut budget_terms = Vec::new();
    for (lambdas, xs) in &blocks {
        for (l, &x) in lambdas.iter().zip(xs) {
            if x != 0.0 {
                budget_terms.push((*l, x));
            }
        }
    }
    model.add_constraint(&budget_terms, ConstraintOp::Le, problem.budget_km());

    let (solution, stats) = solve_milp(&model, &config.milp);
    let coverage = extract_coverage(&solution.values, &blocks);
    PatrolPlan {
        coverage,
        objective: solution.objective,
        solve_time: Duration::default(),
        nodes: stats.nodes,
        lp_solves: stats.lp_solves,
        status: solution.status,
    }
}

#[allow(clippy::needless_range_loop)]
fn solve_flow(
    problem: &PlanningProblem,
    utilities: &[PwlFunction],
    config: &PlannerConfig,
) -> PatrolPlan {
    let t_steps = steps_for(problem.patrol_length_km);
    let k = problem.n_patrols as f64;
    let n = problem.n_cells();
    let mut model = Model::new(Sense::Maximize);

    // Flow variables f[i][j][t]: patrols moving from cell i to cell j (j a
    // neighbour of i, or i itself for "stay") between time t and t+1.
    let mut flow: Vec<Vec<Vec<(usize, Variable)>>> = vec![vec![Vec::new(); t_steps]; n];
    for i in 0..n {
        let mut targets = problem.neighbours[i].clone();
        targets.push(i);
        for t in 0..t_steps {
            for &j in &targets {
                let v = model.add_continuous(&format!("f_{i}_{j}_{t}"), 0.0, k, 0.0);
                flow[i][t].push((j, v));
            }
        }
    }

    // Source: all K patrols leave the post at t = 0; nothing leaves any other
    // cell at t = 0.
    for i in 0..n {
        let terms: Vec<(Variable, f64)> = flow[i][0].iter().map(|&(_, v)| (v, 1.0)).collect();
        let rhs = if i == problem.post_index { k } else { 0.0 };
        model.add_constraint(&terms, ConstraintOp::Eq, rhs);
    }
    // Conservation: inflow into (i, t) equals outflow from (i, t) for
    // 1 <= t < T; at t = T all flow must be at the post (sink).
    for t in 1..t_steps {
        for i in 0..n {
            let mut terms: Vec<(Variable, f64)> = Vec::new();
            // Inflow from any j with an edge into i at time t-1.
            for j in 0..n {
                for &(dest, v) in &flow[j][t - 1] {
                    if dest == i {
                        terms.push((v, 1.0));
                    }
                }
            }
            for &(_, v) in &flow[i][t] {
                terms.push((v, -1.0));
            }
            model.add_constraint(&terms, ConstraintOp::Eq, 0.0);
        }
    }
    // Sink: the inflow at the final step must return to the post.
    let mut sink_terms: Vec<(Variable, f64)> = Vec::new();
    for j in 0..n {
        for &(dest, v) in &flow[j][t_steps - 1] {
            if dest == problem.post_index {
                sink_terms.push((v, 1.0));
            }
        }
    }
    model.add_constraint(&sink_terms, ConstraintOp::Eq, k);

    // Coverage of cell i: time steps spent at i = Σ_t outflow from (i, t).
    // Link to the PWL blocks: Σ_j λ_ij x_ij − c_i = 0.
    let mut blocks = Vec::with_capacity(n);
    for (i, u) in utilities.iter().enumerate() {
        let block = add_pwl_block(&mut model, u, i, config.exact_sos2);
        let mut link: Vec<(Variable, f64)> = block
            .0
            .iter()
            .zip(&block.1)
            .filter(|(_, &x)| x != 0.0)
            .map(|(&l, &x)| (l, x))
            .collect();
        for t in 0..t_steps {
            for &(_, v) in &flow[i][t] {
                link.push((v, -1.0));
            }
        }
        model.add_constraint(&link, ConstraintOp::Eq, 0.0);
        blocks.push(block);
    }

    let (solution, stats) = solve_milp(&model, &config.milp);
    let coverage = extract_coverage(&solution.values, &blocks);
    PatrolPlan {
        coverage,
        objective: solution.objective,
        solve_time: Duration::default(),
        nodes: stats.nodes,
        lp_solves: stats.lp_solves,
        status: solution.status,
    }
}

fn extract_coverage(values: &[f64], blocks: &[(Vec<Variable>, Vec<f64>)]) -> Vec<f64> {
    blocks
        .iter()
        .map(|(lambdas, xs)| {
            lambdas
                .iter()
                .zip(xs)
                .map(|(&l, &x)| values[l.0] * x)
                .sum::<f64>()
                .max(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_data::matrix::Matrix;
    use paws_geo::parks::test_park_spec;
    use paws_geo::Park;

    /// A small problem with synthetic response curves.
    fn small_problem(beta: f64, patrol_len: f64, n_patrols: usize) -> PlanningProblem {
        let park = Park::generate(&test_park_spec(), 7);
        let post = park.patrol_posts[0];
        let grid: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
        let probs: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let scale = 0.1 + 0.8 * ((i * 37) % 100) as f64 / 100.0;
                grid.iter()
                    .map(|&e| scale * (1.0 - (-0.7 * e).exp()))
                    .collect()
            })
            .collect();
        let vars: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let base = 0.05 + 0.4 * ((i * 61) % 100) as f64 / 100.0;
                grid.iter().map(|&e| base + 0.03 * e).collect()
            })
            .collect();
        PlanningProblem::from_response(
            &park,
            post,
            &grid,
            &Matrix::from_rows(&probs),
            &Matrix::from_rows(&vars),
            patrol_len,
            n_patrols,
            beta,
        )
    }

    #[test]
    fn allocation_plan_respects_budget_and_caps() {
        let problem = small_problem(0.0, 8.0, 3);
        let plan = plan(&problem, &PlannerConfig::default());
        assert_eq!(plan.status, SolveStatus::Optimal);
        let total: f64 = plan.coverage.iter().sum();
        assert!(
            total <= problem.budget_km() + 1e-6,
            "budget violated: {total}"
        );
        for (i, &c) in plan.coverage.iter().enumerate() {
            assert!(c <= problem.max_effort(i) + 1e-6);
            assert!(c >= -1e-9);
        }
        assert!(plan.objective > 0.0);
    }

    #[test]
    fn allocation_concentrates_effort_on_high_value_cells() {
        let problem = small_problem(0.0, 8.0, 2);
        let computed = plan(&problem, &PlannerConfig::default());
        // Compare against a uniform allocation of the same budget.
        let uniform = vec![problem.budget_km() / problem.n_cells() as f64; problem.n_cells()];
        let u_plan = problem.coverage_utility(&computed.coverage, 0.0);
        let u_unif = problem.coverage_utility(&uniform, 0.0);
        assert!(u_plan >= u_unif - 1e-6, "plan {u_plan} vs uniform {u_unif}");
    }

    #[test]
    fn objective_matches_reevaluated_coverage_utility() {
        let problem = small_problem(0.5, 8.0, 2);
        let config = PlannerConfig {
            segments: 20,
            ..PlannerConfig::default()
        };
        let p = plan(&problem, &config);
        let reeval = problem.coverage_utility(&p.coverage, 0.5);
        // PWL approximation error only.
        assert!((p.objective - reeval).abs() < 0.15 * reeval.abs().max(1.0));
    }

    #[test]
    fn more_segments_never_hurts_much() {
        let problem = small_problem(1.0, 8.0, 2);
        let coarse = plan(
            &problem,
            &PlannerConfig {
                segments: 3,
                ..PlannerConfig::default()
            },
        );
        let fine = plan(
            &problem,
            &PlannerConfig {
                segments: 25,
                ..PlannerConfig::default()
            },
        );
        let u_coarse = problem.coverage_utility(&coarse.coverage, 1.0);
        let u_fine = problem.coverage_utility(&fine.coverage, 1.0);
        assert!(u_fine >= u_coarse - 0.05 * u_coarse.abs().max(1.0));
    }

    #[test]
    fn robust_plan_differs_from_nominal_plan() {
        let mut nominal_problem = small_problem(0.0, 8.0, 2);
        let nominal = plan(&nominal_problem, &PlannerConfig::default());
        nominal_problem.beta = 1.0;
        let robust = plan(&nominal_problem, &PlannerConfig::default());
        // The uncertainty penalty shifts effort; coverages should not be identical.
        let diff: f64 = nominal
            .coverage
            .iter()
            .zip(&robust.coverage)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "robust and nominal plans identical");
    }

    #[test]
    fn flow_formulation_agrees_with_allocation_on_tiny_instance() {
        // Restrict to a very small problem so the flow MILP stays tiny.
        let problem = small_problem(0.0, 4.0, 1);
        let alloc = plan(&problem, &PlannerConfig::default());
        let flow = plan(
            &problem,
            &PlannerConfig {
                method: PlannerMethod::Flow,
                segments: 8,
                ..PlannerConfig::default()
            },
        );
        assert_eq!(flow.status, SolveStatus::Optimal);
        let total_flow: f64 = flow.coverage.iter().sum();
        assert!(
            (total_flow - problem.budget_km()).abs() < 1e-4,
            "flow uses the whole patrol time"
        );
        // The flow formulation is more constrained, so its optimum cannot
        // exceed the allocation optimum (up to PWL resolution differences).
        assert!(flow.objective <= alloc.objective + 0.1 * alloc.objective.abs().max(1.0));
        assert!(flow.objective > 0.0);
    }

    #[test]
    fn starved_budget_returns_feasible_degraded_plan() {
        let problem = small_problem(0.5, 8.0, 3);
        let config = PlannerConfig {
            milp: MilpOptions {
                budget: paws_solver::SolveBudget::with_time_limit(Duration::ZERO),
                ..MilpOptions::default()
            },
            ..PlannerConfig::default()
        };
        let p = try_plan(&problem, &config).expect("degraded, not an error");
        assert_eq!(p.status, SolveStatus::Degraded);
        let total: f64 = p.coverage.iter().sum();
        assert!(
            total <= problem.budget_km() + 1e-6,
            "degraded plan violates the budget: {total}"
        );
        for (i, &c) in p.coverage.iter().enumerate() {
            assert!(c >= -1e-9);
            assert!(
                c <= problem.max_effort(i) + 1e-6,
                "cell {i} over its cap: {c}"
            );
        }
        // The greedy incumbent is a real plan, not an all-zero placeholder.
        assert!(total > 0.0);
        assert!(p.objective > 0.0);
    }

    #[test]
    fn generous_budget_reproduces_the_unbudgeted_plan_exactly() {
        let problem = small_problem(0.5, 8.0, 2);
        let free = plan(&problem, &PlannerConfig::default());
        let config = PlannerConfig {
            milp: MilpOptions {
                budget: paws_solver::SolveBudget::with_time_limit(Duration::from_secs(3600)),
                ..MilpOptions::default()
            },
            ..PlannerConfig::default()
        };
        let budgeted = plan(&problem, &config);
        assert_eq!(budgeted.status, free.status);
        assert_eq!(budgeted.coverage, free.coverage);
        assert_eq!(budgeted.objective, free.objective);
    }

    #[test]
    fn zero_beta_plan_maximises_pure_detection() {
        let problem = small_problem(0.0, 6.0, 1);
        let p = plan(&problem, &PlannerConfig::default());
        // With beta=0 the objective equals sum of g at the coverage.
        let g_sum: f64 = p
            .coverage
            .iter()
            .enumerate()
            .map(|(i, &c)| problem.cells[i].g.eval(c))
            .sum();
        assert!((p.objective - g_sum).abs() < 0.1 * g_sum.max(1.0));
    }
}
