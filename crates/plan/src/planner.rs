//! The patrol-planning optimiser (problem P of Sec. VI-B/C).
//!
//! Two formulations are provided:
//!
//! * [`PlannerMethod::Allocation`] — the effort-allocation MILP: one PWL
//!   (λ / SOS2) block per candidate cell, a total-budget constraint
//!   Σ_v c_v ≤ T·K, and per-cell effort caps derived from the round-trip
//!   travel time to the patrol post. Binary variables are introduced only
//!   for cells whose utility PWL is non-concave, so most instances solve as
//!   pure LPs. This is the formulation the benchmark harness sweeps
//!   (Figs. 8 and 9).
//! * [`PlannerMethod::Flow`] — the full time-unrolled flow formulation of
//!   Eq. (2): aggregate patrol flow over nodes (cell, t) with conservation,
//!   source/sink at the patrol post, coverage defined as flow through a cell
//!   and the same PWL objective. Exact but much larger; intended for small
//!   regions and for validating the allocation formulation.

use crate::game::{steps_for, PlanningProblem};
use crate::pwl::{PwlError, PwlFunction};
use paws_solver::{
    solve_milp, BasisSnapshot, ConstraintOp, MilpOptions, Model, Sense, SolveBudget, SolveStatus,
    SolverError, SparseLp, Variable,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// In [`Decomposition::Auto`] mode, column generation kicks in above this
/// many λ variables — below it the full model solves in well under the
/// restricted-master overhead.
const CG_AUTO_THRESHOLD: usize = 4096;
/// Hard cap on restricted-master rounds (each round adds at most one
/// column per cell, so convergence needs at most `segments + 1` rounds;
/// this cap is a numerical-safety backstop, not a tuning knob).
const CG_MAX_ROUNDS: usize = 200;
/// A breakpoint column enters the restricted master only when its reduced
/// cost improves the objective by more than this.
const CG_PRICE_TOL: f64 = 1e-7;

/// Why patrol planning failed: either the utility curves could not be
/// piecewise-linearised, or the optimiser terminated without a usable
/// point. A budget-exhausted solve is *not* an error — the planner falls
/// back to a greedy feasible incumbent tagged [`SolveStatus::Degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// Building a piecewise-linear utility failed (degenerate cell domain,
    /// non-finite samples, zero segments).
    Pwl(PwlError),
    /// The optimiser produced no usable point (infeasible or unbounded
    /// model — both indicate a malformed problem rather than time pressure).
    Solver(SolverError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Pwl(e) => write!(f, "piecewise-linear utility construction failed: {e}"),
            PlanError::Solver(e) => write!(f, "patrol optimisation failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Pwl(e) => Some(e),
            PlanError::Solver(e) => Some(e),
        }
    }
}

impl From<PwlError> for PlanError {
    fn from(e: PwlError) -> Self {
        PlanError::Pwl(e)
    }
}

impl From<SolverError> for PlanError {
    fn from(e: SolverError) -> Self {
        PlanError::Solver(e)
    }
}

/// Which MILP formulation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMethod {
    /// Separable effort-allocation formulation (default).
    Allocation,
    /// Time-unrolled network-flow formulation (small instances only).
    Flow,
}

/// How the allocation formulation is decomposed for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decomposition {
    /// Pick automatically: column generation for pure-LP instances with
    /// more than a few thousand λ variables, the full model otherwise.
    /// Small instances therefore behave exactly as before. The default.
    Auto,
    /// Always build the monolithic model with every λ column.
    FullModel,
    /// Always use column generation over per-cell breakpoint blocks: a
    /// restricted master holds a few λ columns per cell and new breakpoints
    /// are priced in against the budget and convexity duals until none
    /// improves. Implies the concave-envelope relaxation (`exact_sos2` is
    /// ignored on this path — SOS2 binaries never enter the master).
    ColumnGeneration,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Number of segments in each PWL approximation (the paper sweeps 5–30).
    pub segments: usize,
    /// Formulation to use.
    pub method: PlannerMethod,
    /// Branch-and-bound options.
    pub milp: MilpOptions,
    /// Encode non-concave utilities exactly with SOS2 binaries. When false
    /// (the default) the planner optimises the upper concave envelope of
    /// each non-concave utility instead, which keeps park-scale instances
    /// pure LPs; the reported coverage is re-evaluated against the true
    /// utility. Set to true for exact solutions on small instances.
    pub exact_sos2: bool,
    /// Decomposition strategy for [`PlannerMethod::Allocation`] (ignored by
    /// the flow formulation).
    pub decomposition: Decomposition,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            segments: 10,
            method: PlannerMethod::Allocation,
            milp: MilpOptions::default(),
            exact_sos2: false,
            decomposition: Decomposition::Auto,
        }
    }
}

/// A computed patrol plan.
#[derive(Debug, Clone)]
pub struct PatrolPlan {
    /// Patrol effort (km) allocated to each candidate cell of the problem.
    pub coverage: Vec<f64>,
    /// Objective value Σ_v U_v(c_v) of the optimised (PWL) model.
    pub objective: f64,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxations solved.
    pub lp_solves: usize,
    /// Termination status of the underlying solver.
    pub status: SolveStatus,
}

/// Compute a patrol plan for a planning problem.
///
/// # Panics
/// Panics when the utility PWL construction fails (degenerate cell
/// domains) or the optimisation model is malformed; use [`try_plan`] to
/// handle those as a [`PlanError`].
pub fn plan(problem: &PlanningProblem, config: &PlannerConfig) -> PatrolPlan {
    try_plan(problem, config).unwrap_or_else(|e| panic!("patrol planning failed: {e}"))
}

/// Checked planning entry point: degenerate piecewise-linear utilities
/// (e.g. an empty sampling domain from a NaN-poisoned response surface)
/// and pointless solves (infeasible/unbounded models) surface as a
/// [`PlanError`] instead of a panic mid-optimisation.
///
/// Anytime behaviour: when `config.milp.budget` runs out, the best solver
/// incumbent is returned tagged [`SolveStatus::Degraded`]; if the budget
/// died before *any* incumbent was found, a greedy marginal-utility
/// allocation (feasible by construction) is returned instead, also tagged
/// `Degraded`. An unlimited budget reproduces the pre-budget behaviour
/// exactly.
pub fn try_plan(
    problem: &PlanningProblem,
    config: &PlannerConfig,
) -> Result<PatrolPlan, PlanError> {
    if config.segments < 1 {
        return Err(PlanError::Pwl(PwlError::Empty));
    }
    let start = Instant::now();
    let utilities = cell_utilities(problem, config.segments)?;
    let mut result = match config.method {
        PlannerMethod::Allocation => solve_allocation(problem, &utilities, config),
        PlannerMethod::Flow => solve_flow(problem, &utilities, config),
    };
    match result.status {
        SolveStatus::Infeasible => return Err(SolverError::Infeasible.into()),
        SolveStatus::Unbounded => return Err(SolverError::Unbounded.into()),
        SolveStatus::BudgetExceeded => {
            // The budget died before branch-and-bound found any incumbent:
            // fall back to the greedy fill, which needs no solver at all.
            let coverage = greedy_coverage(problem, &utilities);
            let objective = utilities
                .iter()
                .zip(&coverage)
                .map(|(u, &c)| u.eval(c))
                .sum();
            result = PatrolPlan {
                coverage,
                objective,
                status: SolveStatus::Degraded,
                ..result
            };
        }
        _ => {}
    }
    Ok(PatrolPlan {
        solve_time: start.elapsed(),
        ..result
    })
}

/// Greedy feasible incumbent for budget-starved solves: every segment of
/// every cell's concave-envelope utility is a `(slope, width)` candidate,
/// and filling them in descending-slope order until the km budget runs out
/// is optimal for the enveloped separable LP. Per-cell caps hold because a
/// cell's segments sum to its PWL domain width, and the total never
/// exceeds the budget — so the result is always feasible for problem (P).
fn greedy_coverage(problem: &PlanningProblem, utilities: &[PwlFunction]) -> Vec<f64> {
    struct Segment {
        slope: f64,
        cell: usize,
        width: f64,
    }
    let mut segments: Vec<Segment> = Vec::new();
    for (cell, u) in utilities.iter().enumerate() {
        let envelope;
        let u = if u.is_concave(1e-9) {
            u
        } else {
            envelope = u.concave_envelope();
            &envelope
        };
        let (xs, ys) = (u.xs(), u.ys());
        for j in 0..xs.len() - 1 {
            let width = xs[j + 1] - xs[j];
            if width <= 0.0 {
                continue;
            }
            let slope = (ys[j + 1] - ys[j]) / width;
            if slope.is_finite() && slope > 0.0 {
                segments.push(Segment { slope, cell, width });
            }
        }
    }
    segments.sort_by(|a, b| b.slope.total_cmp(&a.slope));
    let mut remaining = problem.budget_km();
    let mut coverage = vec![0.0; problem.n_cells()];
    for s in segments {
        if remaining <= 0.0 {
            break;
        }
        let take = s.width.min(remaining);
        coverage[s.cell] += take;
        remaining -= take;
    }
    coverage
}

/// Per-cell utility PWL resampled to the configured number of segments.
fn cell_utilities(
    problem: &PlanningProblem,
    segments: usize,
) -> Result<Vec<PwlFunction>, PwlError> {
    (0..problem.n_cells())
        .map(|i| {
            let u = problem.utility(i, problem.beta);
            let hi = problem.max_effort(i).max(1e-3);
            PwlFunction::try_from_samples(0.0, hi, segments, |c| u.eval(c))
        })
        .collect()
}

/// Add one cell's λ / SOS2 block to the model. Returns the λ variables and
/// their breakpoint x values.
fn add_pwl_block(
    model: &mut Model,
    utility: &PwlFunction,
    cell_label: usize,
    exact_sos2: bool,
) -> (Vec<Variable>, Vec<f64>) {
    // Non-concave utilities either get an exact SOS2 encoding (binaries) or
    // are replaced by their upper concave envelope, which the LP relaxation
    // solves exactly.
    let envelope;
    let utility = if !exact_sos2 && !utility.is_concave(1e-9) {
        envelope = utility.concave_envelope();
        &envelope
    } else {
        utility
    };
    let xs = utility.xs().to_vec();
    let ys = utility.ys();
    let lambdas: Vec<Variable> = (0..xs.len())
        .map(|j| model.add_continuous(&format!("lam_{cell_label}_{j}"), 0.0, f64::INFINITY, ys[j]))
        .collect();
    // Convexity: Σ λ = 1.
    let terms: Vec<(Variable, f64)> = lambdas.iter().map(|&v| (v, 1.0)).collect();
    model.add_constraint(&terms, ConstraintOp::Eq, 1.0);

    // SOS2 binaries only when the utility is non-concave; for concave
    // utilities the LP relaxation already attains the true maximum.
    if !utility.is_concave(1e-9) {
        let n_seg = xs.len() - 1;
        let zs: Vec<Variable> = (0..n_seg)
            .map(|s| model.add_binary(&format!("z_{cell_label}_{s}"), 0.0))
            .collect();
        let zterms: Vec<(Variable, f64)> = zs.iter().map(|&z| (z, 1.0)).collect();
        model.add_constraint(&zterms, ConstraintOp::Eq, 1.0);
        for j in 0..xs.len() {
            // λ_j can be positive only if an adjacent segment is selected.
            let mut terms = vec![(lambdas[j], 1.0)];
            if j > 0 {
                terms.push((zs[j - 1], -1.0));
            }
            if j < n_seg {
                terms.push((zs[j], -1.0));
            }
            model.add_constraint(&terms, ConstraintOp::Le, 0.0);
        }
    }
    (lambdas, xs)
}

/// Should the allocation formulation go through column generation?
fn use_column_generation(utilities: &[PwlFunction], config: &PlannerConfig) -> bool {
    match config.decomposition {
        Decomposition::FullModel => false,
        Decomposition::ColumnGeneration => true,
        Decomposition::Auto => {
            let pure_lp = !config.exact_sos2 || utilities.iter().all(|u| u.is_concave(1e-9));
            let n_lambda: usize = utilities.iter().map(|u| u.xs().len()).sum();
            pure_lp && n_lambda > CG_AUTO_THRESHOLD
        }
    }
}

/// The remaining share of a [`SolveBudget`] measured from `start`, or
/// `None` when the wall-clock budget is already spent.
fn remaining_budget(budget: &SolveBudget, start: Instant) -> Option<SolveBudget> {
    match budget.time_limit {
        None => Some(*budget),
        Some(limit) => {
            let left = limit.saturating_sub(start.elapsed());
            if left.is_zero() {
                None
            } else {
                Some(SolveBudget {
                    time_limit: Some(left),
                    ..*budget
                })
            }
        }
    }
}

/// Column generation over per-cell breakpoint blocks, for the (enveloped,
/// pure-LP) allocation formulation at scales where the monolithic model is
/// too large to build or solve.
///
/// The full LP is `max Σ_ij λ_ij·y_ij` subject to per-cell convexity rows
/// `Σ_j λ_ij = 1` and one budget row `Σ_ij λ_ij·x_ij ≤ B`. The restricted
/// master holds a small breakpoint subset per cell, seeded from the greedy
/// concave-envelope fill (which is already optimal for the enveloped LP up
/// to per-cell caps, so the seed is a near-optimal incumbent). Each round
/// solves the master with the sparse revised simplex, reads the budget dual
/// `μ` and convexity duals `π_i` off the optimal basis, and adds the best
/// positively-priced breakpoint `argmax_j y_ij − μ·x_ij − π_i` per cell;
/// when no column prices in, the master optimum is optimal for the full LP.
fn solve_allocation_colgen(
    problem: &PlanningProblem,
    utilities: &[PwlFunction],
    config: &PlannerConfig,
) -> PatrolPlan {
    let start = Instant::now();
    let n = utilities.len();
    // Column generation always works on the concave envelope (the master's
    // LP relaxation would be dual-degenerate on non-concave pieces).
    let envelopes: Vec<PwlFunction> = utilities
        .iter()
        .map(|u| {
            if u.is_concave(1e-9) {
                u.clone()
            } else {
                u.concave_envelope()
            }
        })
        .collect();

    // Seed: breakpoint 0 plus the breakpoints bracketing the greedy fill.
    let greedy = greedy_coverage(problem, utilities);
    let mut cols: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, env) in envelopes.iter().enumerate() {
        let xs = env.xs();
        let mut s = vec![0usize];
        if greedy[i] > 0.0 && xs.len() > 1 {
            let idx = xs
                .partition_point(|&x| x < greedy[i])
                .clamp(1, xs.len() - 1);
            if idx - 1 > 0 {
                s.push(idx - 1);
            }
            s.push(idx);
        }
        cols.push(s);
    }
    // The budget row needs at least one term; if the greedy fill allocated
    // nothing anywhere (zero km budget), the all-zero plan is optimal.
    if !cols
        .iter()
        .zip(&envelopes)
        .any(|(s, env)| s.iter().any(|&j| env.xs()[j] != 0.0))
    {
        let objective = envelopes.iter().map(|env| env.ys()[0]).sum();
        return PatrolPlan {
            coverage: vec![0.0; n],
            objective,
            solve_time: Duration::default(),
            nodes: 0,
            lp_solves: 0,
            status: SolveStatus::Optimal,
        };
    }

    let mut rounds = 0usize;
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    // Previous round's optimal basis plus the struct-column prefix offsets
    // it was taken under, for re-seating in the grown master.
    let mut prev: Option<(Vec<usize>, BasisSnapshot)> = None;
    let finish = |incumbent: Option<(Vec<f64>, f64)>, rounds: usize, status: SolveStatus| {
        match incumbent {
            Some((coverage, objective)) => PatrolPlan {
                coverage,
                objective,
                solve_time: Duration::default(),
                nodes: 0,
                lp_solves: rounds,
                status,
            },
            // No master ever finished: signal the caller to fall back to
            // the solver-free greedy incumbent.
            None => PatrolPlan {
                coverage: vec![0.0; n],
                objective: f64::NEG_INFINITY,
                solve_time: Duration::default(),
                nodes: 0,
                lp_solves: rounds,
                status: SolveStatus::BudgetExceeded,
            },
        }
    };

    loop {
        let Some(round_budget) = remaining_budget(&config.milp.budget, start) else {
            let status = if incumbent.is_some() {
                SolveStatus::Degraded
            } else {
                SolveStatus::BudgetExceeded
            };
            return finish(incumbent, rounds, status);
        };
        rounds += 1;

        // Build the restricted master: rows 0..n are the convexity rows in
        // cell order, row n is the budget row.
        let mut rmp = Model::new(Sense::Maximize);
        let mut cell_vars: Vec<Vec<(Variable, usize)>> = Vec::with_capacity(n);
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0usize);
        for (i, env) in envelopes.iter().enumerate() {
            let ys = env.ys();
            let vars: Vec<(Variable, usize)> = cols[i]
                .iter()
                .map(|&j| {
                    (
                        rmp.add_continuous(&format!("lam_{i}_{j}"), 0.0, f64::INFINITY, ys[j]),
                        j,
                    )
                })
                .collect();
            prefix.push(prefix[i] + vars.len());
            cell_vars.push(vars);
        }
        let n_struct = prefix[n];
        for vars in &cell_vars {
            let terms: Vec<(Variable, f64)> = vars.iter().map(|&(v, _)| (v, 1.0)).collect();
            rmp.add_constraint(&terms, ConstraintOp::Eq, 1.0);
        }
        let budget_terms: Vec<(Variable, f64)> = cell_vars
            .iter()
            .zip(&envelopes)
            .flat_map(|(vars, env)| {
                vars.iter()
                    .filter(|&&(_, j)| env.xs()[j] != 0.0)
                    .map(|&(v, j)| (v, env.xs()[j]))
            })
            .collect();
        rmp.add_constraint(&budget_terms, ConstraintOp::Le, problem.budget_km());

        // Warm-start the master so no round pays a phase-1 pass over the n
        // convexity rows: round 1 installs the breakpoint-0 column of every
        // cell plus the budget slack (primal feasible at zero coverage,
        // identity-like basis); later rounds re-seat the previous optimal
        // basis, which stays feasible and non-singular because new columns
        // enter at their lower bound and retained columns keep their
        // per-cell local positions.
        let warm = match &prev {
            Some((old_prefix, snap)) => {
                let old_n_struct = old_prefix[n];
                let remapped: Vec<usize> = snap
                    .basic_columns()
                    .iter()
                    .map(|&c| {
                        if c < old_n_struct {
                            let cell = old_prefix.partition_point(|&p| p <= c) - 1;
                            prefix[cell] + (c - old_prefix[cell])
                        } else {
                            n_struct + (c - old_n_struct)
                        }
                    })
                    .collect();
                BasisSnapshot::from_basic_columns(n + 1, n_struct, &remapped)
            }
            None => {
                let mut basic: Vec<usize> = prefix[..n].to_vec();
                basic.push(n_struct + n);
                BasisSnapshot::from_basic_columns(n + 1, n_struct, &basic)
            }
        };
        let outcome = SparseLp::new(&rmp).solve_warm(None, &round_budget, warm.as_ref());
        let sol = &outcome.solution;
        match sol.status {
            SolveStatus::Optimal | SolveStatus::Degraded | SolveStatus::LimitReached => {
                let coverage: Vec<f64> = cell_vars
                    .iter()
                    .zip(&envelopes)
                    .map(|(vars, env)| {
                        vars.iter()
                            .map(|&(v, j)| sol.value(v) * env.xs()[j])
                            .sum::<f64>()
                            .max(0.0)
                    })
                    .collect();
                incumbent = Some((coverage, sol.objective));
                prev = outcome.basis.as_ref().map(|b| (prefix.clone(), b.clone()));
                if sol.status != SolveStatus::Optimal {
                    // Interrupted master: its point is still primal
                    // feasible for the full problem.
                    return finish(incumbent, rounds, SolveStatus::Degraded);
                }
            }
            SolveStatus::BudgetExceeded => {
                let status = if incumbent.is_some() {
                    SolveStatus::Degraded
                } else {
                    SolveStatus::BudgetExceeded
                };
                return finish(incumbent, rounds, status);
            }
            // Structurally impossible (the master is feasible and bounded
            // by construction); surface it so try_plan reports an error.
            other => {
                return PatrolPlan {
                    coverage: vec![0.0; n],
                    objective: sol.objective,
                    solve_time: Duration::default(),
                    nodes: 0,
                    lp_solves: rounds,
                    status: other,
                };
            }
        }

        // Pricing: best improving breakpoint per cell.
        let mu = outcome.duals[n];
        let mut added = false;
        for (i, env) in envelopes.iter().enumerate() {
            let (xs, ys) = (env.xs(), env.ys());
            let pi = outcome.duals[i];
            let mut best: Option<(usize, f64)> = None;
            for j in 0..xs.len() {
                if cols[i].contains(&j) {
                    continue;
                }
                let rc = ys[j] - mu * xs[j] - pi;
                if rc > CG_PRICE_TOL && best.is_none_or(|(_, brc)| rc > brc) {
                    best = Some((j, rc));
                }
            }
            if let Some((j, _)) = best {
                cols[i].push(j);
                added = true;
            }
        }
        if !added {
            return finish(incumbent, rounds, SolveStatus::Optimal);
        }
        if rounds >= CG_MAX_ROUNDS {
            return finish(incumbent, rounds, SolveStatus::Degraded);
        }
    }
}

fn solve_allocation(
    problem: &PlanningProblem,
    utilities: &[PwlFunction],
    config: &PlannerConfig,
) -> PatrolPlan {
    if use_column_generation(utilities, config) {
        return solve_allocation_colgen(problem, utilities, config);
    }
    let mut model = Model::new(Sense::Maximize);
    let mut blocks = Vec::with_capacity(problem.n_cells());
    for (i, u) in utilities.iter().enumerate() {
        blocks.push(add_pwl_block(&mut model, u, i, config.exact_sos2));
    }
    // Budget: Σ_v c_v ≤ T·K where c_v = Σ_j λ_vj x_vj.
    let mut budget_terms = Vec::new();
    for (lambdas, xs) in &blocks {
        for (l, &x) in lambdas.iter().zip(xs) {
            if x != 0.0 {
                budget_terms.push((*l, x));
            }
        }
    }
    model.add_constraint(&budget_terms, ConstraintOp::Le, problem.budget_km());

    let (solution, stats) = solve_milp(&model, &config.milp);
    let coverage = extract_coverage(&solution.values, &blocks);
    PatrolPlan {
        coverage,
        objective: solution.objective,
        solve_time: Duration::default(),
        nodes: stats.nodes,
        lp_solves: stats.lp_solves,
        status: solution.status,
    }
}

#[allow(clippy::needless_range_loop)]
fn solve_flow(
    problem: &PlanningProblem,
    utilities: &[PwlFunction],
    config: &PlannerConfig,
) -> PatrolPlan {
    let t_steps = steps_for(problem.patrol_length_km);
    let k = problem.n_patrols as f64;
    let n = problem.n_cells();
    let mut model = Model::new(Sense::Maximize);

    // Flow variables f[i][j][t]: patrols moving from cell i to cell j (j a
    // neighbour of i, or i itself for "stay") between time t and t+1.
    let mut flow: Vec<Vec<Vec<(usize, Variable)>>> = vec![vec![Vec::new(); t_steps]; n];
    for i in 0..n {
        let mut targets = problem.neighbours[i].clone();
        targets.push(i);
        for t in 0..t_steps {
            for &j in &targets {
                let v = model.add_continuous(&format!("f_{i}_{j}_{t}"), 0.0, k, 0.0);
                flow[i][t].push((j, v));
            }
        }
    }

    // Source: all K patrols leave the post at t = 0; nothing leaves any other
    // cell at t = 0.
    for i in 0..n {
        let terms: Vec<(Variable, f64)> = flow[i][0].iter().map(|&(_, v)| (v, 1.0)).collect();
        let rhs = if i == problem.post_index { k } else { 0.0 };
        model.add_constraint(&terms, ConstraintOp::Eq, rhs);
    }
    // Conservation: inflow into (i, t) equals outflow from (i, t) for
    // 1 <= t < T; at t = T all flow must be at the post (sink).
    for t in 1..t_steps {
        for i in 0..n {
            let mut terms: Vec<(Variable, f64)> = Vec::new();
            // Inflow from any j with an edge into i at time t-1.
            for j in 0..n {
                for &(dest, v) in &flow[j][t - 1] {
                    if dest == i {
                        terms.push((v, 1.0));
                    }
                }
            }
            for &(_, v) in &flow[i][t] {
                terms.push((v, -1.0));
            }
            model.add_constraint(&terms, ConstraintOp::Eq, 0.0);
        }
    }
    // Sink: the inflow at the final step must return to the post.
    let mut sink_terms: Vec<(Variable, f64)> = Vec::new();
    for j in 0..n {
        for &(dest, v) in &flow[j][t_steps - 1] {
            if dest == problem.post_index {
                sink_terms.push((v, 1.0));
            }
        }
    }
    model.add_constraint(&sink_terms, ConstraintOp::Eq, k);

    // Coverage of cell i: time steps spent at i = Σ_t outflow from (i, t).
    // Link to the PWL blocks: Σ_j λ_ij x_ij − c_i = 0.
    let mut blocks = Vec::with_capacity(n);
    for (i, u) in utilities.iter().enumerate() {
        let block = add_pwl_block(&mut model, u, i, config.exact_sos2);
        let mut link: Vec<(Variable, f64)> = block
            .0
            .iter()
            .zip(&block.1)
            .filter(|(_, &x)| x != 0.0)
            .map(|(&l, &x)| (l, x))
            .collect();
        for t in 0..t_steps {
            for &(_, v) in &flow[i][t] {
                link.push((v, -1.0));
            }
        }
        model.add_constraint(&link, ConstraintOp::Eq, 0.0);
        blocks.push(block);
    }

    let (solution, stats) = solve_milp(&model, &config.milp);
    let coverage = extract_coverage(&solution.values, &blocks);
    PatrolPlan {
        coverage,
        objective: solution.objective,
        solve_time: Duration::default(),
        nodes: stats.nodes,
        lp_solves: stats.lp_solves,
        status: solution.status,
    }
}

fn extract_coverage(values: &[f64], blocks: &[(Vec<Variable>, Vec<f64>)]) -> Vec<f64> {
    blocks
        .iter()
        .map(|(lambdas, xs)| {
            lambdas
                .iter()
                .zip(xs)
                .map(|(&l, &x)| values[l.0] * x)
                .sum::<f64>()
                .max(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_data::matrix::Matrix;
    use paws_geo::parks::test_park_spec;
    use paws_geo::Park;

    /// A small problem with synthetic response curves.
    fn small_problem(beta: f64, patrol_len: f64, n_patrols: usize) -> PlanningProblem {
        let park = Park::generate(&test_park_spec(), 7);
        let post = park.patrol_posts[0];
        let grid: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
        let probs: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let scale = 0.1 + 0.8 * ((i * 37) % 100) as f64 / 100.0;
                grid.iter()
                    .map(|&e| scale * (1.0 - (-0.7 * e).exp()))
                    .collect()
            })
            .collect();
        let vars: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let base = 0.05 + 0.4 * ((i * 61) % 100) as f64 / 100.0;
                grid.iter().map(|&e| base + 0.03 * e).collect()
            })
            .collect();
        PlanningProblem::from_response(
            &park,
            post,
            &grid,
            &Matrix::from_rows(&probs),
            &Matrix::from_rows(&vars),
            patrol_len,
            n_patrols,
            beta,
        )
    }

    #[test]
    fn allocation_plan_respects_budget_and_caps() {
        let problem = small_problem(0.0, 8.0, 3);
        let plan = plan(&problem, &PlannerConfig::default());
        assert_eq!(plan.status, SolveStatus::Optimal);
        let total: f64 = plan.coverage.iter().sum();
        assert!(
            total <= problem.budget_km() + 1e-6,
            "budget violated: {total}"
        );
        for (i, &c) in plan.coverage.iter().enumerate() {
            assert!(c <= problem.max_effort(i) + 1e-6);
            assert!(c >= -1e-9);
        }
        assert!(plan.objective > 0.0);
    }

    #[test]
    fn allocation_concentrates_effort_on_high_value_cells() {
        let problem = small_problem(0.0, 8.0, 2);
        let computed = plan(&problem, &PlannerConfig::default());
        // Compare against a uniform allocation of the same budget.
        let uniform = vec![problem.budget_km() / problem.n_cells() as f64; problem.n_cells()];
        let u_plan = problem.coverage_utility(&computed.coverage, 0.0);
        let u_unif = problem.coverage_utility(&uniform, 0.0);
        assert!(u_plan >= u_unif - 1e-6, "plan {u_plan} vs uniform {u_unif}");
    }

    #[test]
    fn objective_matches_reevaluated_coverage_utility() {
        let problem = small_problem(0.5, 8.0, 2);
        let config = PlannerConfig {
            segments: 20,
            ..PlannerConfig::default()
        };
        let p = plan(&problem, &config);
        let reeval = problem.coverage_utility(&p.coverage, 0.5);
        // PWL approximation error only.
        assert!((p.objective - reeval).abs() < 0.15 * reeval.abs().max(1.0));
    }

    #[test]
    fn more_segments_never_hurts_much() {
        let problem = small_problem(1.0, 8.0, 2);
        let coarse = plan(
            &problem,
            &PlannerConfig {
                segments: 3,
                ..PlannerConfig::default()
            },
        );
        let fine = plan(
            &problem,
            &PlannerConfig {
                segments: 25,
                ..PlannerConfig::default()
            },
        );
        let u_coarse = problem.coverage_utility(&coarse.coverage, 1.0);
        let u_fine = problem.coverage_utility(&fine.coverage, 1.0);
        assert!(u_fine >= u_coarse - 0.05 * u_coarse.abs().max(1.0));
    }

    #[test]
    fn robust_plan_differs_from_nominal_plan() {
        let mut nominal_problem = small_problem(0.0, 8.0, 2);
        let nominal = plan(&nominal_problem, &PlannerConfig::default());
        nominal_problem.beta = 1.0;
        let robust = plan(&nominal_problem, &PlannerConfig::default());
        // The uncertainty penalty shifts effort; coverages should not be identical.
        let diff: f64 = nominal
            .coverage
            .iter()
            .zip(&robust.coverage)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "robust and nominal plans identical");
    }

    #[test]
    fn flow_formulation_agrees_with_allocation_on_tiny_instance() {
        // Restrict to a very small problem so the flow MILP stays tiny.
        let problem = small_problem(0.0, 4.0, 1);
        let alloc = plan(&problem, &PlannerConfig::default());
        let flow = plan(
            &problem,
            &PlannerConfig {
                method: PlannerMethod::Flow,
                segments: 8,
                ..PlannerConfig::default()
            },
        );
        assert_eq!(flow.status, SolveStatus::Optimal);
        let total_flow: f64 = flow.coverage.iter().sum();
        assert!(
            (total_flow - problem.budget_km()).abs() < 1e-4,
            "flow uses the whole patrol time"
        );
        // The flow formulation is more constrained, so its optimum cannot
        // exceed the allocation optimum (up to PWL resolution differences).
        assert!(flow.objective <= alloc.objective + 0.1 * alloc.objective.abs().max(1.0));
        assert!(flow.objective > 0.0);
    }

    #[test]
    fn starved_budget_returns_feasible_degraded_plan() {
        let problem = small_problem(0.5, 8.0, 3);
        let config = PlannerConfig {
            milp: MilpOptions {
                budget: paws_solver::SolveBudget::with_time_limit(Duration::ZERO),
                ..MilpOptions::default()
            },
            ..PlannerConfig::default()
        };
        let p = try_plan(&problem, &config).expect("degraded, not an error");
        assert_eq!(p.status, SolveStatus::Degraded);
        let total: f64 = p.coverage.iter().sum();
        assert!(
            total <= problem.budget_km() + 1e-6,
            "degraded plan violates the budget: {total}"
        );
        for (i, &c) in p.coverage.iter().enumerate() {
            assert!(c >= -1e-9);
            assert!(
                c <= problem.max_effort(i) + 1e-6,
                "cell {i} over its cap: {c}"
            );
        }
        // The greedy incumbent is a real plan, not an all-zero placeholder.
        assert!(total > 0.0);
        assert!(p.objective > 0.0);
    }

    #[test]
    fn generous_budget_reproduces_the_unbudgeted_plan_exactly() {
        let problem = small_problem(0.5, 8.0, 2);
        let free = plan(&problem, &PlannerConfig::default());
        let config = PlannerConfig {
            milp: MilpOptions {
                budget: paws_solver::SolveBudget::with_time_limit(Duration::from_secs(3600)),
                ..MilpOptions::default()
            },
            ..PlannerConfig::default()
        };
        let budgeted = plan(&problem, &config);
        assert_eq!(budgeted.status, free.status);
        assert_eq!(budgeted.coverage, free.coverage);
        assert_eq!(budgeted.objective, free.objective);
    }

    #[test]
    fn column_generation_matches_full_model_objective() {
        let problem = small_problem(0.5, 8.0, 2);
        let full = plan(
            &problem,
            &PlannerConfig {
                decomposition: Decomposition::FullModel,
                ..PlannerConfig::default()
            },
        );
        let cg = plan(
            &problem,
            &PlannerConfig {
                decomposition: Decomposition::ColumnGeneration,
                ..PlannerConfig::default()
            },
        );
        assert_eq!(full.status, SolveStatus::Optimal);
        assert_eq!(cg.status, SolveStatus::Optimal);
        assert!(
            (cg.objective - full.objective).abs() <= 1e-9 * full.objective.abs().max(1.0),
            "cg {} vs full {}",
            cg.objective,
            full.objective
        );
        // The CG plan is feasible for the same budget and caps.
        let total: f64 = cg.coverage.iter().sum();
        assert!(total <= problem.budget_km() + 1e-6);
        for (i, &c) in cg.coverage.iter().enumerate() {
            assert!(c >= -1e-9);
            assert!(c <= problem.max_effort(i) + 1e-6);
        }
        // Pure LP at every round: no branch-and-bound nodes.
        assert_eq!(cg.nodes, 0);
        assert!(cg.lp_solves >= 1);
    }

    #[test]
    fn column_generation_respects_exhausted_budget() {
        let problem = small_problem(0.5, 8.0, 3);
        let config = PlannerConfig {
            decomposition: Decomposition::ColumnGeneration,
            milp: MilpOptions {
                budget: paws_solver::SolveBudget::with_time_limit(Duration::ZERO),
                ..MilpOptions::default()
            },
            ..PlannerConfig::default()
        };
        let p = try_plan(&problem, &config).expect("degraded, not an error");
        assert_eq!(p.status, SolveStatus::Degraded);
        let total: f64 = p.coverage.iter().sum();
        assert!(total <= problem.budget_km() + 1e-6);
        assert!(total > 0.0, "fallback plan should allocate something");
    }

    #[test]
    fn auto_decomposition_keeps_small_instances_on_the_full_model() {
        // The golden small instances must be bit-identical under Auto.
        let problem = small_problem(0.5, 8.0, 2);
        let auto = plan(&problem, &PlannerConfig::default());
        let full = plan(
            &problem,
            &PlannerConfig {
                decomposition: Decomposition::FullModel,
                ..PlannerConfig::default()
            },
        );
        assert_eq!(auto.coverage, full.coverage);
        assert_eq!(auto.objective, full.objective);
        assert_eq!(auto.lp_solves, full.lp_solves);
    }

    #[test]
    fn zero_beta_plan_maximises_pure_detection() {
        let problem = small_problem(0.0, 6.0, 1);
        let p = plan(&problem, &PlannerConfig::default());
        // With beta=0 the objective equals sum of g at the coverage.
        let g_sum: f64 = p
            .coverage
            .iter()
            .enumerate()
            .map(|(i, &c)| problem.cells[i].g.eval(c))
            .sum();
        assert!((p.objective - g_sum).abs() < 0.1 * g_sum.max(1.0));
    }
}
