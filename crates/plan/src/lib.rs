//! # paws-plan
//!
//! Green Security Game patrol planning under uncertainty (Sec. VI of the
//! paper): piecewise-linear approximation of the learned effort-response
//! functions, MILP optimisation of patrol effort, a robust objective that
//! penalises model uncertainty, route extraction, and plan evaluation.
//!
//! Typical flow:
//! 1. Sample g_v(c) / ν_v(c) from a fitted `paws_iware::IWareModel` with
//!    `effort_response`, squash the variances with [`robust::squash_matrix`].
//! 2. Build a [`game::PlanningProblem`] per patrol post.
//! 3. Optimise with [`planner::plan`] (allocation MILP by default, the
//!    time-unrolled flow MILP for small instances).
//! 4. Extract ranger routes with [`routes::extract_routes`] and evaluate
//!    Uβ(Cβ)/Uβ(Cβ=0) with [`evaluate::compare_robust_vs_baseline`].

pub mod evaluate;
pub mod game;
pub mod planner;
pub mod pwl;
pub mod robust;
pub mod routes;

pub use evaluate::{
    compare_robust_vs_baseline, compare_with_ground_truth, expected_detections,
    try_compare_robust_vs_baseline, RobustComparison,
};
pub use game::{park_travel_distances, steps_for, PlanningCell, PlanningProblem};
pub use planner::{
    plan, try_plan, Decomposition, PatrolPlan, PlanError, PlannerConfig, PlannerMethod,
};
pub use pwl::{PwlError, PwlFunction};
pub use robust::{squash_matrix, VarianceSquash};
pub use routes::{extract_routes, route_coverage, Route};
