//! Robustness machinery: squashing uncertainty scores and forming the
//! risk-averse objective.
//!
//! Sec. VI-C: "The uncertainty scores that we get from the GPB-iW model are
//! scaled to the range [0, 1] through a logistic squashing function. We then
//! choose β ∈ [0, 1] to rescale the uncertainty score and ensure that the
//! objective function is always positive." The squashed score multiplies the
//! detection probability in the penalty term of Eq. (4),
//! `U_v(c) = g_v(c) − β·g_v(c)·ν_v(c)`, so `U_v` stays non-negative for any
//! β ≤ 1.

use paws_data::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Logistic squashing of raw predictive variances into [0, 1).
///
/// `scale` sets the variance magnitude mapped to ≈ 0.46; a good default is
/// the mean variance over the park, which [`squash_matrix`] computes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VarianceSquash {
    /// Characteristic variance scale.
    pub scale: f64,
}

impl VarianceSquash {
    /// Create a squash with an explicit scale.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "squash scale must be positive");
        Self { scale }
    }

    /// Fit the scale to the mean of the provided variances.
    pub fn fit(variances: &[f64]) -> Self {
        let positive: Vec<f64> = variances.iter().copied().filter(|&v| v > 0.0).collect();
        let mean = if positive.is_empty() {
            1.0
        } else {
            positive.iter().sum::<f64>() / positive.len() as f64
        };
        Self {
            scale: mean.max(1e-9),
        }
    }

    /// Map a raw variance to [0, 1): `2σ(v / scale) − 1`.
    pub fn apply(&self, variance: f64) -> f64 {
        let v = variance.max(0.0) / self.scale;
        2.0 / (1.0 + (-v).exp()) - 1.0
    }

    /// Squash every entry of a flat response matrix (rows = cells,
    /// columns = effort levels).
    pub fn apply_matrix(&self, variances: &Matrix) -> Matrix {
        let mut out = variances.clone();
        for v in out.as_mut_slice() {
            *v = self.apply(*v);
        }
        out
    }
}

/// Fit a squash on a full response matrix and apply it (the flat storage
/// means fitting needs no intermediate copy of the entries).
pub fn squash_matrix(variances: &Matrix) -> (VarianceSquash, Matrix) {
    let squash = VarianceSquash::fit(variances.as_slice());
    let out = squash.apply_matrix(variances);
    (squash, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_variance_maps_to_zero() {
        let s = VarianceSquash::new(0.5);
        assert_eq!(s.apply(0.0), 0.0);
        assert_eq!(s.apply(-1.0), 0.0);
    }

    #[test]
    fn squash_is_monotone_and_bounded() {
        let s = VarianceSquash::new(1.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let v = s.apply(i as f64 * 0.2);
            assert!(v > prev);
            assert!(v < 1.0);
            prev = v;
        }
    }

    #[test]
    fn fit_uses_mean_scale() {
        let s = VarianceSquash::fit(&[0.5, 1.5, 1.0]);
        assert!((s.scale - 1.0).abs() < 1e-12);
        // A variance equal to the scale maps to 2σ(1)−1 ≈ 0.462.
        assert!((s.apply(1.0) - 0.4621).abs() < 1e-3);
    }

    #[test]
    fn fit_on_empty_or_zero_variances_stays_finite() {
        let s = VarianceSquash::fit(&[]);
        assert!(s.scale > 0.0);
        let s2 = VarianceSquash::fit(&[0.0, 0.0]);
        assert!(s2.scale > 0.0);
        assert_eq!(s2.apply(0.0), 0.0);
    }

    #[test]
    fn matrix_squash_preserves_shape() {
        let vars = Matrix::from_rows(&[vec![0.1, 0.2, 0.3], vec![0.0, 0.5, 1.0]]);
        let (_, out) = squash_matrix(&vars);
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.n_cols(), 3);
        assert!(out.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    proptest! {
        #[test]
        fn squash_always_in_unit_interval(v in 0.0..1e6f64, scale in 1e-6..1e3f64) {
            let s = VarianceSquash::new(scale);
            let out = s.apply(v);
            // Numerically the squash saturates at exactly 1.0 for huge ratios.
            prop_assert!((0.0..=1.0).contains(&out));
        }

        #[test]
        fn utility_stays_positive_for_beta_in_unit_interval(
            g in 0.0..1.0f64, v in 0.0..10.0f64, beta in 0.0..1.0f64
        ) {
            let s = VarianceSquash::new(1.0);
            let u = g - beta * g * s.apply(v);
            prop_assert!(u >= 0.0);
        }
    }
}
