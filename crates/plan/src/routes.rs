//! Route extraction: turning an optimised coverage vector into concrete
//! ranger patrols.
//!
//! The MILP of Sec. VI decides *how much* effort each cell should receive;
//! rangers need actual routes that start and end at the patrol post. The
//! extractor builds K routes of (at most) T steps each with a greedy
//! coverage-chasing walk: at every step the patrol moves to the adjacent
//! candidate cell with the largest remaining effort demand (discounted by
//! distance), returning to the post in time.

use crate::game::{steps_for, PlanningProblem};
use paws_geo::CellId;

/// One extracted patrol route (sequence of visited cells, starting and
/// ending at the patrol post).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Visited cells in order, including the post at both ends.
    pub cells: Vec<CellId>,
}

impl Route {
    /// Length of the route in steps (edges traversed).
    pub fn n_steps(&self) -> usize {
        self.cells.len().saturating_sub(1)
    }
}

/// Extract `problem.n_patrols` routes approximating the coverage vector.
pub fn extract_routes(problem: &PlanningProblem, coverage: &[f64]) -> Vec<Route> {
    assert_eq!(
        coverage.len(),
        problem.n_cells(),
        "coverage length mismatch"
    );
    let t_steps = steps_for(problem.patrol_length_km);
    let mut demand: Vec<f64> = coverage.to_vec();
    // Pre-compute hop distance to the post within the candidate sub-graph so
    // routes can always return in time.
    let hops_to_post = hop_distances(problem, problem.post_index);

    (0..problem.n_patrols)
        .map(|_| {
            let mut current = problem.post_index;
            let mut cells = vec![problem.cells[current].cell];
            for step in 0..t_steps {
                let remaining = t_steps - step - 1;
                // Candidate next cells: neighbours (plus staying put) that can
                // still make it home in the remaining steps.
                let mut options: Vec<usize> = problem.neighbours[current].clone();
                options.push(current);
                options.retain(|&j| hops_to_post[j] as usize <= remaining);
                if options.is_empty() {
                    break;
                }
                // Greedy: follow the largest remaining demand, preferring to
                // keep moving over idling on an exhausted cell. total_cmp
                // keeps the selection well-defined even when a degenerate
                // problem (empty park, NaN response surface) puts NaN into
                // the demand vector — partial_cmp().unwrap() panicked
                // mid-planning here.
                let next = *options
                    .iter()
                    .max_by(|&&a, &&b| {
                        let da = demand[a] - if a == current { 1e-6 } else { 0.0 };
                        let db = demand[b] - if b == current { 1e-6 } else { 0.0 };
                        da.total_cmp(&db)
                    })
                    .expect("options is non-empty");
                demand[next] = (demand[next] - 1.0).max(0.0);
                current = next;
                cells.push(problem.cells[current].cell);
            }
            // Walk back to the post if the greedy walk did not end there.
            while current != problem.post_index {
                let next = *problem.neighbours[current]
                    .iter()
                    .min_by_key(|&&j| hops_to_post[j])
                    .expect("candidate sub-graph is connected to the post");
                current = next;
                cells.push(problem.cells[current].cell);
            }
            Route { cells }
        })
        .collect()
}

/// Per-cell effort implied by a set of routes (one km per visited step).
pub fn route_coverage(problem: &PlanningProblem, routes: &[Route]) -> Vec<f64> {
    let mut coverage = vec![0.0; problem.n_cells()];
    let index_of: std::collections::HashMap<CellId, usize> = problem
        .cells
        .iter()
        .enumerate()
        .map(|(i, c)| (c.cell, i))
        .collect();
    for route in routes {
        for cell in route.cells.iter().skip(1) {
            if let Some(&i) = index_of.get(cell) {
                coverage[i] += 1.0;
            }
        }
    }
    coverage
}

/// Breadth-first hop distances from `source` within the candidate sub-graph.
fn hop_distances(problem: &PlanningProblem, source: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; problem.n_cells()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(i) = queue.pop_front() {
        for &j in &problem.neighbours[i] {
            if dist[j] == u32::MAX {
                dist[j] = dist[i] + 1;
                queue.push_back(j);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan, PlannerConfig};
    use paws_data::matrix::Matrix;
    use paws_geo::parks::test_park_spec;
    use paws_geo::Park;

    fn problem() -> PlanningProblem {
        let park = Park::generate(&test_park_spec(), 7);
        let post = park.patrol_posts[0];
        let grid: Vec<f64> = vec![0.0, 1.0, 2.0, 4.0, 8.0];
        let probs: Vec<Vec<f64>> = (0..park.n_cells())
            .map(|i| {
                let s = 0.1 + 0.8 * ((i * 13) % 50) as f64 / 50.0;
                grid.iter().map(|&e| s * (1.0 - (-0.6 * e).exp())).collect()
            })
            .collect();
        let vars = vec![vec![0.2; grid.len()]; park.n_cells()];
        PlanningProblem::from_response(
            &park,
            post,
            &grid,
            &Matrix::from_rows(&probs),
            &Matrix::from_rows(&vars),
            8.0,
            3,
            0.0,
        )
    }

    #[test]
    fn routes_start_and_end_at_the_post() {
        let p = problem();
        let coverage = plan(&p, &PlannerConfig::default()).coverage;
        let routes = extract_routes(&p, &coverage);
        assert_eq!(routes.len(), 3);
        for r in &routes {
            assert_eq!(*r.cells.first().unwrap(), p.post);
            assert_eq!(*r.cells.last().unwrap(), p.post);
        }
    }

    #[test]
    fn routes_respect_patrol_length_roughly() {
        let p = problem();
        let coverage = plan(&p, &PlannerConfig::default()).coverage;
        let routes = extract_routes(&p, &coverage);
        // The same rounding helper the extractor itself uses — this bound
        // used a truncating `as usize` before, disagreeing with the
        // extractor at x.5 patrol lengths.
        let t_steps = steps_for(p.patrol_length_km);
        for r in &routes {
            // Greedy may add a short tail to return home but never more than
            // the reach radius.
            assert!(r.n_steps() <= t_steps + steps_for(p.patrol_length_km / 2.0));
            assert!(r.n_steps() >= 2);
        }
    }

    #[test]
    fn routes_only_visit_adjacent_candidate_cells() {
        let p = problem();
        let coverage = plan(&p, &PlannerConfig::default()).coverage;
        let routes = extract_routes(&p, &coverage);
        let index_of: std::collections::HashMap<CellId, usize> = p
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.cell, i))
            .collect();
        for r in &routes {
            for w in r.cells.windows(2) {
                let a = index_of[&w[0]];
                let b = index_of[&w[1]];
                assert!(
                    a == b || p.neighbours[a].contains(&b),
                    "route takes a non-adjacent step"
                );
            }
        }
    }

    #[test]
    fn nan_demand_does_not_panic_route_extraction() {
        // Regression: the greedy sort compared demands with
        // `partial_cmp(..).unwrap()`, so one NaN in the coverage vector (a
        // degenerate response surface / empty-park plan) panicked
        // mid-planning. With total_cmp the walk stays defined and every
        // route still closes at the post.
        let p = problem();
        let mut coverage = plan(&p, &PlannerConfig::default()).coverage;
        for (i, c) in coverage.iter_mut().enumerate() {
            if i % 4 == 0 {
                *c = f64::NAN;
            }
        }
        let routes = extract_routes(&p, &coverage);
        assert_eq!(routes.len(), 3);
        for r in &routes {
            assert_eq!(*r.cells.first().unwrap(), p.post);
            assert_eq!(*r.cells.last().unwrap(), p.post);
        }

        // All-NaN demand is the worst case and must not panic either.
        let all_nan = vec![f64::NAN; p.n_cells()];
        let routes = extract_routes(&p, &all_nan);
        assert_eq!(routes.len(), 3);
    }

    #[test]
    fn route_coverage_targets_high_demand_cells() {
        let p = problem();
        let planned = plan(&p, &PlannerConfig::default()).coverage;
        let routes = extract_routes(&p, &planned);
        let realised = route_coverage(&p, &routes);
        // The realised coverage should put most of its effort on cells with
        // positive planned coverage.
        let total: f64 = realised.iter().sum();
        let on_target: f64 = realised
            .iter()
            .zip(&planned)
            .filter(|(_, &plan)| plan > 1e-6)
            .map(|(r, _)| r)
            .sum();
        assert!(total > 0.0);
        assert!(
            on_target / total > 0.5,
            "routes ignore the plan: {on_target}/{total}"
        );
    }
}
