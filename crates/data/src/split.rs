//! Train/test splits by calendar year.
//!
//! Sec. V-A: "We generate predictive poaching models with four years of data
//! for each park, training on the first three years and testing on the
//! fourth. … earlier years are increasingly less predictive of future
//! years." Splits therefore select a test year and the `train_years`
//! immediately preceding it.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Indices into [`Dataset::points`] of a train/test split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// Point indices of the training years.
    pub train: Vec<usize>,
    /// Point indices of the test year.
    pub test: Vec<usize>,
    /// The test year.
    pub test_year: u32,
    /// The training years, ascending.
    pub train_years: Vec<u32>,
}

impl TrainTestSplit {
    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.train.len()
    }

    /// Number of test points.
    pub fn n_test(&self) -> usize {
        self.test.len()
    }
}

/// Split a dataset into `train_years` years of training data and one test
/// year. Returns `None` when the requested years are not present.
pub fn split_by_test_year(
    dataset: &Dataset,
    test_year: u32,
    train_years: usize,
) -> Option<TrainTestSplit> {
    assert!(train_years > 0, "need at least one training year");
    let years: Vec<u32> = {
        let mut ys: Vec<u32> = dataset.steps.iter().map(|s| s.year).collect();
        ys.dedup();
        ys
    };
    if !years.contains(&test_year) {
        return None;
    }
    let wanted_train: Vec<u32> = (1..=train_years as u32)
        .filter_map(|d| test_year.checked_sub(d))
        .filter(|y| years.contains(y))
        .collect();
    if wanted_train.is_empty() {
        return None;
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, p) in dataset.points.iter().enumerate() {
        if p.year == test_year {
            test.push(i);
        } else if wanted_train.contains(&p.year) {
            train.push(i);
        }
    }
    if train.is_empty() || test.is_empty() {
        return None;
    }
    let mut train_years: Vec<u32> = wanted_train;
    train_years.sort_unstable();
    Some(TrainTestSplit {
        train,
        test,
        test_year,
        train_years,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::build_dataset;
    use crate::discretize::Discretization;
    use paws_geo::parks::test_park_spec;
    use paws_geo::Park;
    use paws_sim::history::simulate_history;
    use paws_sim::presets::test_sim_config;
    use paws_sim::{AttackModelConfig, PoacherModel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> Dataset {
        let park = Park::generate(&test_park_spec(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = PoacherModel::new(&park, AttackModelConfig::default(), &mut rng);
        let history = simulate_history(&park, &model, &test_sim_config(), 2013, 4, 3);
        build_dataset(&park, &history, Discretization::quarterly())
    }

    #[test]
    fn split_partitions_points_by_year() {
        let ds = dataset();
        let split = split_by_test_year(&ds, 2016, 3).unwrap();
        assert_eq!(split.test_year, 2016);
        assert_eq!(split.train_years, vec![2013, 2014, 2015]);
        for &i in &split.train {
            assert!(ds.points[i].year < 2016);
        }
        for &i in &split.test {
            assert_eq!(ds.points[i].year, 2016);
        }
        assert!(split.n_train() > split.n_test());
    }

    #[test]
    fn split_with_fewer_available_years_uses_what_exists() {
        let ds = dataset();
        let split = split_by_test_year(&ds, 2014, 3).unwrap();
        assert_eq!(split.train_years, vec![2013]);
    }

    #[test]
    fn missing_test_year_returns_none() {
        let ds = dataset();
        assert!(split_by_test_year(&ds, 2030, 3).is_none());
        assert!(split_by_test_year(&ds, 2013, 3).is_none());
    }

    #[test]
    fn train_and_test_are_disjoint_and_cover_selected_years() {
        let ds = dataset();
        let split = split_by_test_year(&ds, 2015, 2).unwrap();
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(split.test.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), split.n_train() + split.n_test());
    }
}
