//! # paws-data
//!
//! Dataset assembly for the PAWS reproduction: from simulated SMART-style
//! patrol logs (waypoints + observations) to the spatio-temporal dataset
//! D = (X, y) the predictive models are trained on.
//!
//! Stages (Sec. III-B/C of the paper):
//! 1. [`trajectory`] — reconstruct per-cell patrol effort from sparse GPS
//!    waypoints.
//! 2. [`discretize`] — group months into three-month steps (or two-month
//!    dry-season steps for SWS).
//! 3. [`dataset`] — build feature vectors (static features + previous-step
//!    coverage) and binary labels for every patrolled (cell, step) pair.
//! 4. [`split`] — train on three years, test on the following year.
//! 5. [`stats`] / [`threshold`] — Table I statistics and the Fig. 4
//!    positive-rate-vs-effort-threshold curves.
//! 6. [`scaler`] — feature standardisation fitted on the training rows.
//!
//! Feature batches are stored and passed as contiguous row-major
//! [`matrix::Matrix`] / [`matrix::MatrixView`] values; training subsets are
//! index-gathered ([`matrix::Matrix::gather`]) rather than row-cloned.
//! Contiguous hot loops across the workspace (scaler transforms, kernel
//! rows, triangular solves, ensemble reductions) run on the stable-Rust
//! `f64x4` micro-kernels in [`simd`]. The opt-in f32 prediction plane
//! narrows feature batches into [`matrix32::Matrix32`] and runs its
//! reductions on the `f32x8` kernels in [`simd32`]; training always stays
//! in f64.

pub mod dataset;
pub mod discretize;
pub mod matrix;
pub mod matrix32;
pub mod scaler;
pub mod simd;
pub mod simd32;
pub mod split;
pub mod stats;
pub mod threshold;
pub mod trajectory;

pub use dataset::{build_dataset, AppendError, DataPoint, Dataset};
pub use discretize::{Discretization, SeasonFilter, StepInfo};
pub use matrix::{Matrix, MatrixView};
pub use matrix32::{Matrix32, MatrixView32};
pub use scaler::StandardScaler;
pub use split::{split_by_test_year, TrainTestSplit};
pub use stats::DatasetStats;
pub use threshold::{positive_rate_by_effort_percentile, ThresholdPoint};
pub use trajectory::{reconstruct_effort, reconstruct_patrol_effort};
