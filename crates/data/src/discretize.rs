//! Temporal discretisation of the patrol history.
//!
//! The paper partitions time into three-month steps ("which allows us to
//! capture seasonal trends and corresponds to approximately how often
//! rangers plan new patrol strategies"), and — for the strongly seasonal
//! SWS dataset — into two-month steps restricted to the dry season
//! (November–April), "to obtain three points per year".

use paws_sim::Season;
use serde::{Deserialize, Serialize};

/// Which part of the year enters the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeasonFilter {
    /// Use every month.
    All,
    /// Use only dry-season months (November–April), as for SWS dry.
    DryOnly,
}

/// A temporal discretisation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Discretization {
    /// Number of calendar months aggregated into one time step.
    pub months_per_step: u32,
    /// Season filter applied before grouping.
    pub season: SeasonFilter,
}

impl Discretization {
    /// The paper's default: three-month steps over the whole year
    /// (4 steps per year).
    pub fn quarterly() -> Self {
        Self {
            months_per_step: 3,
            season: SeasonFilter::All,
        }
    }

    /// The SWS dry-season scheme: two-month steps over November–April
    /// (3 steps per year: Jan–Feb, Mar–Apr, Nov–Dec).
    pub fn dry_season() -> Self {
        Self {
            months_per_step: 2,
            season: SeasonFilter::DryOnly,
        }
    }

    /// Number of time steps per calendar year under this scheme.
    pub fn steps_per_year(&self) -> u32 {
        match self.season {
            SeasonFilter::All => 12 / self.months_per_step,
            SeasonFilter::DryOnly => 6 / self.months_per_step,
        }
    }

    /// Map a calendar month (1–12) to its step index within the year, or
    /// `None` when the month is filtered out.
    pub fn step_of_month(&self, month: u32) -> Option<u32> {
        assert!((1..=12).contains(&month), "month out of range");
        match self.season {
            SeasonFilter::All => Some((month - 1) / self.months_per_step),
            SeasonFilter::DryOnly => {
                if Season::of_month(month) != Season::Dry {
                    return None;
                }
                // Order dry months within the calendar year: Jan,Feb,Mar,Apr,Nov,Dec.
                let pos = match month {
                    1 => 0,
                    2 => 1,
                    3 => 2,
                    4 => 3,
                    11 => 4,
                    12 => 5,
                    _ => unreachable!(),
                };
                Some(pos / self.months_per_step)
            }
        }
    }

    /// Human-readable label of a step within a year, e.g. `"Q1"` or `"D2"`.
    pub fn step_label(&self, step_in_year: u32) -> String {
        match self.season {
            SeasonFilter::All => format!("Q{}", step_in_year + 1),
            SeasonFilter::DryOnly => format!("D{}", step_in_year + 1),
        }
    }
}

/// Identity of one time step in a discretised history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepInfo {
    /// Calendar year the step belongs to.
    pub year: u32,
    /// Index of the step within its year.
    pub step_in_year: u32,
    /// Display label, e.g. `"2016-Q3"`.
    pub label: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarterly_has_four_steps() {
        let d = Discretization::quarterly();
        assert_eq!(d.steps_per_year(), 4);
        assert_eq!(d.step_of_month(1), Some(0));
        assert_eq!(d.step_of_month(3), Some(0));
        assert_eq!(d.step_of_month(4), Some(1));
        assert_eq!(d.step_of_month(12), Some(3));
    }

    #[test]
    fn dry_season_has_three_steps_and_filters_wet_months() {
        let d = Discretization::dry_season();
        assert_eq!(d.steps_per_year(), 3);
        assert_eq!(d.step_of_month(1), Some(0));
        assert_eq!(d.step_of_month(2), Some(0));
        assert_eq!(d.step_of_month(3), Some(1));
        assert_eq!(d.step_of_month(4), Some(1));
        assert_eq!(d.step_of_month(11), Some(2));
        assert_eq!(d.step_of_month(12), Some(2));
        for wet in 5..=10 {
            assert_eq!(d.step_of_month(wet), None);
        }
    }

    #[test]
    fn labels_distinguish_schemes() {
        assert_eq!(Discretization::quarterly().step_label(0), "Q1");
        assert_eq!(Discretization::dry_season().step_label(2), "D3");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn month_zero_rejected() {
        Discretization::quarterly().step_of_month(0);
    }

    #[test]
    fn every_month_maps_to_a_valid_quarter() {
        let d = Discretization::quarterly();
        for m in 1..=12 {
            let s = d.step_of_month(m).unwrap();
            assert!(s < d.steps_per_year());
        }
    }
}
