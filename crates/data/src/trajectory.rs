//! Patrol-effort reconstruction from GPS waypoints.
//!
//! Sec. III-B: "we rebuild historical patrol effort from these observations
//! by using sequential waypoints to calculate patrol trajectories". The
//! dataset pipeline is only allowed to see the waypoints (recorded every
//! ~30 minutes), not the true ranger path, so per-cell effort is estimated
//! by interpolating straight segments between consecutive waypoints and
//! attributing the traversed kilometres to the cells along each segment.
//! With sparse waypoints (motorbike patrols in SWS) this reconstruction is
//! deliberately less accurate — one of the data-quality differences the
//! paper highlights.

use paws_geo::{CellId, Park};
use paws_sim::Patrol;

/// Reconstruct per-cell patrol effort (km) for one patrol from its waypoints.
///
/// Returns a dense vector over in-park cell indices (`Park::cells` order).
pub fn reconstruct_patrol_effort(park: &Park, patrol: &Patrol) -> Vec<f64> {
    let mut effort = vec![0.0; park.n_cells()];
    for pair in patrol.waypoints.windows(2) {
        let a = pair[0];
        let b = pair[1];
        let km = (b.km_from_start - a.km_from_start).max(0.0);
        distribute_segment(park, a.cell, b.cell, km, &mut effort);
    }
    effort
}

/// Reconstruct and sum per-cell effort over a set of patrols.
pub fn reconstruct_effort(park: &Park, patrols: &[Patrol]) -> Vec<f64> {
    let mut total = vec![0.0; park.n_cells()];
    for p in patrols {
        let e = reconstruct_patrol_effort(park, p);
        for (t, v) in total.iter_mut().zip(e) {
            *t += v;
        }
    }
    total
}

/// Split `km` of travel between the cells crossed by the straight segment
/// from the centre of `from` to the centre of `to`.
fn distribute_segment(park: &Park, from: CellId, to: CellId, km: f64, effort: &mut [f64]) {
    if km <= 0.0 {
        // Zero-length segment (ranger idled at a waypoint): nothing to add.
        return;
    }
    let (ar, ac) = park.grid.centre_km(from);
    let (br, bc) = park.grid.centre_km(to);
    // Sample the segment at sub-cell resolution and attribute an equal share
    // of the kilometres to the (in-park) cell under each sample.
    let samples = (((ar - br).abs().max((ac - bc).abs()) * 3.0).ceil() as usize).max(1);
    let share = km / samples as f64;
    for s in 0..samples {
        let t = (s as f64 + 0.5) / samples as f64;
        let r = ar + (br - ar) * t;
        let c = ac + (bc - ac) * t;
        if let Some(cell) = park.grid.try_cell(r.floor() as i64, c.floor() as i64) {
            if let Some(idx) = park.cell_position(cell) {
                effort[idx] += share;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_geo::parks::test_park_spec;
    use paws_sim::{patrol::simulate_month, presets::test_sim_config, Waypoint};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn park() -> Park {
        Park::generate(&test_park_spec(), 7)
    }

    #[test]
    fn reconstructed_total_matches_waypoint_length() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let patrols = simulate_month(&park, &test_sim_config().patrol, &mut rng);
        for p in &patrols {
            let rec = reconstruct_patrol_effort(&park, p);
            let total: f64 = rec.iter().sum();
            let walked = p.waypoints.last().unwrap().km_from_start;
            // The whole walk stays inside the park, so all km are attributed.
            assert!(
                (total - walked).abs() < 1e-9,
                "total={total} walked={walked}"
            );
        }
    }

    #[test]
    fn reconstruction_correlates_with_true_effort() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let patrols = simulate_month(&park, &test_sim_config().patrol, &mut rng);
        let rec = reconstruct_effort(&park, &patrols);
        let truth = paws_sim::patrol::effort_map(&park, &patrols);
        // Pearson correlation between the reconstruction and the truth
        // should be strongly positive even though waypoints are sparse.
        let n = rec.len() as f64;
        let mr = rec.iter().sum::<f64>() / n;
        let mt = truth.iter().sum::<f64>() / n;
        let cov: f64 = rec
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - mr) * (b - mt))
            .sum();
        let vr: f64 = rec.iter().map(|a| (a - mr).powi(2)).sum();
        let vt: f64 = truth.iter().map(|b| (b - mt).powi(2)).sum();
        let corr = cov / (vr.sqrt() * vt.sqrt()).max(1e-12);
        assert!(corr > 0.6, "correlation too low: {corr}");
    }

    #[test]
    fn stationary_waypoints_add_no_effort() {
        let park = park();
        let post = park.patrol_posts[0];
        let p = Patrol {
            post,
            waypoints: vec![
                Waypoint {
                    cell: post,
                    km_from_start: 0.0,
                },
                Waypoint {
                    cell: post,
                    km_from_start: 0.0,
                },
            ],
            true_effort: vec![],
        };
        let rec = reconstruct_patrol_effort(&park, &p);
        assert!(rec.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn single_segment_splits_between_cells_on_the_line() {
        let park = park();
        // Find two in-park cells a few km apart on the same row.
        let a = park.cells[park.n_cells() / 2];
        let (ar, ac) = park.grid.coords(a);
        let b = (1..=4)
            .rev()
            .filter_map(|d| park.grid.try_cell(ar as i64, ac as i64 + d))
            .find(|c| park.contains(*c));
        let Some(b) = b else { return };
        let km = park.grid.distance_km(a, b);
        let p = Patrol {
            post: a,
            waypoints: vec![
                Waypoint {
                    cell: a,
                    km_from_start: 0.0,
                },
                Waypoint {
                    cell: b,
                    km_from_start: km,
                },
            ],
            true_effort: vec![],
        };
        let rec = reconstruct_patrol_effort(&park, &p);
        let total: f64 = rec.iter().sum();
        assert!((total - km).abs() < 1e-9);
        // Both endpoints should receive some effort.
        assert!(rec[park.cell_position(a).unwrap()] > 0.0);
        assert!(rec[park.cell_position(b).unwrap()] > 0.0);
    }
}
