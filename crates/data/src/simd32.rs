//! `f32x8` micro-kernels: the single-precision counterparts of [`crate::simd`].
//!
//! The f32 prediction plane (an [`crate::matrix32::Matrix32`] feature batch
//! traversed by `paws_ml`'s 8-byte-node `Forest32` arena) halves the memory
//! bandwidth of every park-wide prediction pass, which is what the 16-byte
//! f64 node format was bound on. Its reductions and element-wise combines
//! run on the kernels in this module, written in exactly the style of the
//! `f64x4` layer: [`F32x8`] is a plain `[f32; 8]` wrapper whose lane-wise
//! operations compile to packed SIMD under LLVM's auto-vectoriser, with an
//! explicit scalar tail for lengths that are not lane multiples. One AVX
//! register holds eight `f32` lanes, so the lane count doubles relative to
//! `F64x4` at the same register width.
//!
//! # Numerical contract
//!
//! The same two-tier contract as [`crate::simd`], at f32 precision:
//!
//! * **Element-wise kernels** (`add_assign`, `accumulate_sq_diff`,
//!   `div_assign`, `scale`, `axpy`, `standardize`) perform exactly the same
//!   operations per element as their scalar f32 loops — results are
//!   **bit-identical** to those loops.
//! * **Reduction kernels** (`dot`, `sum`, `sum_squares`,
//!   `squared_distance`) split the accumulation across eight lanes (lane
//!   `k` accumulates elements `k, k+8, …`), combine pairwise, then fold the
//!   scalar tail sequentially. No FMA contraction is used.
//!
//! Against the **f64 reference path** every f32 kernel carries the
//! inherent single-precision rounding (~1.2e-7 relative per operation);
//! the proptest suite (`tests/simd32_proptest.rs`) pins f32-vs-f64
//! kernel agreement and the golden parity suite pins the end-to-end
//! prediction-plane divergence (see `tests/matrix_parity.rs`).

/// Number of lanes per vector.
pub const LANES: usize = 8;

/// Eight `f32` lanes, operated on element-wise.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct F32x8(pub [f32; 8]);

impl F32x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 8])
    }

    /// Load eight consecutive values from the head of `s` (single unaligned
    /// packed load; see `F64x4::load` on why the array conversion matters).
    ///
    /// # Panics
    /// Panics when `s` holds fewer than eight elements.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let lanes: &[f32; 8] = s[..8].try_into().expect("lane load needs 8 values");
        Self(*lanes)
    }

    /// Store the lanes into the head of `out` (single packed store).
    ///
    /// # Panics
    /// Panics when `out` holds fewer than eight elements.
    #[inline(always)]
    pub fn store(self, out: &mut [f32]) {
        let lanes: &mut [f32; 8] = (&mut out[..8])
            .try_into()
            .expect("lane store needs 8 slots");
        *lanes = self.0;
    }

    /// Pairwise horizontal sum `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
    #[inline(always)]
    pub fn horizontal_sum(self) -> f32 {
        let [a, b, c, d, e, f, g, h] = self.0;
        ((a + b) + (c + d)) + ((e + f) + (g + h))
    }
}

macro_rules! impl_lane_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F32x8 {
            type Output = F32x8;
            #[inline(always)]
            fn $method(self, o: F32x8) -> F32x8 {
                F32x8([
                    self.0[0] $op o.0[0],
                    self.0[1] $op o.0[1],
                    self.0[2] $op o.0[2],
                    self.0[3] $op o.0[3],
                    self.0[4] $op o.0[4],
                    self.0[5] $op o.0[5],
                    self.0[6] $op o.0[6],
                    self.0[7] $op o.0[7],
                ])
            }
        }
    };
}

impl_lane_op!(Add, add, +);
impl_lane_op!(Sub, sub, -);
impl_lane_op!(Mul, mul, *);
impl_lane_op!(Div, div, /);

/// Dot product `Σ aᵢ·bᵢ` with eight-lane accumulation.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = F32x8::splat(0.0);
    let (a8, a_tail) = a.split_at(a.len() - a.len() % LANES);
    let (b8, b_tail) = b.split_at(a8.len());
    for (ca, cb) in a8.chunks_exact(LANES).zip(b8.chunks_exact(LANES)) {
        acc = acc + F32x8::load(ca) * F32x8::load(cb);
    }
    let mut out = acc.horizontal_sum();
    for (x, y) in a_tail.iter().zip(b_tail) {
        out += x * y;
    }
    out
}

/// Sequential scalar dot product (parity reference).
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum `Σ aᵢ` with eight-lane accumulation.
#[inline]
pub fn sum(a: &[f32]) -> f32 {
    let mut acc = F32x8::splat(0.0);
    let (a8, tail) = a.split_at(a.len() - a.len() % LANES);
    for c in a8.chunks_exact(LANES) {
        acc = acc + F32x8::load(c);
    }
    let mut out = acc.horizontal_sum();
    for x in tail {
        out += x;
    }
    out
}

/// Sequential scalar sum (parity reference).
#[inline]
pub fn sum_scalar(a: &[f32]) -> f32 {
    a.iter().sum()
}

/// Sum of squares `Σ aᵢ²` with eight-lane accumulation.
#[inline]
pub fn sum_squares(a: &[f32]) -> f32 {
    let mut acc = F32x8::splat(0.0);
    let (a8, tail) = a.split_at(a.len() - a.len() % LANES);
    for c in a8.chunks_exact(LANES) {
        let v = F32x8::load(c);
        acc = acc + v * v;
    }
    let mut out = acc.horizontal_sum();
    for x in tail {
        out += x * x;
    }
    out
}

/// Squared Euclidean distance `Σ (aᵢ−bᵢ)²` with eight-lane accumulation.
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = F32x8::splat(0.0);
    let (a8, a_tail) = a.split_at(a.len() - a.len() % LANES);
    let (b8, b_tail) = b.split_at(a8.len());
    for (ca, cb) in a8.chunks_exact(LANES).zip(b8.chunks_exact(LANES)) {
        let d = F32x8::load(ca) - F32x8::load(cb);
        acc = acc + d * d;
    }
    let mut out = acc.horizontal_sum();
    for (x, y) in a_tail.iter().zip(b_tail) {
        out += (x - y) * (x - y);
    }
    out
}

/// True when every element is finite. Same vectorised `Σ v·0` probe as the
/// f64 kernel: the product is `+0` for finite `v` and NaN for `±∞`/NaN.
#[inline]
pub fn all_finite(xs: &[f32]) -> bool {
    let mut acc = F32x8::splat(0.0);
    let zero = F32x8::splat(0.0);
    let (x8, tail) = xs.split_at(xs.len() - xs.len() % LANES);
    for c in x8.chunks_exact(LANES) {
        acc = acc + F32x8::load(c) * zero;
    }
    let mut probe = acc.horizontal_sum();
    for v in tail {
        probe += v * 0.0;
    }
    probe == 0.0
}

/// `y ← y + α·x`, element-wise (bit-identical to the scalar f32 loop;
/// plain zip on purpose — see `simd::axpy` on why element-wise kernels are
/// left to the auto-vectoriser).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Sequential scalar axpy (parity reference; indexed loop on purpose so the
/// bit-identity property keeps meaning if [`axpy`] is ever hand-laned).
#[inline]
pub fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    for i in 0..y.len() {
        y[i] += alpha * x[i];
    }
}

/// `y ← y · α`, element-wise.
#[inline]
pub fn scale(y: &mut [f32], alpha: f32) {
    for yv in y.iter_mut() {
        *yv *= alpha;
    }
}

/// `y ← y / α`, element-wise division (keeps the exact scalar rounding,
/// unlike multiplying by a pre-rounded `1/α`).
#[inline]
pub fn div_assign(y: &mut [f32], alpha: f32) {
    for yv in y.iter_mut() {
        *yv /= alpha;
    }
}

/// `acc ← acc + x`, element-wise.
#[inline]
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (av, xv) in acc.iter_mut().zip(x) {
        *av += xv;
    }
}

/// `acc ← acc + (x − m)²`, element-wise: the member-spread accumulation of
/// the f32 prediction plane.
#[inline]
pub fn accumulate_sq_diff(acc: &mut [f32], x: &[f32], m: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    debug_assert_eq!(acc.len(), m.len());
    for ((av, xv), mv) in acc.iter_mut().zip(x).zip(m) {
        *av += (xv - mv) * (xv - mv);
    }
}

/// `row ← (row − m) / s`, element-wise z-score transform.
#[inline]
pub fn standardize(row: &mut [f32], m: &[f32], s: &[f32]) {
    debug_assert_eq!(row.len(), m.len());
    debug_assert_eq!(row.len(), s.len());
    for ((rv, mv), sv) in row.iter_mut().zip(m).zip(s) {
        *rv = (*rv - mv) / sv;
    }
}

/// Narrow an `f64` slice into `out` (round-to-nearest per element,
/// **saturating** at ±`f32::MAX`). The boundary between the f64 training
/// world and the f32 prediction plane.
///
/// Saturation is what keeps the plane's finiteness contract aligned with
/// the f64 plane's: a finite f64 value beyond f32 range (a raw, unscaled
/// feature like 1e40) must stay finite — rounding it to `±inf` would trip
/// the traversal's `all_finite` guard on input the f64 plane accepts. A
/// saturated value still compares correctly against every in-range split
/// threshold, so predictions are unaffected.
#[inline]
pub fn narrow(src: &[f64], out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    for (o, &v) in out.iter_mut().zip(src) {
        let x = v as f32;
        *o = if x.is_infinite() && v.is_finite() {
            f32::MAX.copysign(x)
        } else {
            x
        };
    }
}

/// Widen an `f32` slice into `out` (exact per element — every f32 is
/// representable in f64). The boundary back out of the prediction plane.
#[inline]
pub fn widen(src: &[f32], out: &mut [f64]) {
    debug_assert_eq!(src.len(), out.len());
    for (o, &v) in out.iter_mut().zip(src) {
        *o = f64::from(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4 * a.abs().max(b.abs()).max(1.0)
    }

    fn ramp(n: usize, phase: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.37 + phase).sin() * 2.5) - 0.3)
            .collect()
    }

    #[test]
    fn reduction_kernels_match_scalar_over_all_tails() {
        // Lengths straddling every tail residue 0..15 and a long buffer.
        for n in (0..24).chain([31, 64, 100, 257]) {
            let a = ramp(n, 0.1);
            let b = ramp(n, 1.7);
            assert!(close(dot(&a, &b), dot_scalar(&a, &b)), "dot len {n}");
            assert!(close(sum(&a), sum_scalar(&a)), "sum len {n}");
            assert!(
                close(sum_squares(&a), a.iter().map(|x| x * x).sum()),
                "sum_squares len {n}"
            );
            let sq: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!(close(squared_distance(&a, &b), sq), "sqdist len {n}");
        }
    }

    #[test]
    fn sum_of_binary_labels_is_exact_in_any_order() {
        // 0/1 sums stay exact integers under lane regrouping in f32 too
        // (counts ≪ 2²⁴, the f32 integer-exactness limit).
        for n in [0, 1, 5, 33, 250] {
            let labels: Vec<f32> = (0..n).map(|i| f32::from(u8::from(i % 3 == 0))).collect();
            assert_eq!(sum(&labels), sum_scalar(&labels));
            assert_eq!(
                sum(&labels),
                labels.iter().filter(|&&l| l == 1.0).count() as f32
            );
        }
    }

    #[test]
    fn elementwise_kernels_are_bit_identical_to_scalar() {
        for n in 0..21 {
            let x = ramp(n, 0.4);
            let m = ramp(n, 2.2);
            let s: Vec<f32> = ramp(n, 3.0).iter().map(|v| v.abs() + 0.5).collect();

            let mut y_simd = ramp(n, 5.0);
            let mut y_ref = y_simd.clone();
            axpy(0.77, &x, &mut y_simd);
            axpy_scalar(0.77, &x, &mut y_ref);
            assert_eq!(y_simd, y_ref, "axpy len {n}");

            scale(&mut y_simd, 1.3);
            for v in y_ref.iter_mut() {
                *v *= 1.3;
            }
            assert_eq!(y_simd, y_ref, "scale len {n}");

            div_assign(&mut y_simd, 3.0);
            for v in y_ref.iter_mut() {
                *v /= 3.0;
            }
            assert_eq!(y_simd, y_ref, "div_assign len {n}");

            add_assign(&mut y_simd, &x);
            for (v, xv) in y_ref.iter_mut().zip(&x) {
                *v += xv;
            }
            assert_eq!(y_simd, y_ref, "add_assign len {n}");

            accumulate_sq_diff(&mut y_simd, &x, &m);
            for ((v, xv), mv) in y_ref.iter_mut().zip(&x).zip(&m) {
                *v += (xv - mv) * (xv - mv);
            }
            assert_eq!(y_simd, y_ref, "accumulate_sq_diff len {n}");

            let mut r_simd = ramp(n, 6.0);
            let mut r_ref = r_simd.clone();
            standardize(&mut r_simd, &m, &s);
            for ((rv, mv), sv) in r_ref.iter_mut().zip(&m).zip(&s) {
                *rv = (*rv - mv) / sv;
            }
            assert_eq!(r_simd, r_ref, "standardize len {n}");
        }
    }

    #[test]
    fn all_finite_detects_every_non_finite_lane_and_tail_position() {
        for n in 1..19 {
            let base = ramp(n, 0.9);
            assert!(all_finite(&base), "finite len {n}");
            for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
                for pos in 0..n {
                    let mut xs = base.clone();
                    xs[pos] = bad;
                    assert!(!all_finite(&xs), "len {n} pos {pos} {bad}");
                }
            }
        }
        assert!(all_finite(&[]));
    }

    #[test]
    fn narrow_then_widen_round_trips_within_half_ulp() {
        let src: Vec<f64> = (0..37).map(|i| (i as f64 * 0.731).sin() * 4.0).collect();
        let mut narrow_buf = vec![0.0f32; src.len()];
        narrow(&src, &mut narrow_buf);
        let mut wide_buf = vec![0.0f64; src.len()];
        widen(&narrow_buf, &mut wide_buf);
        for ((w, n), s) in wide_buf.iter().zip(&narrow_buf).zip(&src) {
            // One round-to-nearest narrowing: |w − s| ≤ ulp₃₂(s).
            assert!((w - s).abs() <= s.abs().max(1.0) * f64::from(f32::EPSILON));
            // Widening is exact: the f32 value survives bit-for-bit.
            assert_eq!(*w as f32, *n);
        }
    }

    #[test]
    fn narrow_saturates_out_of_range_finite_values() {
        let src = [
            1e40,
            -1e40,
            f64::MAX,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        let mut out = vec![0.0f32; src.len()];
        narrow(&src, &mut out);
        // Finite-but-huge values clamp to the representable edge…
        assert_eq!(out[0], f32::MAX);
        assert_eq!(out[1], f32::MIN);
        assert_eq!(out[2], f32::MAX);
        assert_eq!(out[3], 1.5);
        // …while genuinely non-finite inputs stay non-finite, so the
        // traversal guard still rejects exactly what the f64 plane rejects.
        assert_eq!(out[4], f32::INFINITY);
        assert_eq!(out[5], f32::NEG_INFINITY);
        assert!(out[6].is_nan());
    }

    #[test]
    fn lane_ops_behave() {
        let a = F32x8::load(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(2.0);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
        assert_eq!((a / b).0, [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]);
        assert_eq!(a.horizontal_sum(), 36.0);
        let mut out = [0.0; 8];
        a.store(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }
}
