//! Positive-label rate as a function of patrol-effort threshold (Fig. 4).
//!
//! Sec. III-C: "the percentage of illegal activity detected increases
//! proportionally to patrol effort exerted. Thus, given a threshold θ of
//! patrol effort, negative data samples recorded based on a patrol effort of
//! c ≥ θ are relatively more reliable". Fig. 4 plots, for thresholds placed
//! at patrol-effort percentiles, the percentage of positive labels among the
//! points whose effort is at least the threshold.

use serde::{Deserialize, Serialize};

/// One point of the Fig. 4 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// Patrol-effort percentile of the threshold (0–100).
    pub percentile: f64,
    /// Effort value (km) at that percentile.
    pub effort_km: f64,
    /// Percentage of positive labels among points with effort ≥ threshold.
    pub pct_positive: f64,
    /// Number of points retained at this threshold.
    pub n_points: usize,
}

/// The value at a given percentile (0–100) of a sample, using linear
/// interpolation between order statistics.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sample");
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile must be in [0, 100]"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Compute the Fig. 4 curve: positive-label percentage among points whose
/// patrol effort is at least the threshold placed at each requested
/// percentile.
///
/// `efforts` and `labels` are parallel slices over data points.
pub fn positive_rate_by_effort_percentile(
    efforts: &[f64],
    labels: &[bool],
    percentiles: &[f64],
) -> Vec<ThresholdPoint> {
    assert_eq!(
        efforts.len(),
        labels.len(),
        "efforts/labels length mismatch"
    );
    assert!(!efforts.is_empty(), "no data points");
    percentiles
        .iter()
        .map(|&pct| {
            let theta = percentile(efforts, pct);
            let mut kept = 0usize;
            let mut positive = 0usize;
            for (e, &l) in efforts.iter().zip(labels) {
                if *e >= theta {
                    kept += 1;
                    if l {
                        positive += 1;
                    }
                }
            }
            ThresholdPoint {
                percentile: pct,
                effort_km: theta,
                pct_positive: if kept == 0 {
                    0.0
                } else {
                    100.0 * positive as f64 / kept as f64
                },
                n_points: kept,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert!((percentile(&v, 25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
    }

    #[test]
    fn higher_effort_points_have_higher_positive_rate() {
        // Construct data where detections only happen with effort >= 2 km,
        // mirroring the one-sided noise mechanism.
        let efforts: Vec<f64> = (0..100).map(|i| i as f64 / 20.0).collect();
        // Positive fraction grows with effort: floor(e) out of every 5 points.
        let labels: Vec<bool> = efforts
            .iter()
            .enumerate()
            .map(|(i, &e)| (i % 5) < (e.floor() as usize).min(5))
            .collect();
        let curve = positive_rate_by_effort_percentile(&efforts, &labels, &[0.0, 40.0, 80.0]);
        assert!(curve[0].pct_positive <= curve[1].pct_positive);
        assert!(curve[1].pct_positive <= curve[2].pct_positive);
        assert!(curve[0].n_points >= curve[2].n_points);
    }

    #[test]
    fn all_negative_labels_yield_zero_curve() {
        let efforts = vec![0.5, 1.0, 2.0, 3.0];
        let labels = vec![false; 4];
        let curve = positive_rate_by_effort_percentile(&efforts, &labels, &[0.0, 50.0]);
        assert!(curve.iter().all(|p| p.pct_positive == 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        positive_rate_by_effort_percentile(&[1.0], &[true, false], &[0.0]);
    }
}
