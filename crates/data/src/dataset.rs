//! Assembly of the predictive-modelling dataset.
//!
//! Sec. III-B: the dataset D = (X, y) discretises the records into T time
//! steps and N locations. Each feature vector x_{t,n} contains the static
//! geospatial features of the cell plus one dynamic covariate — the patrol
//! coverage of the *previous* time step c_{t−1,n} (the deterrence signal) —
//! and the label y_{t,n} says whether any poaching was detected in the cell
//! during step t. Only patrolled (cell, step) pairs become data points
//! (unpatrolled cells carry no observation at all), which is what produces
//! the point counts of Table I.
//!
//! Feature rows live in one contiguous row-major [`Matrix`] (row i ↔
//! `points[i]`); training subsets are taken by index with
//! [`Matrix::gather`], never by cloning rows.

use crate::discretize::{Discretization, StepInfo};
use crate::matrix::Matrix;
use crate::trajectory::reconstruct_effort;
use paws_geo::Park;
use paws_sim::History;
use serde::{Deserialize, Serialize};

/// Typed rejection of a streaming append — the dataset is left untouched
/// whenever one of these is returned.
#[derive(Debug, Clone, PartialEq)]
pub enum AppendError {
    /// Appended feature rows have the wrong width.
    WrongWidth {
        /// Feature width of the dataset.
        expected: usize,
        /// Width of the rejected batch.
        got: usize,
    },
    /// An appended feature row or point carries a non-finite value.
    NonFinite {
        /// Index of the offending row within the rejected batch.
        row: usize,
    },
    /// Rows and point metadata disagree in length.
    LengthMismatch {
        /// Number of appended feature rows.
        rows: usize,
        /// Number of appended points.
        points: usize,
    },
    /// A point references a cell outside the park grid.
    CellOutOfRange {
        /// The offending in-park cell index.
        cell_idx: usize,
        /// Number of in-park cells.
        n_cells: usize,
    },
    /// The appended history chunk does not match the dataset's park.
    ParkMismatch,
    /// An appended month lands in a time step whose points were already
    /// emitted — patrol-log batches must arrive in chronological order and
    /// aligned on step boundaries, or earlier feature rows would silently
    /// go stale.
    OutOfOrderStep {
        /// Calendar year of the rejected month.
        year: u32,
        /// Month of the rejected month (1–12).
        month: u32,
    },
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::WrongWidth { expected, got } => {
                write!(
                    f,
                    "appended rows are {got} wide, dataset has {expected} features"
                )
            }
            AppendError::NonFinite { row } => {
                write!(f, "appended row {row} carries a non-finite value")
            }
            AppendError::LengthMismatch { rows, points } => {
                write!(f, "{rows} appended rows but {points} appended points")
            }
            AppendError::CellOutOfRange { cell_idx, n_cells } => {
                write!(f, "appended point references cell {cell_idx} of {n_cells}")
            }
            AppendError::ParkMismatch => {
                write!(f, "appended history does not match the dataset's park")
            }
            AppendError::OutOfOrderStep { year, month } => {
                write!(
                    f,
                    "month {year}-{month:02} falls in an already-emitted time step; \
                     batches must be chronological and step-aligned"
                )
            }
        }
    }
}

impl std::error::Error for AppendError {}

/// One (cell, time-step) observation. The feature vector of point `i` is
/// row `i` of [`Dataset::features`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Chronological time-step index within the dataset.
    pub step: usize,
    /// In-park cell index (`Park::cells` order).
    pub cell_idx: usize,
    /// Patrol effort (km) reconstructed for this cell during this step —
    /// the quantity iWare-E thresholds filter on.
    pub current_effort: f64,
    /// Whether poaching activity was detected in the cell during the step.
    pub label: bool,
    /// Calendar year of the step (used for train/test splits).
    pub year: u32,
}

/// The assembled dataset for one park and one discretisation scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Park name the dataset was built from.
    pub park_name: String,
    /// Names of the feature columns, in order.
    pub feature_names: Vec<String>,
    /// All (cell, step) data points with non-zero patrol effort.
    pub points: Vec<DataPoint>,
    /// Feature matrix: row `i` holds the features of `points[i]` (static
    /// features followed by previous-step coverage).
    pub features: Matrix,
    /// Number of in-park cells.
    pub n_cells: usize,
    /// Step metadata in chronological order.
    pub steps: Vec<StepInfo>,
    /// Reconstructed patrol coverage per step and cell (`coverage[step][cell]`).
    pub coverage: Vec<Vec<f64>>,
    /// Detected-poaching indicator per step and cell.
    pub detections: Vec<Vec<bool>>,
    /// Discretisation used to build the dataset.
    pub discretization: Discretization,
}

impl Dataset {
    /// Number of feature columns (static features + previous coverage).
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of data points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Number of positively-labelled points.
    pub fn n_positive(&self) -> usize {
        self.points.iter().filter(|p| p.label).count()
    }

    /// Feature vector of one point.
    pub fn features_of(&self, point_idx: usize) -> &[f64] {
        self.features.row(point_idx)
    }

    /// Feature rows of a set of points (by index into `points`), gathered
    /// into one contiguous matrix.
    pub fn feature_rows(&self, idx: &[usize]) -> Matrix {
        self.features.gather(idx)
    }

    /// Labels (1.0 / 0.0) of a set of points.
    pub fn labels(&self, idx: &[usize]) -> Vec<f64> {
        idx.iter()
            .map(|&i| if self.points[i].label { 1.0 } else { 0.0 })
            .collect()
    }

    /// Current patrol effort of a set of points.
    pub fn efforts(&self, idx: &[usize]) -> Vec<f64> {
        idx.iter().map(|&i| self.points[i].current_effort).collect()
    }

    /// The coverage map of the last step of a given year, used as the
    /// "previous coverage" covariate when predicting the following period.
    pub fn last_coverage_of_year(&self, year: u32) -> Option<&[f64]> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.year == year)
            .map(|(i, _)| i)
            .next_back()
            .map(|i| self.coverage[i].as_slice())
    }

    /// Append pre-built feature rows and their point metadata in place —
    /// the low-level streaming primitive under
    /// [`Dataset::append_observations`]. All validation happens before any
    /// mutation: on `Err` the dataset is bit-for-bit unchanged. On success
    /// the flat feature [`Matrix`] is extended (never rebuilt), so a
    /// dataset grown by appends is byte-identical to one built in a single
    /// pass over the same rows.
    ///
    /// # Errors
    /// Typed [`AppendError`]s for wrong-width batches, non-finite feature
    /// or effort values, row/point length mismatches and out-of-range cell
    /// indices.
    pub fn append_rows(
        &mut self,
        rows: crate::matrix::MatrixView<'_>,
        points: &[DataPoint],
    ) -> Result<usize, AppendError> {
        if rows.n_cols() != self.n_features() {
            return Err(AppendError::WrongWidth {
                expected: self.n_features(),
                got: rows.n_cols(),
            });
        }
        if rows.n_rows() != points.len() {
            return Err(AppendError::LengthMismatch {
                rows: rows.n_rows(),
                points: points.len(),
            });
        }
        for (r, row) in rows.rows().enumerate() {
            if row.iter().any(|v| !v.is_finite()) || !points[r].current_effort.is_finite() {
                return Err(AppendError::NonFinite { row: r });
            }
        }
        for p in points {
            if p.cell_idx >= self.n_cells {
                return Err(AppendError::CellOutOfRange {
                    cell_idx: p.cell_idx,
                    n_cells: self.n_cells,
                });
            }
        }
        self.features.extend_rows(rows);
        self.points.extend_from_slice(points);
        Ok(points.len())
    }

    /// Append a chunk of patrol-log months in place, replaying exactly the
    /// grouping and point-emission logic of [`build_dataset`]: months are
    /// bucketed into `(year, step)` keys, coverage is accumulated and
    /// detections OR-ed per step, and one point is emitted per patrolled
    /// cell with the previous step's coverage as the dynamic covariate.
    /// A dataset grown month-chunk by month-chunk is therefore
    /// bit-identical to one built from the concatenated history — matrix
    /// bytes included — as long as every chunk is chronological and
    /// step-aligned (a time step's months never straddle two chunks).
    ///
    /// Returns the number of data points appended (zero when every month
    /// is filtered out by the discretisation's season filter).
    ///
    /// # Errors
    /// [`AppendError::ParkMismatch`] when the chunk or park disagrees with
    /// the dataset's grid, and [`AppendError::OutOfOrderStep`] when a month
    /// lands in an already-emitted step (late or straddling batches).
    pub fn append_observations(
        &mut self,
        park: &Park,
        history: &History,
    ) -> Result<usize, AppendError> {
        if history.n_cells != self.n_cells
            || park.n_cells() != self.n_cells
            || park.name != self.park_name
            || park.n_static_features() + 1 != self.n_features()
        {
            return Err(AppendError::ParkMismatch);
        }
        let disc = self.discretization;
        let n_cells = self.n_cells;

        // Group the new months into (year, step_in_year) buckets exactly
        // like `build_dataset`, rejecting any month that falls at or before
        // the last already-emitted step.
        let mut new_steps: Vec<StepInfo> = Vec::new();
        let mut new_coverage: Vec<Vec<f64>> = Vec::new();
        let mut new_detections: Vec<Vec<bool>> = Vec::new();
        let mut last_key = self.steps.last().map(|s| (s.year, s.step_in_year));
        let mut current_key: Option<(u32, u32)> = None;
        for month in &history.months {
            let Some(step_in_year) = disc.step_of_month(month.month) else {
                continue;
            };
            let key = (month.year, step_in_year);
            if current_key != Some(key) {
                if last_key.is_some_and(|last| key <= last) {
                    return Err(AppendError::OutOfOrderStep {
                        year: month.year,
                        month: month.month,
                    });
                }
                last_key = Some(key);
                current_key = Some(key);
                new_steps.push(StepInfo {
                    year: month.year,
                    step_in_year,
                    label: format!("{}-{}", month.year, disc.step_label(step_in_year)),
                });
                new_coverage.push(vec![0.0; n_cells]);
                new_detections.push(vec![false; n_cells]);
            }
            let idx = new_steps.len() - 1;
            let rec = reconstruct_effort(park, &month.patrols);
            for i in 0..n_cells {
                new_coverage[idx][i] += rec[i];
                new_detections[idx][i] = new_detections[idx][i] || month.detections[i];
            }
        }

        // Static features per cell, extracted the same way as the one-shot
        // build so appended rows carry identical bytes.
        let k = self.n_features();
        let n_static = k - 1;
        let mut static_rows = Matrix::zeros(n_cells, n_static);
        for (i, &cell) in park.cells.iter().enumerate() {
            park.write_feature_row(cell, static_rows.row_mut(i));
        }

        // Emit points for the new steps; the first new step reads its
        // previous coverage from the resident tail of the dataset.
        let old_steps = self.steps.len();
        let mut rows = Matrix::new(k);
        let mut points = Vec::new();
        let mut row_buf = vec![0.0; k];
        for (local, step) in new_steps.iter().enumerate() {
            let t = old_steps + local;
            for cell_idx in 0..n_cells {
                let effort = new_coverage[local][cell_idx];
                if effort <= 0.0 {
                    continue;
                }
                let prev = if local > 0 {
                    new_coverage[local - 1][cell_idx]
                } else if let Some(tail) = self.coverage.last() {
                    tail[cell_idx]
                } else {
                    0.0
                };
                row_buf[..n_static].copy_from_slice(static_rows.row(cell_idx));
                row_buf[n_static] = prev;
                rows.push_row(&row_buf);
                points.push(DataPoint {
                    step: t,
                    cell_idx,
                    current_effort: effort,
                    label: new_detections[local][cell_idx],
                    year: step.year,
                });
            }
        }

        let appended = self.append_rows(rows.view(), &points)?;
        self.steps.extend(new_steps);
        self.coverage.extend(new_coverage);
        self.detections.extend(new_detections);
        Ok(appended)
    }

    /// Build the full-park feature matrix for a hypothetical next time step
    /// whose previous-step coverage is `prev_coverage` (length = `n_cells`).
    /// Row order follows `Park::cells`.
    pub fn full_feature_matrix(&self, park: &Park, prev_coverage: &[f64]) -> Matrix {
        assert_eq!(
            prev_coverage.len(),
            self.n_cells,
            "coverage length mismatch"
        );
        assert_eq!(park.n_cells(), self.n_cells, "park does not match dataset");
        let k = self.n_features();
        let mut matrix = Matrix::zeros(self.n_cells, k);
        for (i, &cell) in park.cells.iter().enumerate() {
            let row = matrix.row_mut(i);
            park.write_feature_row(cell, &mut row[..k - 1]);
            row[k - 1] = prev_coverage[i];
        }
        matrix
    }
}

/// Build a [`Dataset`] from a simulated history.
pub fn build_dataset(park: &Park, history: &History, disc: Discretization) -> Dataset {
    assert_eq!(
        history.n_cells,
        park.n_cells(),
        "history does not match park"
    );
    let n_cells = park.n_cells();

    // Group months into (year, step_in_year) buckets, preserving order.
    let mut steps: Vec<StepInfo> = Vec::new();
    let mut coverage: Vec<Vec<f64>> = Vec::new();
    let mut detections: Vec<Vec<bool>> = Vec::new();

    let mut current_key: Option<(u32, u32)> = None;
    for month in &history.months {
        let Some(step_in_year) = disc.step_of_month(month.month) else {
            continue;
        };
        let key = (month.year, step_in_year);
        if current_key != Some(key) {
            current_key = Some(key);
            steps.push(StepInfo {
                year: month.year,
                step_in_year,
                label: format!("{}-{}", month.year, disc.step_label(step_in_year)),
            });
            coverage.push(vec![0.0; n_cells]);
            detections.push(vec![false; n_cells]);
        }
        let idx = steps.len() - 1;
        let rec = reconstruct_effort(park, &month.patrols);
        for i in 0..n_cells {
            coverage[idx][i] += rec[i];
            detections[idx][i] = detections[idx][i] || month.detections[i];
        }
    }

    // Static features per cell, extracted once into a flat matrix.
    let n_static = park.n_static_features();
    let mut static_rows = Matrix::zeros(n_cells, n_static);
    for (i, &cell) in park.cells.iter().enumerate() {
        park.write_feature_row(cell, static_rows.row_mut(i));
    }
    let mut feature_names: Vec<String> = park
        .features
        .names()
        .into_iter()
        .map(|s| s.to_string())
        .collect();
    feature_names.push("prev_patrol_coverage".to_string());
    let k = feature_names.len();

    // Data points: patrolled cells only; the first step has zero previous
    // coverage everywhere.
    let mut points = Vec::new();
    let mut features = Matrix::new(k);
    let mut row_buf = vec![0.0; k];
    for (t, step) in steps.iter().enumerate() {
        for cell_idx in 0..n_cells {
            let effort = coverage[t][cell_idx];
            if effort <= 0.0 {
                continue;
            }
            let prev = if t == 0 {
                0.0
            } else {
                coverage[t - 1][cell_idx]
            };
            row_buf[..n_static].copy_from_slice(static_rows.row(cell_idx));
            row_buf[n_static] = prev;
            features.push_row(&row_buf);
            points.push(DataPoint {
                step: t,
                cell_idx,
                current_effort: effort,
                label: detections[t][cell_idx],
                year: step.year,
            });
        }
    }

    Dataset {
        park_name: park.name.clone(),
        feature_names,
        points,
        features,
        n_cells,
        steps,
        coverage,
        detections,
        discretization: disc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_geo::parks::test_park_spec;
    use paws_sim::history::simulate_history;
    use paws_sim::presets::test_sim_config;
    use paws_sim::{AttackModelConfig, PoacherModel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Park, History) {
        let park = Park::generate(&test_park_spec(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = PoacherModel::new(&park, AttackModelConfig::default(), &mut rng);
        let history = simulate_history(&park, &model, &test_sim_config(), 2013, 2, 3);
        (park, history)
    }

    #[test]
    fn quarterly_dataset_has_expected_steps() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        assert_eq!(ds.steps.len(), 8);
        assert_eq!(ds.n_cells, park.n_cells());
        assert_eq!(ds.n_features(), park.n_static_features() + 1);
        assert!(ds.n_points() > 0);
        assert_eq!(ds.features.n_rows(), ds.n_points());
        assert_eq!(ds.features.n_cols(), ds.n_features());
    }

    #[test]
    fn dry_season_dataset_has_three_steps_per_year() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::dry_season());
        assert_eq!(ds.steps.len(), 6);
    }

    #[test]
    fn points_only_cover_patrolled_cells() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        for p in &ds.points {
            assert!(p.current_effort > 0.0);
            assert!((ds.coverage[p.step][p.cell_idx] - p.current_effort).abs() < 1e-12);
        }
        let _ = park;
    }

    #[test]
    fn previous_coverage_feature_matches_coverage_matrix() {
        let (_park, history) = setup();
        let park = Park::generate(&test_park_spec(), 7);
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        let k = ds.n_features();
        for (i, p) in ds
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.step > 0)
            .take(200)
        {
            let expected = ds.coverage[p.step - 1][p.cell_idx];
            assert!((ds.features.get(i, k - 1) - expected).abs() < 1e-12);
        }
        for (i, p) in ds
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.step == 0)
            .take(50)
        {
            assert_eq!(ds.features.get(i, k - 1), 0.0);
            let _ = p;
        }
    }

    #[test]
    fn feature_rows_gather_matches_point_features() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        let idx: Vec<usize> = (0..ds.n_points()).step_by(7).collect();
        let m = ds.feature_rows(&idx);
        assert_eq!(m.n_rows(), idx.len());
        for (r, &i) in idx.iter().enumerate() {
            assert_eq!(m.row(r), ds.features_of(i));
        }
    }

    #[test]
    fn static_features_match_park_rows() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        let k = ds.n_features();
        for (i, p) in ds.points.iter().enumerate().take(100) {
            let expected = park.feature_row(park.cells[p.cell_idx]);
            assert_eq!(&ds.features_of(i)[..k - 1], expected.as_slice());
        }
    }

    #[test]
    fn labels_match_detection_matrix() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        for p in &ds.points {
            assert_eq!(p.label, ds.detections[p.step][p.cell_idx]);
        }
        assert!(ds.n_positive() > 0, "test dataset should contain positives");
        let _ = park;
    }

    #[test]
    fn full_feature_matrix_covers_every_cell() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        let prev = ds.coverage.last().unwrap().clone();
        let m = ds.full_feature_matrix(&park, &prev);
        assert_eq!(m.n_rows(), park.n_cells());
        assert_eq!(m.n_cols(), ds.n_features());
        for (i, &cell) in park.cells.iter().enumerate().take(50) {
            let expected = park.feature_row(cell);
            assert_eq!(&m.row(i)[..ds.n_features() - 1], expected.as_slice());
            assert_eq!(m.get(i, ds.n_features() - 1), prev[i]);
        }
    }

    #[test]
    fn last_coverage_of_year_returns_final_step() {
        let (park, history) = setup();
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        let cov = ds.last_coverage_of_year(2014).unwrap();
        assert_eq!(cov, ds.coverage.last().unwrap().as_slice());
        assert!(ds.last_coverage_of_year(1999).is_none());
        let _ = park;
    }
}
