//! Contiguous row-major `f32` feature matrices: the single-precision
//! counterpart of [`crate::matrix`], and the feature-batch type of the f32
//! prediction plane.
//!
//! Training stays entirely in `f64` ([`crate::matrix::Matrix`]); a
//! [`Matrix32`] only ever exists as a **narrowed copy** of an f64 batch
//! ([`Matrix32::from_f64`], round-to-nearest per element) produced at
//! prediction time. Halving the element width halves the feature-row
//! bandwidth of park-wide tree traversal — the bound the ROADMAP's
//! 16-byte-node analysis identified — and pairs with `paws_ml`'s 8-byte
//! `Forest32` arena nodes.

use crate::matrix::MatrixView;
use crate::simd32;

/// Owned, contiguous, row-major matrix of `f32` features.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix32 {
    data: Vec<f32>,
    n_cols: usize,
}

impl Matrix32 {
    /// Zero-filled `n_rows × n_cols` matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        Self {
            data: vec![0.0; n_rows * n_cols],
            n_cols,
        }
    }

    /// Take ownership of a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when the buffer length is not a multiple of `n_cols`.
    pub fn from_flat(data: Vec<f32>, n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        assert!(
            data.len().is_multiple_of(n_cols),
            "flat buffer length {} is not a multiple of the column count {}",
            data.len(),
            n_cols
        );
        Self { data, n_cols }
    }

    /// Narrow an f64 batch into the prediction plane (round-to-nearest per
    /// element; one pass, one allocation).
    pub fn from_f64(x: MatrixView<'_>) -> Self {
        let mut data = vec![0.0f32; x.as_slice().len()];
        simd32::narrow(x.as_slice(), &mut data);
        Self {
            data,
            n_cols: x.n_cols(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_cols
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Element at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.n_cols + col]
    }

    /// Iterator over row slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.data.chunks_exact(self.n_cols)
    }

    /// Borrowed view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatrixView32<'_> {
        MatrixView32 {
            data: &self.data,
            n_cols: self.n_cols,
        }
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Borrowed row-major `f32` matrix view.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView32<'a> {
    data: &'a [f32],
    n_cols: usize,
}

impl<'a> MatrixView32<'a> {
    /// View over a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when the buffer length is not a multiple of `n_cols`.
    pub fn from_flat(data: &'a [f32], n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        assert!(
            data.len().is_multiple_of(n_cols),
            "flat buffer length {} is not a multiple of the column count {}",
            data.len(),
            n_cols
        );
        Self { data, n_cols }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_cols
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterator over row slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &'a [f32]> {
        self.data.chunks_exact(self.n_cols)
    }

    /// First `n` rows as a sub-view (no copy).
    pub fn head(&self, n: usize) -> MatrixView32<'a> {
        MatrixView32 {
            data: &self.data[..n * self.n_cols],
            n_cols: self.n_cols,
        }
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }
}

impl<'a> From<&'a Matrix32> for MatrixView32<'a> {
    fn from(m: &'a Matrix32) -> Self {
        m.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn narrowing_rounds_each_element_to_nearest() {
        let m = Matrix::from_rows(&[vec![1.0, 0.1], vec![-2.5, 1e-9]]);
        let m32 = Matrix32::from_f64(m.view());
        assert_eq!(m32.n_rows(), 2);
        assert_eq!(m32.n_cols(), 2);
        for (r32, r64) in m32.rows().zip(m.rows()) {
            for (v32, v64) in r32.iter().zip(r64) {
                assert_eq!(*v32, *v64 as f32);
            }
        }
        // 0.1 is inexact in both widths but the narrowing is the nearest f32.
        assert_eq!(m32.get(0, 1), 0.1f32);
    }

    #[test]
    fn shape_row_and_view_access() {
        let mut m = Matrix32::zeros(3, 2);
        m.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(1, 1), 4.0);
        let v = m.view().head(2);
        assert_eq!(v.n_rows(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        assert_eq!(v.rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of the column count")]
    fn from_flat_rejects_partial_rows() {
        let _ = Matrix32::from_flat(vec![1.0, 2.0, 3.0], 2);
    }
}
