//! Dataset summary statistics (Table I of the paper).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// The per-dataset statistics reported in Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name (park, possibly with a season qualifier).
    pub name: String,
    /// Number of feature columns (static features + previous coverage).
    pub n_features: usize,
    /// Number of 1×1 km cells inside the park.
    pub n_cells: usize,
    /// Number of (cell, time-step) data points with non-zero patrol effort.
    pub n_points: usize,
    /// Number of positively-labelled points.
    pub n_positive: usize,
    /// Percentage of positive labels (0–100).
    pub pct_positive: f64,
    /// Average patrol effort (km) per patrolled cell and time step.
    pub avg_effort_km: f64,
}

impl DatasetStats {
    /// Compute the Table I statistics of a dataset.
    pub fn compute(name: &str, dataset: &Dataset) -> Self {
        let n_points = dataset.n_points();
        let n_positive = dataset.n_positive();
        let total_effort: f64 = dataset.points.iter().map(|p| p.current_effort).sum();
        Self {
            name: name.to_string(),
            n_features: dataset.n_features(),
            n_cells: dataset.n_cells,
            n_points,
            n_positive,
            pct_positive: if n_points == 0 {
                0.0
            } else {
                100.0 * n_positive as f64 / n_points as f64
            },
            avg_effort_km: if n_points == 0 {
                0.0
            } else {
                total_effort / n_points as f64
            },
        }
    }

    /// The class-imbalance ratio `negatives : positives` (e.g. ≈ 200 for SWS).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.n_positive == 0 {
            f64::INFINITY
        } else {
            (self.n_points - self.n_positive) as f64 / self.n_positive as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::build_dataset;
    use crate::discretize::Discretization;
    use paws_geo::parks::test_park_spec;
    use paws_geo::Park;
    use paws_sim::history::simulate_history;
    use paws_sim::presets::test_sim_config;
    use paws_sim::{AttackModelConfig, PoacherModel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stats_are_internally_consistent() {
        let park = Park::generate(&test_park_spec(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = PoacherModel::new(&park, AttackModelConfig::default(), &mut rng);
        let history = simulate_history(&park, &model, &test_sim_config(), 2013, 2, 3);
        let ds = build_dataset(&park, &history, Discretization::quarterly());
        let stats = DatasetStats::compute("TestPark", &ds);
        assert_eq!(stats.n_cells, 500);
        assert_eq!(stats.n_points, ds.n_points());
        assert_eq!(stats.n_positive, ds.n_positive());
        assert!(stats.pct_positive > 0.0 && stats.pct_positive < 100.0);
        assert!(stats.avg_effort_km > 0.0);
        assert!(stats.imbalance_ratio() > 1.0);
        assert!(
            (stats.pct_positive / 100.0 - stats.n_positive as f64 / stats.n_points as f64).abs()
                < 1e-12
        );
    }

    #[test]
    fn empty_dataset_yields_zero_stats() {
        let park = Park::generate(&test_park_spec(), 7);
        let ds = Dataset {
            park_name: "empty".into(),
            feature_names: vec!["a".into()],
            points: vec![],
            features: crate::matrix::Matrix::new(1),
            n_cells: park.n_cells(),
            steps: vec![],
            coverage: vec![],
            detections: vec![],
            discretization: Discretization::quarterly(),
        };
        let stats = DatasetStats::compute("empty", &ds);
        assert_eq!(stats.n_points, 0);
        assert_eq!(stats.pct_positive, 0.0);
        assert_eq!(stats.avg_effort_km, 0.0);
        assert!(stats.imbalance_ratio().is_infinite());
    }
}
