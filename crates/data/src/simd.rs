//! Hand-rolled `f64x4` micro-kernels for the contiguous hot loops.
//!
//! The flat-matrix migration (PR 1) and the arena forests (PR 2) left every
//! numeric hot path streaming contiguous `&[f64]`: RBF kernel rows, the
//! per-query `L⁻¹k*` triangular solves, SVM decision dots, scaler
//! transforms, and the per-learner reductions of the iWare-E stack. This
//! module vectorises those loops on **stable** Rust: [`F64x4`] is a plain
//! `[f64; 4]` wrapper whose lane-wise operations compile to packed SIMD
//! (SSE2/AVX on x86-64, NEON on aarch64) under LLVM's auto-vectoriser,
//! with an explicit scalar tail for lengths that are not lane multiples.
//! Explicit lanes are used exactly where they change semantics — the
//! reductions, whose accumulator must be split by hand because FP addition
//! is not associative; element-wise kernels are plain zips the compiler
//! already vectorises optimally (see [`axpy`]).
//!
//! # Numerical contract
//!
//! Two kinds of kernels live here, with different parity guarantees:
//!
//! * **Element-wise kernels** (`add_assign`, `accumulate_sq_diff`,
//!   `div_assign`, `scale`, `standardize`, `axpy`) perform exactly the same
//!   operations per element as their scalar loops — results are
//!   **bit-identical**.
//! * **Reduction kernels** (`dot`, `sum`, `sum_squares`,
//!   `squared_distance`) split the accumulation across four lanes (lane
//!   `k` accumulates elements `k, k+4, k+8, …`), combine as
//!   `(l0+l1) + (l2+l3)`, then fold the scalar tail in sequentially. This
//!   reorders floating-point addition relative to a sequential fold, so
//!   results can differ from the scalar reference in the last few ulps
//!   (observed ≲ 1e-15 relative on standardised features). The golden
//!   parity suite (`tests/matrix_parity.rs`) pins the end-to-end effect to
//!   ≤ 1e-12. No FMA contraction is used — every product is rounded before
//!   it is added — so results are identical across targets with and
//!   without hardware FMA.
//!
//! Scalar references for the reduction kernels are kept as `*_scalar`
//! siblings; the proptest suite in this module checks SIMD-vs-scalar
//! equivalence over randomized lengths, including all tails `0..7`.

/// Number of lanes per vector.
pub const LANES: usize = 4;

/// Four `f64` lanes, operated on element-wise.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Load four consecutive values from the head of `s`. The array
    /// conversion compiles to a single unaligned packed load (indexing the
    /// lanes separately leaves per-lane bounds checks that defeat
    /// vectorisation of read-modify-write kernels).
    ///
    /// # Panics
    /// Panics when `s` holds fewer than four elements.
    #[inline(always)]
    pub fn load(s: &[f64]) -> Self {
        let lanes: &[f64; 4] = s[..4].try_into().expect("lane load needs 4 values");
        Self(*lanes)
    }

    /// Store the lanes into the head of `out` (single packed store).
    ///
    /// # Panics
    /// Panics when `out` holds fewer than four elements.
    #[inline(always)]
    pub fn store(self, out: &mut [f64]) {
        let lanes: &mut [f64; 4] = (&mut out[..4])
            .try_into()
            .expect("lane store needs 4 slots");
        *lanes = self.0;
    }

    /// Pairwise horizontal sum `(l0 + l1) + (l2 + l3)`.
    #[inline(always)]
    pub fn horizontal_sum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }
}

macro_rules! impl_lane_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $method(self, o: F64x4) -> F64x4 {
                F64x4([
                    self.0[0] $op o.0[0],
                    self.0[1] $op o.0[1],
                    self.0[2] $op o.0[2],
                    self.0[3] $op o.0[3],
                ])
            }
        }
    };
}

impl_lane_op!(Add, add, +);
impl_lane_op!(Sub, sub, -);
impl_lane_op!(Mul, mul, *);
impl_lane_op!(Div, div, /);

/// Dot product `Σ aᵢ·bᵢ` with four-lane accumulation.
///
/// # Panics
/// Debug-asserts equal lengths; out-of-bounds panics otherwise.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = F64x4::splat(0.0);
    let (a4, a_tail) = a.split_at(a.len() - a.len() % LANES);
    let (b4, b_tail) = b.split_at(a4.len());
    for (ca, cb) in a4.chunks_exact(LANES).zip(b4.chunks_exact(LANES)) {
        acc = acc + F64x4::load(ca) * F64x4::load(cb);
    }
    let mut out = acc.horizontal_sum();
    for (x, y) in a_tail.iter().zip(b_tail) {
        out += x * y;
    }
    out
}

/// Sequential scalar dot product (parity reference).
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum `Σ aᵢ` with four-lane accumulation.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    let mut acc = F64x4::splat(0.0);
    let (a4, tail) = a.split_at(a.len() - a.len() % LANES);
    for c in a4.chunks_exact(LANES) {
        acc = acc + F64x4::load(c);
    }
    let mut out = acc.horizontal_sum();
    for x in tail {
        out += x;
    }
    out
}

/// Sequential scalar sum (parity reference).
#[inline]
pub fn sum_scalar(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Sum of squares `Σ aᵢ²` with four-lane accumulation.
#[inline]
pub fn sum_squares(a: &[f64]) -> f64 {
    let mut acc = F64x4::splat(0.0);
    let (a4, tail) = a.split_at(a.len() - a.len() % LANES);
    for c in a4.chunks_exact(LANES) {
        let v = F64x4::load(c);
        acc = acc + v * v;
    }
    let mut out = acc.horizontal_sum();
    for x in tail {
        out += x * x;
    }
    out
}

/// Squared Euclidean distance `Σ (aᵢ−bᵢ)²` with four-lane accumulation.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = F64x4::splat(0.0);
    let (a4, a_tail) = a.split_at(a.len() - a.len() % LANES);
    let (b4, b_tail) = b.split_at(a4.len());
    for (ca, cb) in a4.chunks_exact(LANES).zip(b4.chunks_exact(LANES)) {
        let d = F64x4::load(ca) - F64x4::load(cb);
        acc = acc + d * d;
    }
    let mut out = acc.horizontal_sum();
    for (x, y) in a_tail.iter().zip(b_tail) {
        out += (x - y) * (x - y);
    }
    out
}

/// True when every element is finite. Vectorised `Σ v·0` probe: the
/// product is `+0` for finite `v` and NaN for `±∞`/NaN, and NaN poisons
/// the lane sums — one multiply-add per element with no serial compare
/// chain.
#[inline]
pub fn all_finite(xs: &[f64]) -> bool {
    let mut acc = F64x4::splat(0.0);
    let zero = F64x4::splat(0.0);
    let (x4, tail) = xs.split_at(xs.len() - xs.len() % LANES);
    for c in x4.chunks_exact(LANES) {
        acc = acc + F64x4::load(c) * zero;
    }
    let mut probe = acc.horizontal_sum();
    for v in tail {
        probe += v * 0.0;
    }
    probe == 0.0
}

/// `y ← y + α·x`, element-wise (bit-identical to the scalar loop).
///
/// Element-wise kernels are deliberately written as plain zips: the
/// auto-vectoriser already emits packed code for them, and measured
/// hand-lane variants (struct round-trips or exact-chunk arrays) ran ~2×
/// slower at n = 4096. Explicit `F64x4` lanes are reserved for the
/// reductions above, where splitting the accumulator changes FP semantics
/// and the compiler cannot do it by itself.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Sequential scalar axpy (parity reference). Written as an indexed loop
/// on purpose — independent of [`axpy`]'s zip formulation — so the
/// bit-identity proptest keeps meaning if `axpy` is ever rewritten with
/// explicit lanes.
#[inline]
pub fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for i in 0..y.len() {
        y[i] += alpha * x[i];
    }
}

/// `y ← y · α`, element-wise (bit-identical to the scalar loop; see
/// [`axpy`] on why element-wise kernels are plain auto-vectorised zips).
#[inline]
pub fn scale(y: &mut [f64], alpha: f64) {
    for yv in y.iter_mut() {
        *yv *= alpha;
    }
}

/// `y ← y / α`, element-wise division (bit-identical to `*yᵢ /= α`; unlike
/// multiplying by `1/α`, this keeps the exact scalar rounding).
#[inline]
pub fn div_assign(y: &mut [f64], alpha: f64) {
    for yv in y.iter_mut() {
        *yv /= alpha;
    }
}

/// `acc ← acc + x`, element-wise (bit-identical to the scalar loop).
#[inline]
pub fn add_assign(acc: &mut [f64], x: &[f64]) {
    debug_assert_eq!(acc.len(), x.len());
    for (av, xv) in acc.iter_mut().zip(x) {
        *av += xv;
    }
}

/// `acc ← acc + (x − m)²`, element-wise (bit-identical): the member-spread
/// and scaler-variance accumulation step.
#[inline]
pub fn accumulate_sq_diff(acc: &mut [f64], x: &[f64], m: &[f64]) {
    debug_assert_eq!(acc.len(), x.len());
    debug_assert_eq!(acc.len(), m.len());
    for ((av, xv), mv) in acc.iter_mut().zip(x).zip(m) {
        *av += (xv - mv) * (xv - mv);
    }
}

/// `row ← (row − m) / s`, element-wise (bit-identical): the z-score
/// transform of [`crate::StandardScaler`].
#[inline]
pub fn standardize(row: &mut [f64], m: &[f64], s: &[f64]) {
    debug_assert_eq!(row.len(), m.len());
    debug_assert_eq!(row.len(), s.len());
    for ((rv, mv), sv) in row.iter_mut().zip(m).zip(s) {
        *rv = (*rv - mv) / sv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
    }

    fn ramp(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 * 0.37 + phase).sin() * 2.5) - 0.3)
            .collect()
    }

    #[test]
    fn reduction_kernels_match_scalar_over_all_tails() {
        // Lengths straddling every tail residue 0..7 and a long buffer.
        for n in (0..16).chain([31, 64, 100, 257]) {
            let a = ramp(n, 0.1);
            let b = ramp(n, 1.7);
            assert!(close(dot(&a, &b), dot_scalar(&a, &b)), "dot len {n}");
            assert!(close(sum(&a), sum_scalar(&a)), "sum len {n}");
            assert!(
                close(sum_squares(&a), a.iter().map(|x| x * x).sum()),
                "sum_squares len {n}"
            );
            let sq: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!(close(squared_distance(&a, &b), sq), "sqdist len {n}");
        }
    }

    #[test]
    fn sum_of_binary_labels_is_exact_in_any_order() {
        // The tree split search relies on 0/1 sums being exact integers no
        // matter how the lanes regroup them.
        for n in [0, 1, 5, 33, 250] {
            let labels: Vec<f64> = (0..n).map(|i| f64::from(u8::from(i % 3 == 0))).collect();
            assert_eq!(sum(&labels), sum_scalar(&labels));
            assert_eq!(
                sum(&labels),
                labels.iter().filter(|&&l| l == 1.0).count() as f64
            );
        }
    }

    #[test]
    fn elementwise_kernels_are_bit_identical_to_scalar() {
        for n in 0..13 {
            let x = ramp(n, 0.4);
            let m = ramp(n, 2.2);
            let s: Vec<f64> = ramp(n, 3.0).iter().map(|v| v.abs() + 0.5).collect();

            let mut y_simd = ramp(n, 5.0);
            let mut y_ref = y_simd.clone();
            axpy(0.77, &x, &mut y_simd);
            axpy_scalar(0.77, &x, &mut y_ref);
            assert_eq!(y_simd, y_ref, "axpy len {n}");

            scale(&mut y_simd, 1.3);
            for v in y_ref.iter_mut() {
                *v *= 1.3;
            }
            assert_eq!(y_simd, y_ref, "scale len {n}");

            div_assign(&mut y_simd, 3.0);
            for v in y_ref.iter_mut() {
                *v /= 3.0;
            }
            assert_eq!(y_simd, y_ref, "div_assign len {n}");

            add_assign(&mut y_simd, &x);
            for (v, xv) in y_ref.iter_mut().zip(&x) {
                *v += xv;
            }
            assert_eq!(y_simd, y_ref, "add_assign len {n}");

            accumulate_sq_diff(&mut y_simd, &x, &m);
            for ((v, xv), mv) in y_ref.iter_mut().zip(&x).zip(&m) {
                *v += (xv - mv) * (xv - mv);
            }
            assert_eq!(y_simd, y_ref, "accumulate_sq_diff len {n}");

            let mut r_simd = ramp(n, 6.0);
            let mut r_ref = r_simd.clone();
            standardize(&mut r_simd, &m, &s);
            for ((rv, mv), sv) in r_ref.iter_mut().zip(&m).zip(&s) {
                *rv = (*rv - mv) / sv;
            }
            assert_eq!(r_simd, r_ref, "standardize len {n}");
        }
    }

    #[test]
    fn all_finite_detects_every_non_finite_lane_and_tail_position() {
        for n in 1..11 {
            let base = ramp(n, 0.9);
            assert!(all_finite(&base), "finite len {n}");
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                for pos in 0..n {
                    let mut xs = base.clone();
                    xs[pos] = bad;
                    assert!(!all_finite(&xs), "len {n} pos {pos} {bad}");
                }
            }
        }
        assert!(all_finite(&[]));
    }

    #[test]
    fn division_kernel_is_not_reciprocal_multiplication() {
        // 1/3 is inexact: dividing must round like the scalar `/=`, not
        // like multiplying by a pre-rounded reciprocal.
        let mut y = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let reference: Vec<f64> = y.iter().map(|v| v / 3.0).collect();
        div_assign(&mut y, 3.0);
        assert_eq!(y, reference);
    }

    #[test]
    fn lane_ops_behave() {
        let a = F64x4::load(&[1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::splat(2.0);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a / b).0, [0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.horizontal_sum(), 10.0);
        let mut out = [0.0; 4];
        a.store(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }
}
