//! Feature standardisation.
//!
//! The weak learners (especially SVMs and Gaussian processes) need features
//! on comparable scales; the scaler is fitted on the training rows only and
//! applied to both train and test rows, exactly as a scikit-learn
//! `StandardScaler` inside a pipeline would be.

use serde::{Deserialize, Serialize};

/// Z-score standardiser fitted per feature column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit the scaler on a set of feature rows.
    ///
    /// # Panics
    /// Panics on empty input or ragged rows.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
        let k = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == k), "ragged feature rows");
        let n = rows.len() as f64;
        let mut means = vec![0.0; k];
        for r in rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; k];
        for r in rows {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(r) {
                *v += (x - m).powi(2);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Number of feature columns the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Transform a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        for ((x, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Transform a batch of rows, returning new rows.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut out = r.clone();
                self.transform_row(&mut out);
                out
            })
            .collect()
    }

    /// Fit on `rows` and return the transformed rows together with the scaler.
    pub fn fit_transform(rows: &[Vec<f64>]) -> (Self, Vec<Vec<f64>>) {
        let scaler = Self::fit(rows);
        let out = scaler.transform(rows);
        (scaler, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardised_columns_have_zero_mean_unit_variance() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 100.0 + 3.0 * i as f64]).collect();
        let (_, out) = StandardScaler::fit_transform(&rows);
        for col in 0..2 {
            let mean: f64 = out.iter().map(|r| r[col]).sum::<f64>() / out.len() as f64;
            let var: f64 = out.iter().map(|r| (r[col] - mean).powi(2)).sum::<f64>() / out.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_is_left_finite() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let (scaler, out) = StandardScaler::fit_transform(&rows);
        assert_eq!(scaler.n_features(), 1);
        assert!(out.iter().all(|r| r[0].is_finite()));
        assert!(out.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn transform_uses_training_statistics() {
        let train = vec![vec![0.0], vec![10.0]];
        let scaler = StandardScaler::fit(&train);
        let test = scaler.transform(&[vec![5.0], vec![15.0]]);
        assert!((test[0][0] - 0.0).abs() < 1e-12);
        assert!(test[1][0] > 1.0);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
