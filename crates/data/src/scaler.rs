//! Feature standardisation.
//!
//! The weak learners (especially SVMs and Gaussian processes) need features
//! on comparable scales; the scaler is fitted on the training rows only and
//! applied to both train and test rows, exactly as a scikit-learn
//! `StandardScaler` inside a pipeline would be.
//!
//! All entry points work on flat [`Matrix`] / [`MatrixView`] batches; the
//! in-place transforms never allocate per row, and both fitting and the
//! z-score transform run on the element-wise `f64x4` kernels of
//! [`crate::simd`] (bit-identical to the scalar loops they replace).

use crate::matrix::{Matrix, MatrixView};
use crate::matrix32::Matrix32;
use crate::{simd, simd32};
use serde::{Deserialize, Serialize};

/// Z-score standardiser fitted per feature column.
///
/// Beyond `means`/`stds`, the scaler carries the sufficient statistics of
/// everything it has seen (`count` rows, per-column sum of squared
/// deviations `m2`), so [`StandardScaler::partial_fit`] can fold further
/// batches in by parallel-moment merging without revisiting old rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
    count: f64,
    m2: Vec<f64>,
}

impl StandardScaler {
    /// Fit the scaler on a batch of feature rows.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn fit(x: MatrixView<'_>) -> Self {
        assert!(!x.is_empty(), "cannot fit a scaler on zero rows");
        let n = x.n_rows() as f64;
        let (means, m2) = batch_moments(x);
        let stds = stds_from_m2(&m2, n);
        Self {
            means,
            stds,
            count: n,
            m2,
        }
    }

    /// Fold a further batch of rows into the fitted statistics by merging
    /// streamed moments (Chan et al.'s parallel update): the batch's own
    /// mean and sum of squared deviations are computed with the exact
    /// two-pass kernels [`StandardScaler::fit`] uses, then merged with the
    /// running statistics in O(columns). The merged mean/std agree with a
    /// fresh fit on the concatenated rows to well below 1e-12 (pinned by
    /// the `scaler_partial_fit` proptest — the existing two-pass fit shows
    /// no drift for it to compensate); they are not guaranteed
    /// bit-identical, which is why the streaming driver's `tolerance = 0`
    /// parity path refits the scaler from scratch instead of merging.
    ///
    /// # Panics
    /// Panics on an empty batch or a width mismatch.
    pub fn partial_fit(&mut self, x: MatrixView<'_>) {
        assert!(!x.is_empty(), "cannot partial-fit a scaler on zero rows");
        assert_eq!(x.n_cols(), self.means.len(), "matrix width mismatch");
        let nb = x.n_rows() as f64;
        let (bmeans, bm2) = batch_moments(x);
        if self.count == 0.0 {
            self.means = bmeans;
            self.m2 = bm2;
            self.count = nb;
        } else {
            let na = self.count;
            let n = na + nb;
            for j in 0..self.means.len() {
                let delta = bmeans[j] - self.means[j];
                self.means[j] = (na * self.means[j] + nb * bmeans[j]) / n;
                // Merged M2 is a sum of non-negative parts; clamp any
                // catastrophic-cancellation residue at zero.
                self.m2[j] = (self.m2[j] + bm2[j] + delta * delta * na * nb / n).max(0.0);
            }
            self.count = n;
        }
        self.stds = stds_from_m2(&self.m2, self.count);
    }

    /// Number of feature columns the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Number of rows folded into the fitted statistics so far.
    pub fn n_samples(&self) -> f64 {
        self.count
    }

    /// The fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The fitted per-column standard deviations (1.0 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transform a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        simd::standardize(row, &self.means, &self.stds);
    }

    /// Transform a whole matrix in place — the zero-clone path used by
    /// training and batch prediction.
    pub fn transform_in_place(&self, x: &mut Matrix) {
        assert_eq!(x.n_cols(), self.means.len(), "matrix width mismatch");
        let k = self.means.len();
        for row in x.as_mut_slice().chunks_exact_mut(k) {
            simd::standardize(row, &self.means, &self.stds);
        }
    }

    /// Transform a borrowed batch, returning a new matrix.
    pub fn transform(&self, x: MatrixView<'_>) -> Matrix {
        let mut out = x.to_matrix();
        self.transform_in_place(&mut out);
        out
    }

    /// Fit on `x` and standardise it in place, returning the scaler and the
    /// transformed matrix (the input buffer is reused, not cloned).
    pub fn fit_transform(mut x: Matrix) -> (Self, Matrix) {
        let scaler = Self::fit(x.view());
        scaler.transform_in_place(&mut x);
        (scaler, x)
    }

    /// Standardise a matrix in place **and** narrow it to the f32 plane in
    /// the same pass, returning the narrowed copy. Per row this performs
    /// exactly `transform_in_place` followed by `Matrix32::from_f64` —
    /// same z-score, same round-to-nearest narrowing — but streams each
    /// cache-resident row once instead of re-walking the whole matrix.
    ///
    /// This is the serving-artifact preparation path: a park's feature
    /// stack is standardised and narrowed **once** at model-load time
    /// (`PreparedPark` in `paws-core`), so repeated risk-map /
    /// response-surface queries pay zero per-call standardise/narrow work
    /// on either precision plane.
    pub fn transform_planes_in_place(&self, x: &mut Matrix) -> Matrix32 {
        assert_eq!(x.n_cols(), self.means.len(), "matrix width mismatch");
        let k = self.means.len();
        let mut narrow = Matrix32::zeros(x.n_rows(), k);
        for (row, out_row) in x
            .as_mut_slice()
            .chunks_exact_mut(k)
            .zip(narrow.as_mut_slice().chunks_exact_mut(k))
        {
            simd::standardize(row, &self.means, &self.stds);
            simd32::narrow(row, out_row);
        }
        narrow
    }

    /// Transform a borrowed f64 batch straight into the f32 prediction
    /// plane: the z-score is computed at full f64 precision with the fitted
    /// statistics, then narrowed once (round-to-nearest). Equivalent to
    /// `Matrix32::from_f64(&self.transform(x))` without the intermediate
    /// f64 matrix.
    pub fn transform_f32(&self, x: MatrixView<'_>) -> Matrix32 {
        assert_eq!(x.n_cols(), self.means.len(), "matrix width mismatch");
        let k = self.means.len();
        let mut out = Matrix32::zeros(x.n_rows(), k);
        let mut scratch = vec![0.0f64; k];
        for (row, out_row) in x.rows().zip(out.as_mut_slice().chunks_exact_mut(k)) {
            scratch.copy_from_slice(row);
            simd::standardize(&mut scratch, &self.means, &self.stds);
            simd32::narrow(&scratch, out_row);
        }
        out
    }
}

/// Two-pass per-column moments of one batch: (means, sum of squared
/// deviations around those means). Shared verbatim by `fit` and
/// `partial_fit` so a single-batch partial fit reproduces a full fit.
fn batch_moments(x: MatrixView<'_>) -> (Vec<f64>, Vec<f64>) {
    let k = x.n_cols();
    let n = x.n_rows() as f64;
    let mut means = vec![0.0; k];
    for r in x.rows() {
        simd::add_assign(&mut means, r);
    }
    simd::div_assign(&mut means, n);
    let mut m2 = vec![0.0; k];
    for r in x.rows() {
        simd::accumulate_sq_diff(&mut m2, r, &means);
    }
    (means, m2)
}

/// Population standard deviations from summed squared deviations, with the
/// constant-column clamp to 1.0.
fn stds_from_m2(m2: &[f64], n: f64) -> Vec<f64> {
    m2.iter()
        .map(|&v| {
            let s = (v / n).sqrt();
            if s < 1e-12 {
                1.0
            } else {
                s
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardised_columns_have_zero_mean_unit_variance() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 100.0 + 3.0 * i as f64])
            .collect();
        let (_, out) = StandardScaler::fit_transform(Matrix::from_rows(&rows));
        for col in 0..2 {
            let mean: f64 = out.rows().map(|r| r[col]).sum::<f64>() / out.n_rows() as f64;
            let var: f64 =
                out.rows().map(|r| (r[col] - mean).powi(2)).sum::<f64>() / out.n_rows() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_is_left_finite() {
        let rows = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let (scaler, out) = StandardScaler::fit_transform(rows);
        assert_eq!(scaler.n_features(), 1);
        assert!(out.rows().all(|r| r[0].is_finite()));
        assert!(out.rows().all(|r| r[0] == 0.0));
    }

    #[test]
    fn transform_uses_training_statistics() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let scaler = StandardScaler::fit(train.view());
        let test = scaler.transform(Matrix::from_rows(&[vec![5.0], vec![15.0]]).view());
        assert!((test.get(0, 0) - 0.0).abs() < 1e-12);
        assert!(test.get(1, 0) > 1.0);
    }

    #[test]
    fn in_place_matches_row_transform() {
        let rows = vec![vec![1.0, -4.0], vec![3.5, 2.0], vec![-2.0, 7.0]];
        let m = Matrix::from_rows(&rows);
        let scaler = StandardScaler::fit(m.view());
        let mut in_place = m.clone();
        scaler.transform_in_place(&mut in_place);
        for (i, r) in rows.iter().enumerate() {
            let mut row = r.clone();
            scaler.transform_row(&mut row);
            assert_eq!(in_place.row(i), row.as_slice());
        }
    }

    #[test]
    fn f32_transform_is_the_narrowed_f64_transform() {
        let rows = vec![vec![1.0, -4.0], vec![3.5, 2.0], vec![-2.0, 7.0]];
        let m = Matrix::from_rows(&rows);
        let scaler = StandardScaler::fit(m.view());
        let wide = scaler.transform(m.view());
        let narrow = scaler.transform_f32(m.view());
        assert_eq!(narrow.n_rows(), 3);
        assert_eq!(narrow.n_cols(), 2);
        for (r32, r64) in narrow.rows().zip(wide.rows()) {
            for (v32, v64) in r32.iter().zip(r64) {
                // The f64 z-score, narrowed once — not a z-score computed
                // in f32 (which would round the mean/std subtraction too).
                assert_eq!(*v32, *v64 as f32);
            }
        }
    }

    #[test]
    fn fused_plane_transform_matches_the_two_pass_reference() {
        let rows: Vec<Vec<f64>> = (0..37)
            .map(|i| {
                vec![
                    i as f64 * 0.37 - 5.0,
                    (i * i) as f64 * 0.011,
                    -3.5 + i as f64,
                ]
            })
            .collect();
        let m = Matrix::from_rows(&rows);
        let scaler = StandardScaler::fit(m.view());
        // Reference: standardise, then narrow as a second full pass.
        let mut wide_ref = m.clone();
        scaler.transform_in_place(&mut wide_ref);
        let narrow_ref = Matrix32::from_f64(wide_ref.view());
        // Fused: one streaming pass produces both planes.
        let mut wide = m.clone();
        let narrow = scaler.transform_planes_in_place(&mut wide);
        assert_eq!(wide.as_slice(), wide_ref.as_slice());
        assert_eq!(narrow.as_slice(), narrow_ref.as_slice());
        // And the narrowed plane equals the dedicated f32 transform.
        let direct32 = scaler.transform_f32(m.view());
        assert_eq!(narrow.as_slice(), direct32.as_slice());
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        StandardScaler::fit(MatrixView::from_flat(&[], 1));
    }

    fn drifting_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                vec![
                    0.37 * i as f64 - 5.0,
                    (i * i) as f64 * 0.011,
                    (-1.0f64).powi(i as i32) * (3.0 + i as f64 * 0.01),
                ]
            })
            .collect()
    }

    #[test]
    fn partial_fit_merge_matches_full_fit() {
        let rows = drifting_rows(101);
        let full = StandardScaler::fit(Matrix::from_rows(&rows).view());
        let mut merged = StandardScaler::fit(Matrix::from_rows(&rows[..40]).view());
        merged.partial_fit(Matrix::from_rows(&rows[40..41]).view());
        merged.partial_fit(Matrix::from_rows(&rows[41..]).view());
        assert_eq!(merged.n_samples(), 101.0);
        for j in 0..3 {
            assert!((merged.means()[j] - full.means()[j]).abs() < 1e-12);
            assert!((merged.stds()[j] - full.stds()[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_fit_keeps_constant_column_clamp() {
        let a = Matrix::from_rows(&[vec![5.0], vec![5.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let mut scaler = StandardScaler::fit(a.view());
        scaler.partial_fit(b.view());
        assert_eq!(scaler.stds(), &[1.0]);
        assert_eq!(scaler.means(), &[5.0]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_partial_fit_panics() {
        let mut scaler = StandardScaler::fit(Matrix::from_rows(&[vec![1.0], vec![2.0]]).view());
        scaler.partial_fit(MatrixView::from_flat(&[], 1));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_partial_fit_panics() {
        let mut scaler = StandardScaler::fit(Matrix::from_rows(&[vec![1.0], vec![2.0]]).view());
        scaler.partial_fit(MatrixView::from_flat(&[1.0, 2.0], 2));
    }
}
