//! Contiguous row-major feature matrices.
//!
//! The predictive stack (weak learners, bagging, iWare-E, park-wide
//! response evaluation) previously passed features as `Vec<Vec<f64>>`:
//! every row a separate heap allocation, every bootstrap or effort-filtered
//! subset a fresh set of row clones. [`Matrix`] stores all rows in one flat
//! `Vec<f64>` so batch kernels stream cache-line-contiguous data, and
//! subsets are taken with [`Matrix::gather`] — one allocation and a
//! row-by-row memcpy instead of per-row clones.
//!
//! [`MatrixView`] is the borrowed counterpart (a `&[f64]` plus the column
//! count); it is `Copy`, so passing feature batches through `fit`/`predict`
//! signatures never clones data.

use serde::{Deserialize, Serialize, Value};

/// Owned, contiguous, row-major matrix of `f64` features.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    n_cols: usize,
}

impl Matrix {
    /// Empty matrix with the given column count.
    pub fn new(n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        Self {
            data: Vec::new(),
            n_cols,
        }
    }

    /// Empty matrix with capacity reserved for `n_rows` rows.
    pub fn with_capacity(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        Self {
            data: Vec::with_capacity(n_rows * n_cols),
            n_cols,
        }
    }

    /// Zero-filled `n_rows × n_cols` matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        Self {
            data: vec![0.0; n_rows * n_cols],
            n_cols,
        }
    }

    /// Take ownership of a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when the buffer length is not a multiple of `n_cols`.
    pub fn from_flat(data: Vec<f64>, n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        assert!(
            data.len().is_multiple_of(n_cols),
            "flat buffer length {} is not a multiple of the column count {}",
            data.len(),
            n_cols
        );
        Self { data, n_cols }
    }

    /// Copy nested rows into a flat matrix.
    ///
    /// # Panics
    /// Panics on empty input or ragged feature rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let n_cols = rows[0].len();
        assert!(n_cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == n_cols),
            "ragged feature rows"
        );
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self { data, n_cols }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_cols
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Element at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n_cols + col]
    }

    /// Iterator over row slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols)
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics when the row width does not match the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_cols, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Append every row of a borrowed batch — the streaming-append
    /// primitive. One `extend_from_slice` on the flat buffer, so a matrix
    /// grown batch-by-batch is byte-identical to one built in a single
    /// pass over the concatenated rows.
    ///
    /// # Panics
    /// Panics when the batch width does not match the column count.
    pub fn extend_rows(&mut self, rows: MatrixView<'_>) {
        assert_eq!(rows.n_cols(), self.n_cols, "row width mismatch");
        self.data.extend_from_slice(rows.as_slice());
    }

    /// New matrix holding rows `idx` (in order, repeats allowed) — the
    /// index-based replacement for cloning row subsets.
    pub fn gather(&self, idx: &[usize]) -> Matrix {
        self.view().gather(idx)
    }

    /// Borrowed view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            data: &self.data,
            n_cols: self.n_cols,
        }
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat row-major buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Copy into nested rows (boundary adapter for row-oriented consumers).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

impl Serialize for Matrix {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n_cols".to_string(), self.n_cols.to_value()),
            ("data".to_string(), self.data.to_value()),
        ])
    }
}

impl Deserialize for Matrix {}

/// Borrowed row-major matrix view: the argument type of every `fit` /
/// `predict` in the predictive stack.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    n_cols: usize,
}

impl<'a> MatrixView<'a> {
    /// View over a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when the buffer length is not a multiple of `n_cols`.
    pub fn from_flat(data: &'a [f64], n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        assert!(
            data.len().is_multiple_of(n_cols),
            "flat buffer length {} is not a multiple of the column count {}",
            data.len(),
            n_cols
        );
        Self { data, n_cols }
    }

    /// View of a single row (no copy).
    pub fn single_row(row: &'a [f64]) -> Self {
        assert!(!row.is_empty(), "matrix needs at least one column");
        Self {
            data: row,
            n_cols: row.len(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_cols
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Element at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n_cols + col]
    }

    /// Iterator over row slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &'a [f64]> {
        self.data.chunks_exact(self.n_cols)
    }

    /// First `n` rows as a sub-view (no copy).
    pub fn head(&self, n: usize) -> MatrixView<'a> {
        MatrixView {
            data: &self.data[..n * self.n_cols],
            n_cols: self.n_cols,
        }
    }

    /// Owned matrix holding rows `idx` (in order, repeats allowed).
    pub fn gather(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.n_cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            n_cols: self.n_cols,
        }
    }

    /// Copy into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix {
            data: self.data.to_vec(),
            n_cols: self.n_cols,
        }
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }
}

impl<'a> From<&'a Matrix> for MatrixView<'a> {
    fn from(m: &'a Matrix) -> Self {
        m.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn shape_and_row_access() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.rows().count(), 3);
    }

    #[test]
    fn gather_matches_cloned_rows() {
        let m = sample();
        let idx = [2usize, 0, 2];
        let g = m.gather(&idx);
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.row(0), m.row(2));
        assert_eq!(g.row(1), m.row(0));
        assert_eq!(g.row(2), m.row(2));
    }

    #[test]
    fn push_row_appends() {
        let mut m = Matrix::new(2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn view_head_and_single_row() {
        let m = sample();
        let v = m.view().head(2);
        assert_eq!(v.n_rows(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let one = MatrixView::single_row(&[7.0, 8.0]);
        assert_eq!(one.n_rows(), 1);
        assert_eq!(one.n_cols(), 2);
    }

    #[test]
    fn round_trips_with_nested_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = Matrix::from_rows(&rows);
        assert_eq!(m.to_rows(), rows);
        let back = Matrix::from_flat(m.as_slice().to_vec(), 2);
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_rejects_wrong_width() {
        let mut m = Matrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of the column count")]
    fn from_flat_rejects_partial_rows() {
        let _ = Matrix::from_flat(vec![1.0, 2.0, 3.0], 2);
    }
}
