//! Property tests of the streaming ingest substrate:
//!
//! * [`StandardScaler::partial_fit`] — streaming Chan moment merges over
//!   any batch split agree with the one-shot fit within 1e-12 relative on
//!   every mean and std.
//! * [`Dataset::append_observations`] — replaying a history batch-by-batch
//!   (any step-aligned chunking) rebuilds the one-shot dataset
//!   **bit-identically**, and malformed appends are typed rejections that
//!   leave the dataset untouched.

use paws_data::{
    build_dataset, AppendError, Dataset, Discretization, Matrix, MatrixView, StandardScaler,
};
use paws_geo::parks::test_park_spec;
use paws_geo::Park;
use paws_sim::{patrol_log_batches, presets::test_sim_config, AttackModelConfig, PoacherModel};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic pseudo-random matrix derived from the sampled phase.
fn wave_matrix(n_rows: usize, n_cols: usize, phase: f64) -> Matrix {
    let mut m = Matrix::new(n_cols);
    for i in 0..n_rows {
        let row: Vec<f64> = (0..n_cols)
            .map(|j| ((i * n_cols + j) as f64 * 0.731 + phase).sin() * 4.0 - 0.9)
            .collect();
        m.push_row(&row);
    }
    m
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

fn setup_park(seed: u64) -> (Park, PoacherModel) {
    let park = Park::generate(&test_park_spec(), seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(17));
    let model = PoacherModel::new(&park, AttackModelConfig::default(), &mut rng);
    (park, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partial_fit_over_any_split_matches_the_one_shot_fit(
        rows_f in 8.0..200.0f64,
        cols_f in 1.0..6.0f64,
        phase in 0.0..6.2f64,
        cut_a in 0.0..1.0f64,
        cut_b in 0.0..1.0f64,
    ) {
        let n_rows = rows_f as usize;
        let n_cols = cols_f as usize;
        let full = wave_matrix(n_rows, n_cols, phase);
        let one_shot = StandardScaler::fit(full.view());

        // Split into up to three non-empty batches at the sampled cuts.
        let mut cuts = [
            1 + (cut_a * (n_rows - 1) as f64) as usize,
            1 + (cut_b * (n_rows - 1) as f64) as usize,
        ];
        cuts.sort_unstable();
        let mut bounds = vec![0, cuts[0], cuts[1], n_rows];
        bounds.dedup();

        let batch_of = |a: usize, b: usize| {
            MatrixView::from_flat(&full.as_slice()[a * n_cols..b * n_cols], n_cols)
        };
        let mut streamed = StandardScaler::fit(batch_of(bounds[0], bounds[1]));
        for pair in bounds[1..].windows(2) {
            streamed.partial_fit(batch_of(pair[0], pair[1]));
        }

        prop_assert!(close(streamed.n_samples(), n_rows as f64));
        for j in 0..n_cols {
            prop_assert!(
                close(streamed.means()[j], one_shot.means()[j]),
                "mean {j}: streamed {} vs one-shot {}",
                streamed.means()[j],
                one_shot.means()[j]
            );
            prop_assert!(
                close(streamed.stds()[j], one_shot.stds()[j]),
                "std {j}: streamed {} vs one-shot {}",
                streamed.stds()[j],
                one_shot.stds()[j]
            );
        }
    }

    #[test]
    fn appending_step_aligned_batches_rebuilds_the_dataset_bit_identically(
        seed_f in 0.0..200.0f64,
        years_f in 1.0..3.0f64,
        batch_f in 0.0..3.0f64,
    ) {
        let seed = seed_f as u64;
        let years = years_f as u32;
        // Quarterly steps: any multiple of 3 months keeps batch boundaries
        // on step boundaries.
        let months_per_batch = [3usize, 6, 12][(batch_f as usize).min(2)];
        let (park, model) = setup_park(seed);
        let config = test_sim_config();
        let full_batches =
            patrol_log_batches(&park, &model, &config, 2014, years, seed, months_per_batch);

        // One-shot: the dataset over the concatenated history.
        let mut stitched = full_batches[0].clone();
        for b in &full_batches[1..] {
            stitched.months.extend(b.months.iter().cloned());
        }
        let one_shot = build_dataset(&park, &stitched, Discretization::quarterly());

        // Streamed: build on batch 1, append the rest chronologically.
        let mut streamed = build_dataset(&park, &full_batches[0], Discretization::quarterly());
        for b in &full_batches[1..] {
            streamed
                .append_observations(&park, b)
                .expect("chronological step-aligned batches append");
        }

        prop_assert!(
            streamed == one_shot,
            "streamed dataset diverged from one-shot build (seed {seed}, {months_per_batch} months/batch)"
        );

        // Replaying the final batch is out of order and must not mutate.
        let before = streamed.clone();
        let last = &full_batches[full_batches.len() - 1];
        prop_assert!(matches!(
            streamed.append_observations(&park, last),
            Err(AppendError::OutOfOrderStep { .. })
        ));
        prop_assert!(streamed == before, "rejected append mutated the dataset");
    }
}

fn small_dataset() -> (Park, Dataset) {
    let (park, model) = setup_park(5);
    let config = test_sim_config();
    let history = paws_sim::history::simulate_history(&park, &model, &config, 2014, 1, 5);
    let dataset = build_dataset(&park, &history, Discretization::quarterly());
    (park, dataset)
}

#[test]
fn append_rows_rejects_wrong_width_without_mutating() {
    let (_, mut dataset) = small_dataset();
    let before = dataset.clone();
    let rows = Matrix::from_rows(&[vec![1.0; dataset.n_features() + 1]]);
    assert!(matches!(
        dataset.append_rows(rows.view(), &[]),
        Err(AppendError::WrongWidth { .. })
    ));
    assert_eq!(dataset, before);
}

#[test]
fn append_rows_rejects_non_finite_without_mutating() {
    let (_, mut dataset) = small_dataset();
    let before = dataset.clone();
    let mut row = vec![0.5; dataset.n_features()];
    row[0] = f64::NAN;
    let rows = Matrix::from_rows(&[row]);
    let point = dataset.points[0].clone();
    assert!(matches!(
        dataset.append_rows(rows.view(), &[point]),
        Err(AppendError::NonFinite { row: 0 })
    ));
    assert_eq!(dataset, before);
}

#[test]
fn append_rows_rejects_row_point_mismatch_and_bad_cells() {
    let (_, mut dataset) = small_dataset();
    let before = dataset.clone();
    let rows = Matrix::from_rows(&[vec![0.5; dataset.n_features()]]);
    assert!(matches!(
        dataset.append_rows(rows.view(), &[]),
        Err(AppendError::LengthMismatch { rows: 1, points: 0 })
    ));
    let mut bad = dataset.points[0].clone();
    bad.cell_idx = dataset.n_cells + 7;
    assert!(matches!(
        dataset.append_rows(rows.view(), &[bad]),
        Err(AppendError::CellOutOfRange { .. })
    ));
    assert_eq!(dataset, before);
}

#[test]
fn append_observations_rejects_a_foreign_park() {
    let (_, mut dataset) = small_dataset();
    // A differently-named (and differently-sized) park whose history can
    // never extend this dataset.
    let mut spec = test_park_spec();
    spec.name = "OtherPark".to_string();
    spec.target_cells = 400;
    let other_park = Park::generate(&spec, 99);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let other_model = PoacherModel::new(&other_park, AttackModelConfig::default(), &mut rng);
    let config = test_sim_config();
    let history =
        paws_sim::history::simulate_history(&other_park, &other_model, &config, 2015, 1, 99);
    let before = dataset.clone();
    assert!(matches!(
        dataset.append_observations(&other_park, &history),
        Err(AppendError::ParkMismatch)
    ));
    assert_eq!(dataset, before);
}
