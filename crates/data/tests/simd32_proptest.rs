//! Property tests for the `f32x8` kernel layer, mirroring
//! `simd_proptest.rs` and adding the cross-plane check the f32 prediction
//! plane rests on: every f32 kernel agrees with the **f64 reference
//! kernel** evaluated on the same (widened) inputs within the documented
//! single-precision envelope.
//!
//! * f32 reduction kernels vs their sequential f32 scalar references —
//!   lane-regrouping parity, every tail residue `0..16` exercised.
//! * f32 element-wise `axpy` vs its scalar loop — **bit-identical**.
//! * f32 kernels vs f64 kernels on widened inputs — relative error within
//!   `n · ε₃₂`-scaled bounds (the narrowing contract of the plane).

use paws_data::{simd, simd32};
use proptest::prelude::*;

/// Deterministic pseudo-random f32 vector derived from the sampled phase.
fn wave32(n: usize, freq: f32, phase: f32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f32 * freq + phase).sin() * 3.0) - 0.7)
        .collect()
}

fn widen(xs: &[f32]) -> Vec<f64> {
    xs.iter().map(|&v| f64::from(v)).collect()
}

fn close32(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * a.abs().max(b.abs()).max(1.0)
}

/// f32 result vs f64 reference: an f32 kernel over `n` elements carries at
/// most ~n rounding steps of 2⁻²⁴ each on the accumulator.
fn close_cross(a32: f32, a64: f64, n: usize) -> bool {
    let scale = a64.abs().max(1.0);
    (f64::from(a32) - a64).abs() <= (n as f64 + 8.0) * f64::from(f32::EPSILON) * scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduction_kernels_match_scalar_over_all_tail_residues(
        base in 0.0..96.0f64,
        phase in 0.0..6.2f64,
    ) {
        // Cover every tail residue 0..16 around the sampled base length.
        for tail in 0..16usize {
            let n = base as usize + tail;
            let a = wave32(n, 0.731, phase as f32);
            let b = wave32(n, 1.137, phase as f32 + 1.3);

            prop_assert!(
                close32(simd32::dot(&a, &b), simd32::dot_scalar(&a, &b)),
                "dot len {n}"
            );
            prop_assert!(
                close32(simd32::sum(&a), simd32::sum_scalar(&a)),
                "sum len {n}"
            );
            let sq_ref: f32 = a.iter().map(|x| x * x).sum();
            prop_assert!(close32(simd32::sum_squares(&a), sq_ref), "sum_squares len {n}");
            let dist_ref: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            prop_assert!(
                close32(simd32::squared_distance(&a, &b), dist_ref),
                "squared_distance len {n}"
            );
        }
    }

    #[test]
    fn f32_kernels_track_the_f64_kernels_on_widened_inputs(
        base in 0.0..96.0f64,
        phase in 0.0..6.2f64,
    ) {
        // The cross-plane contract: each f32 kernel is the f64 kernel plus
        // bounded single-precision rounding — the property that lets the
        // prediction plane document a divergence bound at all.
        for tail in [0usize, 3, 7, 11, 15] {
            let n = base as usize + tail;
            let a = wave32(n, 0.919, phase as f32);
            let b = wave32(n, 1.373, phase as f32 + 0.4);
            let (wa, wb) = (widen(&a), widen(&b));

            prop_assert!(
                close_cross(simd32::dot(&a, &b), simd::dot(&wa, &wb), n),
                "dot len {n}"
            );
            prop_assert!(
                close_cross(simd32::sum(&a), simd::sum(&wa), n),
                "sum len {n}"
            );
            prop_assert!(
                close_cross(simd32::sum_squares(&a), simd::sum_squares(&wa), n),
                "sum_squares len {n}"
            );
            prop_assert!(
                close_cross(
                    simd32::squared_distance(&a, &b),
                    simd::squared_distance(&wa, &wb),
                    n
                ),
                "squared_distance len {n}"
            );

            // Element-wise: axpy in f32 vs f64, element by element.
            let mut y32 = wave32(n, 0.611, phase as f32 + 2.0);
            let mut y64 = widen(&y32);
            simd32::axpy(0.77, &a, &mut y32);
            simd::axpy(f64::from(0.77f32), &wa, &mut y64);
            for (v32, v64) in y32.iter().zip(&y64) {
                prop_assert!(
                    (f64::from(*v32) - v64).abs()
                        <= 4.0 * f64::from(f32::EPSILON) * v64.abs().max(1.0),
                    "axpy element diverged: {v32} vs {v64}"
                );
            }
        }
    }

    #[test]
    fn axpy_is_bit_identical_to_scalar_over_all_tail_residues(
        base in 0.0..96.0f64,
        phase in 0.0..6.2f64,
        alpha in -2.5..2.5f64,
    ) {
        for tail in 0..16usize {
            let n = base as usize + tail;
            let x = wave32(n, 0.919, phase as f32);
            let mut y_simd = wave32(n, 1.373, phase as f32 + 0.4);
            let mut y_ref = y_simd.clone();
            simd32::axpy(alpha as f32, &x, &mut y_simd);
            simd32::axpy_scalar(alpha as f32, &x, &mut y_ref);
            prop_assert!(y_simd == y_ref, "axpy len {n} diverged");
        }
    }

    #[test]
    fn binary_label_sums_are_exact_for_any_length(base in 0.0..512.0f64, phase in 0.0..6.2f64) {
        // 0/1 sums stay exact integers under f32 lane regrouping (counts
        // ≪ 2²⁴, the f32 integer-exactness limit).
        let n = base as usize;
        let labels: Vec<f32> = (0..n)
            .map(|i| f32::from(u8::from(((i as f32 * 0.37 + phase as f32).sin()) > 0.2)))
            .collect();
        let expected = labels.iter().filter(|&&l| l == 1.0).count() as f32;
        prop_assert!(simd32::sum(&labels) == expected);
        prop_assert!(simd32::sum(&labels) == simd32::sum_scalar(&labels));
    }

    #[test]
    fn narrow_widen_round_trip_preserves_f32_values(
        base in 0.0..64.0f64,
        phase in 0.0..6.2f64,
    ) {
        let n = base as usize + 5;
        let src: Vec<f64> = (0..n).map(|i| ((i as f64 * 0.547 + phase).sin()) * 40.0).collect();
        let mut narrowed = vec![0.0f32; n];
        simd32::narrow(&src, &mut narrowed);
        let mut widened = vec![0.0f64; n];
        simd32::widen(&narrowed, &mut widened);
        for ((s, nv), w) in src.iter().zip(&narrowed).zip(&widened) {
            prop_assert!((*s as f32) == *nv, "narrow is round-to-nearest");
            prop_assert!(f64::from(*nv) == *w, "widen is exact");
            prop_assert!((w - s).abs() <= s.abs().max(1.0) * f64::from(f32::EPSILON));
        }
    }
}
