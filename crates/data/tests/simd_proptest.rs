//! Property tests: the `f64x4` reduction kernels agree with their
//! sequential scalar references over randomized contents and lengths, and
//! every scalar-tail residue `0..8` is exercised on every case (the tail
//! loop is where a lane-split kernel classically goes wrong).
//!
//! Reduction kernels (`dot`, `sum`, `sum_squares`, `squared_distance`)
//! regroup the accumulation across lanes, so they are compared within the
//! documented ≤ 1e-12 relative envelope; the element-wise kernel (`axpy`)
//! must be **bit-identical** to its scalar loop.

use paws_data::simd;
use proptest::prelude::*;

/// Deterministic pseudo-random vector derived from the sampled phase.
fn wave(n: usize, freq: f64, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * freq + phase).sin() * 3.0) - 0.7)
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduction_kernels_match_scalar_over_all_tail_residues(
        base in 0.0..96.0f64,
        phase in 0.0..6.2f64,
    ) {
        // Cover every tail residue 0..8 around the sampled base length
        // (lengths 0..7 themselves appear when base < 1).
        for tail in 0..8usize {
            let n = base as usize + tail;
            let a = wave(n, 0.731, phase);
            let b = wave(n, 1.137, phase + 1.3);

            prop_assert!(
                close(simd::dot(&a, &b), simd::dot_scalar(&a, &b)),
                "dot len {n}"
            );
            prop_assert!(
                close(simd::sum(&a), simd::sum_scalar(&a)),
                "sum len {n}"
            );
            let sq_ref: f64 = a.iter().map(|x| x * x).sum();
            prop_assert!(close(simd::sum_squares(&a), sq_ref), "sum_squares len {n}");
            let dist_ref: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            prop_assert!(
                close(simd::squared_distance(&a, &b), dist_ref),
                "squared_distance len {n}"
            );
        }
    }

    #[test]
    fn axpy_is_bit_identical_to_scalar_over_all_tail_residues(
        base in 0.0..96.0f64,
        phase in 0.0..6.2f64,
        alpha in -2.5..2.5f64,
    ) {
        for tail in 0..8usize {
            let n = base as usize + tail;
            let x = wave(n, 0.919, phase);
            let mut y_simd = wave(n, 1.373, phase + 0.4);
            let mut y_ref = y_simd.clone();
            simd::axpy(alpha, &x, &mut y_simd);
            simd::axpy_scalar(alpha, &x, &mut y_ref);
            prop_assert!(y_simd == y_ref, "axpy len {n} diverged");
        }
    }

    #[test]
    fn binary_label_sums_are_exact_for_any_length(base in 0.0..512.0f64, phase in 0.0..6.2f64) {
        // The tree split search relies on 0/1 sums being exact integers
        // regardless of lane regrouping.
        let n = base as usize;
        let labels: Vec<f64> = (0..n)
            .map(|i| f64::from(u8::from(((i as f64 * 0.37 + phase).sin()) > 0.2)))
            .collect();
        let expected = labels.iter().filter(|&&l| l == 1.0).count() as f64;
        prop_assert!(simd::sum(&labels) == expected);
        prop_assert!(simd::sum(&labels) == simd::sum_scalar(&labels));
    }
}
