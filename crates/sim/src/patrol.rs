//! Ranger patrol simulator.
//!
//! Real patrols start from patrol posts, follow terrain and access routes,
//! and record GPS waypoints roughly every 30 minutes; their spatial coverage
//! is uneven (Fig. 3), which is the main source of bias in the historical
//! datasets. The simulator reproduces that process: post-anchored biased
//! random walks over the in-park 8-neighbourhood, a configurable total
//! length, and waypoints emitted at a fixed distance interval (sparser for
//! motorbike patrols, as in SWS).

use paws_geo::{CellId, FeatureKind, Park};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A GPS fix recorded by a ranger team during one patrol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Cell the fix falls in.
    pub cell: CellId,
    /// Distance along the patrol at which the fix was recorded, in km.
    pub km_from_start: f64,
}

/// One simulated ranger patrol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Patrol {
    /// Patrol post (start and nominal end of the patrol).
    pub post: CellId,
    /// Waypoints in chronological order, including the start cell.
    pub waypoints: Vec<Waypoint>,
    /// True kilometres travelled through each visited cell
    /// (`(in-park cell index, km)` pairs). Detection uses this; the dataset
    /// pipeline only sees the sparser `waypoints`.
    pub true_effort: Vec<(usize, f64)>,
}

/// Mode of transport; controls speed (km per outing) and waypoint sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// Foot patrols (MFNP, QENP).
    Foot,
    /// Motorbike patrols (SWS): longer distances, sparser waypoints, lower
    /// per-km detection.
    Motorbike,
}

/// Configuration of the patrol simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatrolConfig {
    /// Number of patrols launched per simulated month.
    pub patrols_per_month: usize,
    /// Length of each patrol in km.
    pub patrol_length_km: f64,
    /// Distance between recorded waypoints in km (≈ 30 minutes of travel).
    pub waypoint_interval_km: f64,
    /// Strength of the pull back towards the patrol post (creates the
    /// uneven, post-centred coverage of Fig. 3). 0 = unbiased walk.
    pub post_bias: f64,
    /// Strength of the rangers' preference for high animal-density areas
    /// (their expert intuition about worthwhile patrol targets).
    pub risk_seeking: f64,
    /// Mode of transport.
    pub transport: Transport,
}

impl Default for PatrolConfig {
    fn default() -> Self {
        Self {
            patrols_per_month: 20,
            patrol_length_km: 10.0,
            waypoint_interval_km: 1.5,
            post_bias: 0.25,
            risk_seeking: 0.8,
            transport: Transport::Foot,
        }
    }
}

/// Simulate all patrols for one month from the park's patrol posts.
pub fn simulate_month<R: Rng>(park: &Park, config: &PatrolConfig, rng: &mut R) -> Vec<Patrol> {
    assert!(!park.patrol_posts.is_empty(), "park has no patrol posts");
    (0..config.patrols_per_month)
        .map(|_| {
            let post = park.patrol_posts[rng.gen_range(0..park.patrol_posts.len())];
            simulate_patrol(park, post, config, None, rng)
        })
        .collect()
}

/// Simulate a single patrol. When `target` is given the walk is pulled
/// towards that cell first (used by the field-test protocol, where rangers
/// are asked to focus on the centre of a recommended block).
pub fn simulate_patrol<R: Rng>(
    park: &Park,
    post: CellId,
    config: &PatrolConfig,
    target: Option<CellId>,
    rng: &mut R,
) -> Patrol {
    assert!(park.contains(post), "patrol post must be inside the park");
    let animal = park.features.column(FeatureKind::AnimalDensity);
    let mut current = post;
    let mut travelled = 0.0_f64;
    let mut next_waypoint_at = 0.0_f64;
    let mut waypoints = vec![Waypoint {
        cell: current,
        km_from_start: 0.0,
    }];
    next_waypoint_at += config.waypoint_interval_km;
    let mut effort: Vec<f64> = vec![0.0; park.n_cells()];
    let mut prev: Option<CellId> = None;

    while travelled < config.patrol_length_km {
        let neighbours = park.park_neighbours(current);
        if neighbours.is_empty() {
            break;
        }
        // Weight candidate moves: pull towards post (or target), prefer
        // attractive cells, avoid immediately backtracking.
        let weights: Vec<f64> = neighbours
            .iter()
            .map(|(n, _)| {
                let anchor = target.unwrap_or(post);
                let d_anchor = park.grid.distance_km(*n, anchor);
                let pull = (-config.post_bias * d_anchor / 5.0).exp();
                let attract = animal
                    .map(|col| (config.risk_seeking * col[n.index()]).exp())
                    .unwrap_or(1.0);
                let backtrack = if Some(*n) == prev { 0.2 } else { 1.0 };
                (pull * attract * backtrack).max(1e-9)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let (next, step) = neighbours[chosen];

        // Split the step's km between the two cells it touches.
        let here_idx = park
            .cell_position(current)
            .expect("current cell is in park");
        let next_idx = park.cell_position(next).expect("next cell is in park");
        effort[here_idx] += step / 2.0;
        effort[next_idx] += step / 2.0;

        travelled += step;
        prev = Some(current);
        current = next;

        while travelled >= next_waypoint_at {
            waypoints.push(Waypoint {
                cell: current,
                km_from_start: next_waypoint_at,
            });
            next_waypoint_at += config.waypoint_interval_km;
        }
    }

    let true_effort: Vec<(usize, f64)> = effort
        .iter()
        .enumerate()
        .filter(|(_, &e)| e > 0.0)
        .map(|(i, &e)| (i, e))
        .collect();

    Patrol {
        post,
        waypoints,
        true_effort,
    }
}

/// Aggregate the true per-cell effort (km) of a set of patrols into a dense
/// vector over in-park cell indices.
pub fn effort_map(park: &Park, patrols: &[Patrol]) -> Vec<f64> {
    let mut effort = vec![0.0; park.n_cells()];
    for p in patrols {
        for &(idx, km) in &p.true_effort {
            effort[idx] += km;
        }
    }
    effort
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_geo::parks::test_park_spec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn park() -> Park {
        Park::generate(&test_park_spec(), 7)
    }

    #[test]
    fn patrol_stays_inside_park() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = PatrolConfig::default();
        for _ in 0..5 {
            let p = simulate_patrol(&park, park.patrol_posts[0], &config, None, &mut rng);
            for w in &p.waypoints {
                assert!(park.contains(w.cell));
            }
        }
    }

    #[test]
    fn patrol_total_effort_close_to_length() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = PatrolConfig::default();
        let p = simulate_patrol(&park, park.patrol_posts[0], &config, None, &mut rng);
        let total: f64 = p.true_effort.iter().map(|(_, km)| km).sum();
        assert!(total >= config.patrol_length_km - 0.01);
        assert!(total <= config.patrol_length_km + 2.0);
    }

    #[test]
    fn waypoints_are_ordered_and_spaced() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let config = PatrolConfig {
            waypoint_interval_km: 2.0,
            patrol_length_km: 12.0,
            ..PatrolConfig::default()
        };
        let p = simulate_patrol(&park, park.patrol_posts[1], &config, None, &mut rng);
        assert!(p.waypoints.len() >= 2);
        for pair in p.waypoints.windows(2) {
            assert!(pair[1].km_from_start > pair[0].km_from_start);
            assert!((pair[1].km_from_start - pair[0].km_from_start - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn first_waypoint_is_the_post() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = simulate_patrol(
            &park,
            park.patrol_posts[2],
            &PatrolConfig::default(),
            None,
            &mut rng,
        );
        assert_eq!(p.waypoints[0].cell, p.post);
        assert_eq!(p.waypoints[0].km_from_start, 0.0);
    }

    #[test]
    fn monthly_simulation_launches_configured_patrols() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let config = PatrolConfig {
            patrols_per_month: 7,
            ..PatrolConfig::default()
        };
        let patrols = simulate_month(&park, &config, &mut rng);
        assert_eq!(patrols.len(), 7);
    }

    #[test]
    fn effort_map_sums_patrol_effort() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let config = PatrolConfig::default();
        let patrols = simulate_month(&park, &config, &mut rng);
        let map = effort_map(&park, &patrols);
        let total_map: f64 = map.iter().sum();
        let total_patrols: f64 = patrols
            .iter()
            .flat_map(|p| p.true_effort.iter().map(|(_, km)| km))
            .sum();
        assert!((total_map - total_patrols).abs() < 1e-9);
    }

    #[test]
    fn targeted_patrol_reaches_neighbourhood_of_target() {
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // Pick a target reasonably far from the post.
        let post = park.patrol_posts[0];
        let target = *park
            .cells
            .iter()
            .max_by(|a, b| {
                park.grid
                    .distance_km(post, **a)
                    .total_cmp(&park.grid.distance_km(post, **b))
            })
            .unwrap();
        let config = PatrolConfig {
            patrol_length_km: 60.0,
            post_bias: 2.0,
            risk_seeking: 0.0,
            ..PatrolConfig::default()
        };
        let p = simulate_patrol(&park, post, &config, Some(target), &mut rng);
        let min_dist = p
            .waypoints
            .iter()
            .map(|w| park.grid.distance_km(w.cell, target))
            .fold(f64::INFINITY, f64::min);
        let start_dist = park.grid.distance_km(post, target);
        assert!(
            min_dist < start_dist,
            "targeted walk never approached the target"
        );
    }

    #[test]
    fn coverage_is_spatially_biased_towards_posts() {
        // The central bias mechanism of the paper: historical effort is
        // concentrated near posts.
        let park = park();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let config = PatrolConfig {
            patrols_per_month: 60,
            post_bias: 1.0,
            ..PatrolConfig::default()
        };
        let patrols = simulate_month(&park, &config, &mut rng);
        let map = effort_map(&park, &patrols);
        let dist_post: Vec<f64> = park
            .cells
            .iter()
            .map(|c| {
                park.patrol_posts
                    .iter()
                    .map(|p| park.grid.distance_km(*c, *p))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let near: Vec<usize> = (0..park.n_cells())
            .filter(|&i| dist_post[i] <= 3.0)
            .collect();
        let far: Vec<usize> = (0..park.n_cells())
            .filter(|&i| dist_post[i] >= 8.0)
            .collect();
        let mean =
            |idx: &[usize]| idx.iter().map(|&i| map[i]).sum::<f64>() / idx.len().max(1) as f64;
        assert!(
            mean(&near) > mean(&far),
            "effort should concentrate near posts"
        );
    }
}
