//! Ground-truth poacher behaviour model.
//!
//! The real datasets record where rangers *found* snares; the underlying
//! attack process is unobserved. For the reproduction we need a ground truth
//! to (a) generate historical observations with exactly the biases the paper
//! describes and (b) score patrol plans and field tests against the true
//! attack distribution. The model is a boundedly-rational response in the
//! Green Security Game sense: attack probability is a logistic function of
//! landscape attractiveness (animal density, accessibility from the boundary,
//! roads and villages) minus a deterrence term in the rangers' previous
//! patrol coverage, plus seasonal drift for parks with a wet/dry cycle.

use paws_geo::{CellId, FeatureKind, Park, Seasonality};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Season of a simulated month.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Season {
    /// Dry season (November through April in SWS).
    Dry,
    /// Wet season (May through October).
    Wet,
}

impl Season {
    /// Season of a calendar month (1–12) under the SWS regime.
    pub fn of_month(month: u32) -> Self {
        match month {
            11 | 12 | 1 | 2 | 3 | 4 => Season::Dry,
            _ => Season::Wet,
        }
    }
}

/// Configuration of the ground-truth attack model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackModelConfig {
    /// Intercept of the logistic attack model; calibrated so the park-wide
    /// mean monthly attack probability matches `target_attack_rate`.
    pub intercept: f64,
    /// Weight on (normalised) animal density.
    pub w_animal: f64,
    /// Weight on boundary accessibility `exp(-dist_boundary / 6 km)`.
    pub w_boundary: f64,
    /// Weight on road accessibility `exp(-dist_road / 5 km)`.
    pub w_road: f64,
    /// Weight on village proximity `exp(-dist_village / 8 km)`.
    pub w_village: f64,
    /// Weight on forest cover (snares are easier to hide under canopy).
    pub w_forest: f64,
    /// Deterrence: reduction in attack logit per km of ranger coverage in
    /// the previous time step.
    pub deterrence: f64,
    /// Strength of the seasonal north/south shift (0 disables it).
    pub seasonal_shift: f64,
    /// Standard deviation of a per-cell idiosyncratic logit offset, giving
    /// poacher preferences the model cannot fully explain from features.
    pub cell_noise_sd: f64,
    /// Park-wide mean monthly attack probability the intercept is calibrated
    /// to reach (before deterrence).
    pub target_attack_rate: f64,
}

impl Default for AttackModelConfig {
    fn default() -> Self {
        Self {
            intercept: -2.0,
            w_animal: 2.2,
            w_boundary: 1.8,
            w_road: 0.9,
            w_village: 1.2,
            w_forest: 0.7,
            deterrence: 0.35,
            seasonal_shift: 0.0,
            cell_noise_sd: 0.6,
            target_attack_rate: 0.08,
        }
    }
}

/// The realised ground-truth poacher model for one park.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoacherModel {
    config: AttackModelConfig,
    /// Attractiveness score (logit without intercept/deterrence/season) per
    /// in-park cell, in `Park::cells` order.
    attractiveness: Vec<f64>,
    /// Normalised north/south position in [-0.5, 0.5] per in-park cell
    /// (negative = north); used by the seasonal shift.
    north_south: Vec<f64>,
    seasonality: Seasonality,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Pull a feature column restricted to in-park cells, normalised to [0, 1].
fn park_column_unit(park: &Park, kind: FeatureKind) -> Option<Vec<f64>> {
    let col = park.features.column(kind)?;
    let vals: Vec<f64> = park.cells.iter().map(|c| col[c.index()]).collect();
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    Some(vals.into_iter().map(|v| (v - lo) / range).collect())
}

impl PoacherModel {
    /// Build the ground-truth model for a park, calibrating the intercept so
    /// the mean monthly attack probability (with zero prior coverage) equals
    /// `config.target_attack_rate`.
    pub fn new<R: Rng>(park: &Park, mut config: AttackModelConfig, rng: &mut R) -> Self {
        let n = park.n_cells();
        let zeros = vec![0.0; n];
        let animal =
            park_column_unit(park, FeatureKind::AnimalDensity).unwrap_or_else(|| zeros.clone());
        let forest =
            park_column_unit(park, FeatureKind::ForestCover).unwrap_or_else(|| zeros.clone());
        let d_boundary = park
            .features
            .column(FeatureKind::DistBoundary)
            .map(|col| {
                park.cells
                    .iter()
                    .map(|c| col[c.index()])
                    .collect::<Vec<_>>()
            })
            .unwrap_or_else(|| zeros.clone());
        let d_road = park
            .features
            .column(FeatureKind::DistRoad)
            .map(|col| {
                park.cells
                    .iter()
                    .map(|c| col[c.index()])
                    .collect::<Vec<_>>()
            })
            .unwrap_or_else(|| vec![10.0; n]);
        let d_village = park
            .features
            .column(FeatureKind::DistVillage)
            .map(|col| {
                park.cells
                    .iter()
                    .map(|c| col[c.index()])
                    .collect::<Vec<_>>()
            })
            .unwrap_or_else(|| vec![10.0; n]);

        let attractiveness: Vec<f64> = (0..n)
            .map(|i| {
                config.w_animal * animal[i]
                    + config.w_boundary * (-d_boundary[i] / 6.0).exp()
                    + config.w_road * (-d_road[i] / 5.0).exp()
                    + config.w_village * (-d_village[i] / 8.0).exp()
                    + config.w_forest * forest[i]
                    + rng.gen_range(-1.0..1.0) * config.cell_noise_sd
            })
            .collect();

        let north_south: Vec<f64> = park
            .cells
            .iter()
            .map(|&c| {
                let (row, _) = park.grid.coords(c);
                row as f64 / park.grid.rows().max(1) as f64 - 0.5
            })
            .collect();

        config.intercept = calibrate_intercept(&attractiveness, config.target_attack_rate);

        Self {
            config,
            attractiveness,
            north_south,
            seasonality: park.seasonality,
        }
    }

    /// Configuration used to build the model (with the calibrated intercept).
    pub fn config(&self) -> &AttackModelConfig {
        &self.config
    }

    /// The attractiveness score of each in-park cell.
    pub fn attractiveness(&self) -> &[f64] {
        &self.attractiveness
    }

    /// Ground-truth probability that the adversary at in-park cell index
    /// `cell_idx` places snares during a month, given the ranger coverage
    /// (km patrolled in that cell) of the previous time step.
    pub fn attack_probability(
        &self,
        cell_idx: usize,
        prev_coverage_km: f64,
        season: Season,
    ) -> f64 {
        let seasonal = match (self.seasonality, season) {
            (Seasonality::WetDry, Season::Dry) => {
                -self.config.seasonal_shift * self.north_south[cell_idx]
            }
            (Seasonality::WetDry, Season::Wet) => {
                self.config.seasonal_shift * self.north_south[cell_idx]
            }
            (Seasonality::None, _) => 0.0,
        };
        let logit = self.config.intercept + self.attractiveness[cell_idx] + seasonal
            - self.config.deterrence * prev_coverage_km;
        sigmoid(logit)
    }

    /// Sample the attack indicator for every in-park cell for one month.
    pub fn sample_attacks<R: Rng>(
        &self,
        prev_coverage_km: &[f64],
        season: Season,
        rng: &mut R,
    ) -> Vec<bool> {
        assert_eq!(prev_coverage_km.len(), self.attractiveness.len());
        (0..self.attractiveness.len())
            .map(|i| rng.gen::<f64>() < self.attack_probability(i, prev_coverage_km[i], season))
            .collect()
    }

    /// Number of in-park cells the model covers.
    pub fn n_cells(&self) -> usize {
        self.attractiveness.len()
    }

    /// Convenience: ground-truth attack probabilities for every cell with a
    /// common previous coverage (used by plan evaluation and field tests).
    pub fn attack_probabilities(&self, prev_coverage_km: &[f64], season: Season) -> Vec<f64> {
        (0..self.n_cells())
            .map(|i| self.attack_probability(i, prev_coverage_km[i], season))
            .collect()
    }

    /// Map an in-park cell index back to its attack probability ignoring
    /// deterrence — the "static risk" used for sanity checks.
    pub fn static_risk(&self, cell_idx: usize) -> f64 {
        sigmoid(self.config.intercept + self.attractiveness[cell_idx])
    }

    /// Identify the cell ids of the `k` highest static-risk cells.
    pub fn top_risk_cells(&self, park: &Park, k: usize) -> Vec<CellId> {
        let mut idx: Vec<usize> = (0..self.n_cells()).collect();
        idx.sort_by(|&a, &b| self.static_risk(b).total_cmp(&self.static_risk(a)));
        idx.into_iter().take(k).map(|i| park.cells[i]).collect()
    }
}

/// Solve for the intercept `b` such that `mean_i sigmoid(b + s_i) = target`
/// using bisection; the mean is monotone increasing in `b`.
pub fn calibrate_intercept(scores: &[f64], target: f64) -> f64 {
    assert!(!scores.is_empty(), "cannot calibrate on an empty park");
    assert!(
        target > 0.0 && target < 1.0,
        "target rate must be in (0, 1)"
    );
    let mean_at =
        |b: f64| scores.iter().map(|&s| sigmoid(b + s)).sum::<f64>() / scores.len() as f64;
    let (mut lo, mut hi) = (-30.0, 30.0);
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if mean_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_geo::parks::test_park_spec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> (Park, PoacherModel) {
        let park = Park::generate(&test_park_spec(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = PoacherModel::new(&park, AttackModelConfig::default(), &mut rng);
        (park, model)
    }

    #[test]
    fn probabilities_are_valid() {
        let (_, m) = model();
        for i in 0..m.n_cells() {
            for cov in [0.0, 0.5, 2.0, 10.0] {
                let p = m.attack_probability(i, cov, Season::Dry);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn calibration_hits_target_rate() {
        let (_, m) = model();
        let zeros = vec![0.0; m.n_cells()];
        let mean: f64 = m
            .attack_probabilities(&zeros, Season::Dry)
            .iter()
            .sum::<f64>()
            / m.n_cells() as f64;
        assert!(
            (mean - m.config().target_attack_rate).abs() < 0.01,
            "mean={mean}"
        );
    }

    #[test]
    fn deterrence_reduces_attack_probability() {
        let (_, m) = model();
        for i in (0..m.n_cells()).step_by(17) {
            let p0 = m.attack_probability(i, 0.0, Season::Wet);
            let p5 = m.attack_probability(i, 5.0, Season::Wet);
            assert!(p5 < p0);
        }
    }

    #[test]
    fn seasonal_shift_moves_risk_between_halves() {
        let spec = paws_geo::parks::test_park_spec();
        let mut spec = spec;
        spec.seasonality = Seasonality::WetDry;
        let park = Park::generate(&spec, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = AttackModelConfig {
            seasonal_shift: 2.0,
            ..AttackModelConfig::default()
        };
        let m = PoacherModel::new(&park, cfg, &mut rng);
        // A clearly-northern cell (small row index) should be riskier in the
        // dry season than in the wet season.
        let north_idx = (0..m.n_cells())
            .min_by(|&a, &b| {
                let (ra, _) = park.grid.coords(park.cells[a]);
                let (rb, _) = park.grid.coords(park.cells[b]);
                ra.cmp(&rb)
            })
            .unwrap();
        let dry = m.attack_probability(north_idx, 0.0, Season::Dry);
        let wet = m.attack_probability(north_idx, 0.0, Season::Wet);
        assert!(dry > wet);
    }

    #[test]
    fn no_seasonal_effect_without_wetdry() {
        let (_, m) = model();
        for i in (0..m.n_cells()).step_by(29) {
            let dry = m.attack_probability(i, 0.0, Season::Dry);
            let wet = m.attack_probability(i, 0.0, Season::Wet);
            assert_eq!(dry, wet);
        }
    }

    #[test]
    fn sample_attacks_matches_probability_on_average() {
        let (_, m) = model();
        let zeros = vec![0.0; m.n_cells()];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 300;
        let mut total = 0usize;
        for _ in 0..trials {
            total += m
                .sample_attacks(&zeros, Season::Dry, &mut rng)
                .iter()
                .filter(|&&a| a)
                .count();
        }
        let empirical = total as f64 / (trials * m.n_cells()) as f64;
        assert!((empirical - m.config().target_attack_rate).abs() < 0.02);
    }

    #[test]
    fn season_of_month_splits_nov_to_apr() {
        assert_eq!(Season::of_month(11), Season::Dry);
        assert_eq!(Season::of_month(2), Season::Dry);
        assert_eq!(Season::of_month(4), Season::Dry);
        assert_eq!(Season::of_month(5), Season::Wet);
        assert_eq!(Season::of_month(10), Season::Wet);
    }

    #[test]
    fn calibrate_intercept_monotone_check() {
        let scores = vec![0.0, 0.5, -0.5, 1.0];
        for target in [0.05, 0.3, 0.7] {
            let b = calibrate_intercept(&scores, target);
            let mean: f64 = scores
                .iter()
                .map(|&s| 1.0 / (1.0 + (-(b + s)).exp()))
                .sum::<f64>()
                / 4.0;
            assert!((mean - target).abs() < 1e-6);
        }
    }

    #[test]
    fn top_risk_cells_are_sorted_by_risk() {
        let (park, m) = model();
        let top = m.top_risk_cells(&park, 10);
        assert_eq!(top.len(), 10);
        let risks: Vec<f64> = top
            .iter()
            .map(|c| m.static_risk(park.cell_position(*c).unwrap()))
            .collect();
        for w in risks.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
