//! # paws-sim
//!
//! Ground-truth poacher behaviour and ranger patrol simulation for the PAWS
//! reproduction.
//!
//! The real system learns from proprietary SMART patrol data; this crate is
//! the substitute substrate that generates data with the same statistical
//! structure: extreme class imbalance, one-sided label noise tied to patrol
//! effort, spatial bias towards patrol posts, deterrence effects, and (for
//! SWS) wet/dry seasonality. It also serves as the evaluation oracle — the
//! plan evaluation and simulated field tests score patrols against the true
//! attack process.
//!
//! Entry points:
//! * [`behaviour::PoacherModel`] — the ground-truth attack model.
//! * [`patrol::simulate_month`] / [`patrol::simulate_patrol`] — ranger walks.
//! * [`history::simulate_history`] — multi-year SMART-like histories.
//! * [`presets`] — per-park simulator calibrations.

pub mod behaviour;
pub mod detection;
pub mod history;
pub mod patrol;
pub mod presets;

pub use behaviour::{AttackModelConfig, PoacherModel, Season};
pub use detection::DetectionModel;
pub use history::{patrol_log_batches, History, MonthRecord, SimConfig};
pub use patrol::{Patrol, PatrolConfig, Transport, Waypoint};
