//! Multi-year simulation of patrols, attacks and observations.
//!
//! The output is the synthetic stand-in for the SMART database the paper's
//! pipeline starts from: for every simulated month we keep the patrol
//! waypoints (what the dataset pipeline is allowed to see), the true per-cell
//! effort, the ground-truth attacks, and the detected attacks (observations).

use crate::behaviour::{PoacherModel, Season};
use crate::detection::DetectionModel;
use crate::patrol::{effort_map, simulate_month, Patrol, PatrolConfig};
use paws_geo::Park;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Complete simulator configuration for one park.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct SimConfig {
    /// Ground-truth attack model parameters.
    pub attack: crate::behaviour::AttackModelConfig,
    /// Detection model (effort → detection probability).
    pub detection: DetectionModel,
    /// Patrol simulator parameters.
    pub patrol: PatrolConfig,
}

/// Everything that happened in the park during one simulated month.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonthRecord {
    /// Calendar year.
    pub year: u32,
    /// Calendar month (1–12).
    pub month: u32,
    /// Season of the month (relevant for SWS).
    pub season: Season,
    /// Patrols conducted during the month.
    pub patrols: Vec<Patrol>,
    /// True kilometres patrolled per in-park cell.
    pub true_effort: Vec<f64>,
    /// Ground-truth attack indicator per in-park cell.
    pub attacks: Vec<bool>,
    /// Detected attacks (observations) per in-park cell.
    pub detections: Vec<bool>,
}

impl MonthRecord {
    /// Number of cells with a detected attack this month.
    pub fn n_detections(&self) -> usize {
        self.detections.iter().filter(|&&d| d).count()
    }

    /// Number of cells with a ground-truth attack this month.
    pub fn n_attacks(&self) -> usize {
        self.attacks.iter().filter(|&&a| a).count()
    }
}

/// A multi-year simulated history for one park.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct History {
    /// First simulated calendar year.
    pub start_year: u32,
    /// Monthly records in chronological order (January of `start_year`
    /// onwards).
    pub months: Vec<MonthRecord>,
    /// Number of in-park cells each per-cell vector covers.
    pub n_cells: usize,
}

impl History {
    /// Number of simulated years.
    pub fn n_years(&self) -> u32 {
        (self.months.len() / 12) as u32
    }

    /// Iterate over the records of one calendar year.
    pub fn year(&self, year: u32) -> impl Iterator<Item = &MonthRecord> {
        self.months.iter().filter(move |m| m.year == year)
    }

    /// All calendar years present, in order.
    pub fn years(&self) -> Vec<u32> {
        let mut ys: Vec<u32> = self.months.iter().map(|m| m.year).collect();
        ys.dedup();
        ys
    }

    /// Total detected attacks across the whole history.
    pub fn total_detections(&self) -> usize {
        self.months.iter().map(|m| m.n_detections()).sum()
    }
}

/// Simulate `years` years of patrols and poaching for a park.
///
/// Deterrence works on the previous month's true coverage: the adversary
/// responds to what the rangers actually did, not to the reconstructed
/// dataset effort.
pub fn simulate_history(
    park: &Park,
    model: &PoacherModel,
    config: &SimConfig,
    start_year: u32,
    years: u32,
    seed: u64,
) -> History {
    assert!(years > 0, "must simulate at least one year");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut months = Vec::with_capacity((years * 12) as usize);
    let mut prev_effort = vec![0.0; park.n_cells()];

    for y in 0..years {
        for m in 1..=12u32 {
            let season = Season::of_month(m);
            let patrols = simulate_month(park, &config.patrol, &mut rng);
            let true_effort = effort_map(park, &patrols);
            let attacks = model.sample_attacks(&prev_effort, season, &mut rng);
            let detections: Vec<bool> = attacks
                .iter()
                .enumerate()
                .map(|(i, &attacked)| {
                    attacked && rng.gen::<f64>() < config.detection.probability(true_effort[i])
                })
                .collect();
            months.push(MonthRecord {
                year: start_year + y,
                month: m,
                season,
                patrols,
                true_effort: true_effort.clone(),
                attacks,
                detections,
            });
            prev_effort = true_effort;
        }
    }

    History {
        start_year,
        months,
        n_cells: park.n_cells(),
    }
}

/// Simulate `years` years of patrol logs and chop them into time-ordered
/// chunks of `months_per_batch` consecutive months — the seeded stream a
/// deployment would receive from the ranger database between patrol
/// cycles.
///
/// The whole history is simulated in **one** RNG stream and only then
/// chunked, so the concatenation of the returned batches is bit-identical
/// to [`simulate_history`] with the same seed (one shared `prev_effort`
/// deterrence chain across batch boundaries; re-seeding per batch would
/// break that). The final batch may be shorter than `months_per_batch`.
///
/// To keep a streamed dataset build bit-identical to the one-shot build,
/// pick `months_per_batch` so no discretisation step straddles a batch
/// boundary (e.g. a multiple of 3 for quarterly steps).
///
/// # Panics
/// Panics when `months_per_batch` is zero.
pub fn patrol_log_batches(
    park: &Park,
    model: &PoacherModel,
    config: &SimConfig,
    start_year: u32,
    years: u32,
    seed: u64,
    months_per_batch: usize,
) -> Vec<History> {
    assert!(months_per_batch > 0, "batches must hold at least one month");
    let full = simulate_history(park, model, config, start_year, years, seed);
    let n_cells = full.n_cells;
    full.months
        .chunks(months_per_batch)
        .map(|chunk| History {
            start_year: chunk[0].year,
            months: chunk.to_vec(),
            n_cells,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviour::AttackModelConfig;
    use paws_geo::parks::test_park_spec;

    fn setup() -> (Park, PoacherModel, SimConfig) {
        let park = Park::generate(&test_park_spec(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = PoacherModel::new(&park, AttackModelConfig::default(), &mut rng);
        (park, model, SimConfig::default())
    }

    #[test]
    fn history_has_twelve_months_per_year() {
        let (park, model, config) = setup();
        let h = simulate_history(&park, &model, &config, 2013, 2, 11);
        assert_eq!(h.months.len(), 24);
        assert_eq!(h.n_years(), 2);
        assert_eq!(h.years(), vec![2013, 2014]);
        assert_eq!(h.year(2014).count(), 12);
    }

    #[test]
    fn detections_imply_attacks_and_effort() {
        let (park, model, config) = setup();
        let h = simulate_history(&park, &model, &config, 2013, 1, 13);
        for month in &h.months {
            for i in 0..park.n_cells() {
                if month.detections[i] {
                    assert!(month.attacks[i], "detection without attack");
                    assert!(
                        month.true_effort[i] > 0.0,
                        "detection without patrol effort"
                    );
                }
            }
        }
    }

    #[test]
    fn detections_do_not_exceed_attacks() {
        let (park, model, config) = setup();
        let h = simulate_history(&park, &model, &config, 2013, 2, 17);
        for month in &h.months {
            assert!(month.n_detections() <= month.n_attacks());
        }
        assert!(
            h.total_detections() > 0,
            "history should contain some detections"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (park, model, config) = setup();
        let a = simulate_history(&park, &model, &config, 2013, 1, 5);
        let b = simulate_history(&park, &model, &config, 2013, 1, 5);
        assert_eq!(a.months[3].detections, b.months[3].detections);
        assert_eq!(a.months[7].true_effort, b.months[7].true_effort);
    }

    #[test]
    fn different_seeds_differ() {
        let (park, model, config) = setup();
        let a = simulate_history(&park, &model, &config, 2013, 1, 5);
        let b = simulate_history(&park, &model, &config, 2013, 1, 6);
        assert_ne!(
            a.months
                .iter()
                .map(|m| m.n_detections())
                .collect::<Vec<_>>(),
            b.months
                .iter()
                .map(|m| m.n_detections())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn patrol_log_batches_concatenate_to_the_one_shot_history() {
        let (park, model, config) = setup();
        let full = simulate_history(&park, &model, &config, 2013, 2, 23);
        for months_per_batch in [3, 5, 12, 24, 30] {
            let batches = patrol_log_batches(&park, &model, &config, 2013, 2, 23, months_per_batch);
            assert_eq!(
                batches.iter().map(|b| b.months.len()).sum::<usize>(),
                full.months.len()
            );
            let mut i = 0;
            for batch in &batches {
                assert_eq!(batch.n_cells, full.n_cells);
                assert_eq!(batch.start_year, batch.months[0].year);
                for month in &batch.months {
                    assert_eq!(
                        (month.year, month.month),
                        (full.months[i].year, full.months[i].month)
                    );
                    assert_eq!(month.true_effort, full.months[i].true_effort);
                    assert_eq!(month.detections, full.months[i].detections);
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn per_cell_vectors_cover_the_park() {
        let (park, model, config) = setup();
        let h = simulate_history(&park, &model, &config, 2013, 1, 19);
        assert_eq!(h.n_cells, park.n_cells());
        for m in &h.months {
            assert_eq!(m.true_effort.len(), park.n_cells());
            assert_eq!(m.attacks.len(), park.n_cells());
            assert_eq!(m.detections.len(), park.n_cells());
        }
    }
}
