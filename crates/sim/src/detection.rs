//! Imperfect detection of poaching signs.
//!
//! Sec. III-C: "Positive records are reliable regardless of the amount of
//! patrol effort … but negative labels have different levels of uncertainty
//! which depend on the patrol effort". We model the probability of a ranger
//! detecting an existing snare in a cell as a saturating function of the
//! kilometres patrolled through that cell,
//! `p(detect | attack, effort e) = p_max · (1 − exp(−rate · e))`,
//! which produces exactly the one-sided label noise the iWare-E ensemble is
//! designed to handle and the increasing detection curves of Fig. 4.

use serde::{Deserialize, Serialize};

/// Saturating detection-probability model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectionModel {
    /// Rate of the exponential saturation per km of effort.
    pub rate_per_km: f64,
    /// Asymptotic detection probability with unbounded effort (snares can be
    /// missed even by exhaustive patrols).
    pub max_probability: f64,
}

impl Default for DetectionModel {
    fn default() -> Self {
        Self {
            rate_per_km: 0.9,
            max_probability: 0.95,
        }
    }
}

impl DetectionModel {
    /// Create a detection model.
    ///
    /// # Panics
    /// Panics when parameters are outside their valid ranges.
    pub fn new(rate_per_km: f64, max_probability: f64) -> Self {
        assert!(rate_per_km > 0.0, "detection rate must be positive");
        assert!(
            (0.0..=1.0).contains(&max_probability),
            "max detection probability must be in [0, 1]"
        );
        Self {
            rate_per_km,
            max_probability,
        }
    }

    /// Probability of detecting an existing attack given `effort_km` of
    /// patrolling through the cell.
    #[inline]
    pub fn probability(&self, effort_km: f64) -> f64 {
        if effort_km <= 0.0 {
            return 0.0;
        }
        self.max_probability * (1.0 - (-self.rate_per_km * effort_km).exp())
    }

    /// Joint probability of an attack *and* its detection — the quantity the
    /// predictive model estimates (Pr[a = 1, o = 1] in Sec. V-B).
    #[inline]
    pub fn joint_detection(&self, attack_probability: f64, effort_km: f64) -> f64 {
        attack_probability * self.probability(effort_km)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_effort_never_detects() {
        let d = DetectionModel::default();
        assert_eq!(d.probability(0.0), 0.0);
        assert_eq!(d.probability(-1.0), 0.0);
    }

    #[test]
    fn detection_is_monotone_in_effort() {
        let d = DetectionModel::default();
        let mut prev = 0.0;
        for e in 1..=40 {
            let p = d.probability(e as f64 * 0.25);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn detection_bounded_by_max() {
        let d = DetectionModel::new(2.0, 0.8);
        assert!(d.probability(100.0) <= 0.8 + 1e-12);
        assert!((d.probability(100.0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn joint_detection_scales_with_attack_probability() {
        let d = DetectionModel::default();
        let p1 = d.joint_detection(0.2, 1.0);
        let p2 = d.joint_detection(0.4, 1.0);
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_non_positive_rate() {
        let _ = DetectionModel::new(0.0, 0.9);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_max_probability() {
        let _ = DetectionModel::new(1.0, 1.5);
    }
}
