//! Per-park simulator presets.
//!
//! The parameters are calibrated so the generated six-year datasets land
//! close to Table I of the paper: the fraction of positive labels among
//! patrolled (cell, quarter) points (14.3 % MFNP, 4.7 % QENP, 0.36 % SWS,
//! 0.25 % SWS dry season) and the average patrol effort per patrolled cell
//! (1.75 / 2.08 / 3.96 km). EXPERIMENTS.md records the measured values.

use crate::behaviour::AttackModelConfig;
use crate::detection::DetectionModel;
use crate::history::SimConfig;
use crate::patrol::{PatrolConfig, Transport};

/// Simulator preset for Murchison Falls National Park.
///
/// Foot patrols, relatively rich positive rate (14.3 % of patrolled points
/// per quarter), poaching concentrated near the edges of the circular park.
pub fn mfnp_sim_config() -> SimConfig {
    SimConfig {
        attack: AttackModelConfig {
            target_attack_rate: 0.115,
            w_boundary: 2.4,
            w_animal: 2.0,
            deterrence: 0.30,
            seasonal_shift: 0.0,
            cell_noise_sd: 0.6,
            ..AttackModelConfig::default()
        },
        detection: DetectionModel::new(0.9, 0.95),
        patrol: PatrolConfig {
            patrols_per_month: 46,
            patrol_length_km: 10.0,
            waypoint_interval_km: 1.5,
            post_bias: 0.18,
            risk_seeking: 0.5,
            transport: Transport::Foot,
        },
    }
}

/// Simulator preset for Queen Elizabeth National Park.
///
/// Foot patrols, moderate positive rate (4.7 %), elongated park so the
/// interior is accessible from the boundary everywhere.
pub fn qenp_sim_config() -> SimConfig {
    SimConfig {
        attack: AttackModelConfig {
            target_attack_rate: 0.050,
            w_boundary: 1.4,
            w_animal: 2.4,
            deterrence: 0.30,
            seasonal_shift: 0.0,
            cell_noise_sd: 0.6,
            ..AttackModelConfig::default()
        },
        detection: DetectionModel::new(0.8, 0.95),
        patrol: PatrolConfig {
            patrols_per_month: 40,
            patrol_length_km: 14.0,
            waypoint_interval_km: 1.5,
            post_bias: 0.18,
            risk_seeking: 0.5,
            transport: Transport::Foot,
        },
    }
}

/// Simulator preset for Srepok Wildlife Sanctuary.
///
/// Motorbike patrols: much longer outings, sparser waypoints, lower per-km
/// detection; extremely rare positives (0.36 % of patrolled points) and a
/// strong wet/dry seasonal shift.
pub fn sws_sim_config() -> SimConfig {
    SimConfig {
        attack: AttackModelConfig {
            target_attack_rate: 0.006,
            w_boundary: 1.2,
            w_animal: 1.8,
            w_road: 1.2,
            deterrence: 0.25,
            seasonal_shift: 1.6,
            cell_noise_sd: 0.7,
            ..AttackModelConfig::default()
        },
        detection: DetectionModel::new(0.35, 0.75),
        patrol: PatrolConfig {
            patrols_per_month: 55,
            patrol_length_km: 40.0,
            waypoint_interval_km: 4.0,
            post_bias: 0.12,
            risk_seeking: 0.4,
            transport: Transport::Motorbike,
        },
    }
}

/// A fast preset for tests and examples on the small test park.
pub fn test_sim_config() -> SimConfig {
    SimConfig {
        attack: AttackModelConfig {
            target_attack_rate: 0.10,
            ..AttackModelConfig::default()
        },
        detection: DetectionModel::new(0.9, 0.95),
        patrol: PatrolConfig {
            patrols_per_month: 14,
            patrol_length_km: 8.0,
            waypoint_interval_km: 1.5,
            post_bias: 0.4,
            risk_seeking: 0.8,
            transport: Transport::Foot,
        },
    }
}

/// Simulator preset for the LLC-scale synthetic parks
/// (`paws_geo::parks::llc_park_spec`): MFNP-like attack/detection
/// behaviour with the patrol force grown with the square root of the park
/// area, so patrol-coverage *density* — and with it the dataset's
/// positive rate and effort distribution — stays comparable to the study
/// sites while the prediction surface grows by an order of magnitude.
pub fn llc_sim_config(target_cells: usize) -> SimConfig {
    // Same baseline the geography scales from (paws_geo::parks::llc_park_spec),
    // so patrol force and park area grow in lockstep.
    let mfnp_cells = paws_geo::parks::mfnp_spec().target_cells as f64;
    let scale = (target_cells as f64 / mfnp_cells).sqrt().max(1.0);
    SimConfig {
        attack: AttackModelConfig {
            target_attack_rate: 0.115,
            w_boundary: 2.4,
            w_animal: 2.0,
            deterrence: 0.30,
            seasonal_shift: 0.0,
            cell_noise_sd: 0.6,
            ..AttackModelConfig::default()
        },
        detection: DetectionModel::new(0.9, 0.95),
        patrol: PatrolConfig {
            patrols_per_month: (46.0 * scale).round() as usize,
            patrol_length_km: 10.0,
            waypoint_interval_km: 1.5,
            post_bias: 0.18,
            risk_seeking: 0.5,
            transport: Transport::Foot,
        },
    }
}

/// Look up the preset matching a park preset name from `paws_geo::parks`.
pub fn sim_config_for(park_name: &str) -> SimConfig {
    match park_name {
        "MFNP" => mfnp_sim_config(),
        "QENP" => qenp_sim_config(),
        "SWS" => sws_sim_config(),
        _ => test_sim_config(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(sim_config_for("MFNP").patrol.patrols_per_month, 46);
        assert_eq!(sim_config_for("QENP").patrol.patrols_per_month, 40);
        assert_eq!(sim_config_for("SWS").patrol.transport, Transport::Motorbike);
        assert_eq!(sim_config_for("anything-else").patrol.patrols_per_month, 14);
    }

    #[test]
    fn llc_patrol_force_scales_with_park_side() {
        let small = llc_sim_config(50_000);
        let large = llc_sim_config(200_000);
        // √(200k/50k) = 2× the patrol force for 4× the area (± rounding).
        let ratio = large.patrol.patrols_per_month as f64 / small.patrol.patrols_per_month as f64;
        assert!((ratio - 2.0).abs() < 0.02, "ratio {ratio}");
        assert!(small.patrol.patrols_per_month > mfnp_sim_config().patrol.patrols_per_month);
        assert_eq!(small.attack.seasonal_shift, 0.0);
    }

    #[test]
    fn attack_rates_ordered_like_table1() {
        // MFNP > QENP > SWS in positive-label rate.
        let m = mfnp_sim_config().attack.target_attack_rate;
        let q = qenp_sim_config().attack.target_attack_rate;
        let s = sws_sim_config().attack.target_attack_rate;
        assert!(m > q && q > s);
    }

    #[test]
    fn sws_has_sparser_waypoints_and_longer_patrols() {
        let sws = sws_sim_config().patrol;
        let mfnp = mfnp_sim_config().patrol;
        assert!(sws.waypoint_interval_km > mfnp.waypoint_interval_km);
        assert!(sws.patrol_length_km > mfnp.patrol_length_km);
    }

    #[test]
    fn only_sws_has_seasonal_shift() {
        assert_eq!(mfnp_sim_config().attack.seasonal_shift, 0.0);
        assert_eq!(qenp_sim_config().attack.seasonal_shift, 0.0);
        assert!(sws_sim_config().attack.seasonal_shift > 0.0);
    }
}
