//! Static geospatial feature layers.
//!
//! Sec. III-B of the paper: "The features used in our dataset represent
//! static geospatial features about locations within each park … terrain
//! features such as rivers, elevation maps, and forest cover; landscape
//! features such as roads, park boundary, local villages, and patrol posts;
//! and ecological features such as animal density and net primary
//! productivity. We use these static features … either as direct values
//! (such as slope or animal density) or as distance values (such as distance
//! to nearest river)."
//!
//! Each [`FeatureKind`] names one such layer; a [`FeatureTable`] holds the
//! realised per-cell values for a generated park.

use serde::{Deserialize, Serialize};

/// The roster of static feature layers the synthetic parks can generate.
///
/// Real deployments have slightly different feature sets per park
/// (Table I: 22 / 19 / 21 features including previous patrol coverage);
/// the park presets select subsets of this roster to match those counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Terrain elevation (normalised metres).
    Elevation,
    /// Terrain slope, the gradient magnitude of elevation.
    Slope,
    /// Terrain ruggedness (local elevation variance).
    Ruggedness,
    /// Fraction of the cell under forest canopy.
    ForestCover,
    /// Fraction of the cell under scrub.
    ScrubCover,
    /// Fraction of the cell that is open grassland.
    GrasslandCover,
    /// Net primary productivity.
    Npp,
    /// Annual rainfall (normalised).
    Rainfall,
    /// Relative density of large mammals.
    AnimalDensity,
    /// Density of surface water within 3 km.
    WaterDensity,
    /// Density of river cells within 3 km.
    RiverDensity,
    /// Density of road cells within 3 km.
    RoadDensity,
    /// Distance (km) to the nearest river.
    DistRiver,
    /// Distance (km) to the nearest water hole.
    DistWaterHole,
    /// Distance (km) to the nearest road.
    DistRoad,
    /// Distance (km) to the park boundary.
    DistBoundary,
    /// Distance (km) to the nearest village outside the park.
    DistVillage,
    /// Distance (km) to the nearest town.
    DistTown,
    /// Distance (km) to the nearest patrol post.
    DistPatrolPost,
    /// Distance (km) to the nearest ranger camp inside the park.
    DistCamp,
    /// Distance (km) to the nearest forest edge.
    DistForestEdge,
}

impl FeatureKind {
    /// Stable, human-readable name used in reports and serialised datasets.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::Elevation => "elevation",
            FeatureKind::Slope => "slope",
            FeatureKind::Ruggedness => "ruggedness",
            FeatureKind::ForestCover => "forest_cover",
            FeatureKind::ScrubCover => "scrub_cover",
            FeatureKind::GrasslandCover => "grassland_cover",
            FeatureKind::Npp => "npp",
            FeatureKind::Rainfall => "rainfall",
            FeatureKind::AnimalDensity => "animal_density",
            FeatureKind::WaterDensity => "water_density",
            FeatureKind::RiverDensity => "river_density",
            FeatureKind::RoadDensity => "road_density",
            FeatureKind::DistRiver => "dist_river",
            FeatureKind::DistWaterHole => "dist_water_hole",
            FeatureKind::DistRoad => "dist_road",
            FeatureKind::DistBoundary => "dist_boundary",
            FeatureKind::DistVillage => "dist_village",
            FeatureKind::DistTown => "dist_town",
            FeatureKind::DistPatrolPost => "dist_patrol_post",
            FeatureKind::DistCamp => "dist_camp",
            FeatureKind::DistForestEdge => "dist_forest_edge",
        }
    }

    /// The full roster, in canonical order.
    pub fn all() -> &'static [FeatureKind] {
        use FeatureKind::*;
        &[
            Elevation,
            Slope,
            Ruggedness,
            ForestCover,
            ScrubCover,
            GrasslandCover,
            Npp,
            Rainfall,
            AnimalDensity,
            WaterDensity,
            RiverDensity,
            RoadDensity,
            DistRiver,
            DistWaterHole,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistTown,
            DistPatrolPost,
            DistCamp,
            DistForestEdge,
        ]
    }
}

/// Column-oriented table of static features for every cell of the grid
/// bounding rectangle (row-major cell order).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureTable {
    kinds: Vec<FeatureKind>,
    /// `columns[k][cell]`, one column per feature kind.
    columns: Vec<Vec<f64>>,
    n_cells: usize,
}

impl FeatureTable {
    /// Create an empty table for `n_cells` cells.
    pub fn new(n_cells: usize) -> Self {
        Self {
            kinds: Vec::new(),
            columns: Vec::new(),
            n_cells,
        }
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.kinds.len()
    }

    /// Number of cells covered by each column.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// The feature kinds in column order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Column names, in column order.
    pub fn names(&self) -> Vec<&'static str> {
        self.kinds.iter().map(|k| k.name()).collect()
    }

    /// Append a column.
    ///
    /// # Panics
    /// Panics when the column length does not match the cell count or when
    /// the feature kind is already present.
    pub fn push(&mut self, kind: FeatureKind, values: Vec<f64>) {
        assert_eq!(values.len(), self.n_cells, "feature column length mismatch");
        assert!(
            !self.kinds.contains(&kind),
            "duplicate feature column {:?}",
            kind
        );
        self.kinds.push(kind);
        self.columns.push(values);
    }

    /// Borrow one column by kind.
    pub fn column(&self, kind: FeatureKind) -> Option<&[f64]> {
        self.kinds
            .iter()
            .position(|k| *k == kind)
            .map(|i| self.columns[i].as_slice())
    }

    /// Borrow one column by index.
    pub fn column_at(&self, idx: usize) -> &[f64] {
        &self.columns[idx]
    }

    /// The feature vector of one cell, in column order.
    pub fn row(&self, cell: usize) -> Vec<f64> {
        assert!(cell < self.n_cells, "cell index out of range");
        self.columns.iter().map(|c| c[cell]).collect()
    }

    /// Write the feature vector of one cell into `out` without allocating.
    ///
    /// # Panics
    /// Panics when `out` is not exactly `n_features` long or the cell index
    /// is out of range.
    pub fn write_row(&self, cell: usize, out: &mut [f64]) {
        assert!(cell < self.n_cells, "cell index out of range");
        assert_eq!(out.len(), self.n_features(), "output width mismatch");
        for (slot, column) in out.iter_mut().zip(&self.columns) {
            *slot = column[cell];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_names_are_unique() {
        let all = FeatureKind::all();
        let mut names: Vec<_> = all.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn push_and_row_roundtrip() {
        let mut t = FeatureTable::new(3);
        t.push(FeatureKind::Elevation, vec![1.0, 2.0, 3.0]);
        t.push(FeatureKind::Slope, vec![0.1, 0.2, 0.3]);
        assert_eq!(t.n_features(), 2);
        assert_eq!(t.row(1), vec![2.0, 0.2]);
        assert_eq!(t.column(FeatureKind::Slope).unwrap(), &[0.1, 0.2, 0.3]);
        assert!(t.column(FeatureKind::Npp).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_rejects_wrong_length() {
        let mut t = FeatureTable::new(3);
        t.push(FeatureKind::Elevation, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate feature")]
    fn push_rejects_duplicates() {
        let mut t = FeatureTable::new(2);
        t.push(FeatureKind::Elevation, vec![1.0, 2.0]);
        t.push(FeatureKind::Elevation, vec![3.0, 4.0]);
    }
}
