//! Distance transforms over the cell grid.
//!
//! The PAWS feature vectors use "distance to nearest X" layers (distance to
//! rivers, roads, park boundary, villages, patrol posts, …). These are
//! computed with a multi-source Dijkstra over the 8-neighbourhood with step
//! costs of 1 km (cardinal) and √2 km (diagonal), which approximates the
//! Euclidean distance well enough at 1 km resolution.

use crate::grid::{CellId, Grid};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Entry in the Dijkstra frontier (min-heap by distance).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    dist: f64,
    cell: CellId,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap becomes a min-heap on distance. Ordered
        // with `total_cmp`: the old `partial_cmp().unwrap_or(Equal)` made a
        // NaN key compare Equal to *every* distance, letting it float
        // through the heap and corrupt the pop order; under total order a
        // NaN key has a consistent, worst (popped-last) rank.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.cell.0.cmp(&self.cell.0))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Distance in km from every cell of the grid to the nearest source cell.
///
/// Returns `f64::INFINITY` for cells unreachable from any source (only
/// possible when `sources` is empty).
pub fn distance_to_nearest(grid: &Grid, sources: &[CellId]) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; grid.len()];
    let mut heap = BinaryHeap::new();
    for &s in sources {
        assert!(s.index() < grid.len(), "source cell out of bounds");
        if dist[s.index()] > 0.0 {
            dist[s.index()] = 0.0;
            heap.push(Frontier { dist: 0.0, cell: s });
        }
    }
    while let Some(Frontier { dist: d, cell }) = heap.pop() {
        if d > dist[cell.index()] {
            continue;
        }
        for (n, step) in grid.neighbours8(cell) {
            // Step costs are 1/√2 km by construction; a non-finite cost
            // (a future weighted-grid bug) must not enter the frontier,
            // where it would outrank real paths and poison every distance
            // downstream of it.
            debug_assert!(step.is_finite(), "non-finite neighbour step cost");
            let nd = d + step;
            if !nd.is_finite() {
                continue;
            }
            if nd < dist[n.index()] {
                dist[n.index()] = nd;
                heap.push(Frontier { dist: nd, cell: n });
            }
        }
    }
    dist
}

/// Density of source cells within a radius (km) of each cell, normalised to
/// `[0, 1]` by the neighbourhood size. Used for "river density" / "road
/// density" style features.
pub fn density_within(grid: &Grid, sources: &[CellId], radius_km: f64) -> Vec<f64> {
    assert!(radius_km > 0.0, "radius must be positive");
    let mut is_source = vec![false; grid.len()];
    for &s in sources {
        is_source[s.index()] = true;
    }
    let r = radius_km.ceil() as i64;
    let mut out = vec![0.0; grid.len()];
    for cell in grid.cells() {
        let (row, col) = grid.coords(cell);
        let mut count = 0usize;
        let mut total = 0usize;
        for dr in -r..=r {
            for dc in -r..=r {
                let d2 = (dr * dr + dc * dc) as f64;
                if d2 > radius_km * radius_km {
                    continue;
                }
                total += 1;
                if let Some(n) = grid.try_cell(row as i64 + dr, col as i64 + dc) {
                    if is_source[n.index()] {
                        count += 1;
                    }
                }
            }
        }
        out[cell.index()] = if total == 0 {
            0.0
        } else {
            count as f64 / total as f64
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_zero_at_sources() {
        let g = Grid::new(10, 10);
        let sources = vec![g.cell(3, 3), g.cell(7, 8)];
        let d = distance_to_nearest(&g, &sources);
        for s in &sources {
            assert_eq!(d[s.index()], 0.0);
        }
    }

    #[test]
    fn distance_matches_chebyshev_lower_bound() {
        // Octile distance is always >= Chebyshev and <= Manhattan.
        let g = Grid::new(12, 12);
        let src = g.cell(0, 0);
        let d = distance_to_nearest(&g, &[src]);
        for cell in g.cells() {
            let (r, c) = g.coords(cell);
            let cheb = r.max(c) as f64;
            let man = (r + c) as f64;
            assert!(d[cell.index()] + 1e-9 >= cheb);
            assert!(d[cell.index()] <= man + 1e-9);
        }
    }

    #[test]
    fn straight_line_distance_exact() {
        let g = Grid::new(1, 20);
        let d = distance_to_nearest(&g, &[g.cell(0, 0)]);
        for c in 0..20 {
            assert!((d[g.cell(0, c).index()] - c as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_sources_all_infinite() {
        let g = Grid::new(5, 5);
        let d = distance_to_nearest(&g, &[]);
        assert!(d.iter().all(|&x| x.is_infinite()));
    }

    #[test]
    fn density_bounded_and_peaks_at_sources() {
        let g = Grid::new(15, 15);
        let sources: Vec<_> = (0..15).map(|c| g.cell(7, c)).collect();
        let dens = density_within(&g, &sources, 3.0);
        assert!(dens.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // A cell on the source line has strictly higher density than one far
        // away from it.
        assert!(dens[g.cell(7, 7).index()] > dens[g.cell(0, 0).index()]);
    }

    #[test]
    fn frontier_heap_ranks_nan_last_not_equal() {
        // Regression: the frontier ordering used
        // `partial_cmp(..).unwrap_or(Equal)` — the exact heap bug fixed in
        // paws-plan's Dijkstra — so a NaN key compared Equal to everything
        // and could pop ahead of genuinely nearer cells. Under total_cmp a
        // NaN key has a consistent, worst possible rank.
        let g = Grid::new(2, 2);
        let mut heap = BinaryHeap::new();
        for (d, c) in [(2.0, 0), (f64::NAN, 1), (0.5, 2), (1.0, 3)] {
            heap.push(Frontier {
                dist: d,
                cell: g.cells().nth(c).unwrap(),
            });
        }
        let order: Vec<f64> = std::iter::from_fn(|| heap.pop().map(|f| f.dist)).collect();
        assert_eq!(&order[..3], &[0.5, 1.0, 2.0], "finite keys pop ascending");
        assert!(order[3].is_nan(), "NaN pops last");
        // The ordering is total: NaN vs finite is consistently Less under
        // the reversed (min-heap) comparison, never Equal.
        let nan = Frontier {
            dist: f64::NAN,
            cell: g.cell(0, 0),
        };
        let one = Frontier {
            dist: 1.0,
            cell: g.cell(0, 1),
        };
        assert_eq!(nan.cmp(&one), Ordering::Less);
        assert_eq!(one.cmp(&nan), Ordering::Greater);
    }

    #[test]
    fn distance_triangle_inequality_via_two_sources() {
        // distance to {a, b} is the min of the individual transforms.
        let g = Grid::new(9, 9);
        let a = g.cell(1, 1);
        let b = g.cell(7, 6);
        let da = distance_to_nearest(&g, &[a]);
        let db = distance_to_nearest(&g, &[b]);
        let dab = distance_to_nearest(&g, &[a, b]);
        for cell in g.cells() {
            let expect = da[cell.index()].min(db[cell.index()]);
            assert!((dab[cell.index()] - expect).abs() < 1e-9);
        }
    }
}
