//! Park presets matching the three study sites of the paper.
//!
//! Table I of the paper:
//!
//! | | MFNP | QENP | SWS |
//! |---|---|---|---|
//! | Number of features | 22 | 19 | 21 |
//! | Number of 1×1 km cells | 4,613 | 2,522 | 3,750 |
//!
//! The feature count in Table I includes the single dynamic covariate
//! (previous-step patrol coverage, added by `paws-data`), so the presets
//! generate 21 / 18 / 20 static columns respectively. Cell counts are exact.

use crate::features::FeatureKind;
use crate::park::{BoundaryShape, ParkSpec, Seasonality};

/// Murchison Falls National Park, Uganda (≈ 5,000 km², 4,613 study cells).
///
/// Large grasslands, roughly circular with a protected core, so most
/// poaching happens near the edges (Sec. VII-A).
pub fn mfnp_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "MFNP".to_string(),
        rows: 82,
        cols: 82,
        target_cells: 4_613,
        shape: BoundaryShape::Circular,
        n_rivers: 6,
        n_roads: 5,
        n_villages: 14,
        n_towns: 4,
        n_patrol_posts: 10,
        n_camps: 4,
        n_water_holes: 10,
        features: vec![
            Elevation,
            Slope,
            Ruggedness,
            ForestCover,
            ScrubCover,
            GrasslandCover,
            Npp,
            Rainfall,
            AnimalDensity,
            WaterDensity,
            RiverDensity,
            RoadDensity,
            DistRiver,
            DistWaterHole,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistTown,
            DistPatrolPost,
            DistCamp,
            DistForestEdge,
        ],
        seasonality: Seasonality::None,
    }
}

/// Queen Elizabeth National Park, Uganda (≈ 2,500 km², 2,522 study cells).
///
/// Elongated shape — "it is easy to access the center from the boundary" —
/// more scrub and woodland than MFNP.
pub fn qenp_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "QENP".to_string(),
        rows: 88,
        cols: 44,
        target_cells: 2_522,
        shape: BoundaryShape::Elongated { aspect: 2.2 },
        n_rivers: 4,
        n_roads: 4,
        n_villages: 12,
        n_towns: 3,
        n_patrol_posts: 8,
        n_camps: 3,
        n_water_holes: 8,
        features: vec![
            Elevation,
            Slope,
            ForestCover,
            ScrubCover,
            GrasslandCover,
            Npp,
            AnimalDensity,
            WaterDensity,
            RiverDensity,
            RoadDensity,
            DistRiver,
            DistWaterHole,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistTown,
            DistPatrolPost,
            DistCamp,
        ],
        seasonality: Seasonality::None,
    }
}

/// Srepok Wildlife Sanctuary, Cambodia (≈ 4,300 km², 3,750 study cells).
///
/// Dense forest, strong wet/dry seasonality, motorbike patrols, only 72
/// rangers — the hardest of the three datasets (0.36 % positive labels).
pub fn sws_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "SWS".to_string(),
        rows: 72,
        cols: 76,
        target_cells: 3_750,
        shape: BoundaryShape::Elongated { aspect: 1.3 },
        n_rivers: 7,
        n_roads: 3,
        n_villages: 10,
        n_towns: 3,
        n_patrol_posts: 6,
        n_camps: 2,
        n_water_holes: 12,
        features: vec![
            Elevation,
            Slope,
            Ruggedness,
            ForestCover,
            ScrubCover,
            Npp,
            Rainfall,
            AnimalDensity,
            WaterDensity,
            RiverDensity,
            RoadDensity,
            DistRiver,
            DistWaterHole,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistTown,
            DistPatrolPost,
            DistCamp,
            DistForestEdge,
        ],
        seasonality: Seasonality::WetDry,
    }
}

/// A small park used throughout unit/integration tests and the quickstart
/// example; it keeps every pipeline stage fast while preserving the
/// structure of the real presets.
pub fn test_park_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "TestPark".to_string(),
        rows: 28,
        cols: 28,
        target_cells: 500,
        shape: BoundaryShape::Circular,
        n_rivers: 2,
        n_roads: 2,
        n_villages: 5,
        n_towns: 2,
        n_patrol_posts: 3,
        n_camps: 1,
        n_water_holes: 4,
        features: vec![
            Elevation,
            Slope,
            ForestCover,
            GrasslandCover,
            AnimalDensity,
            WaterDensity,
            DistRiver,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistPatrolPost,
        ],
        seasonality: Seasonality::None,
    }
}

/// All three study-site presets in paper order.
pub fn study_sites() -> Vec<ParkSpec> {
    vec![mfnp_spec(), qenp_spec(), sws_spec()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_feature_counts_match_table1_minus_coverage() {
        // Table I counts include the dynamic previous-coverage covariate.
        assert_eq!(mfnp_spec().features.len() + 1, 22);
        assert_eq!(qenp_spec().features.len() + 1, 19);
        assert_eq!(sws_spec().features.len() + 1, 21);
    }

    #[test]
    fn cell_targets_match_table1() {
        assert_eq!(mfnp_spec().target_cells, 4_613);
        assert_eq!(qenp_spec().target_cells, 2_522);
        assert_eq!(sws_spec().target_cells, 3_750);
    }

    #[test]
    fn cell_targets_fit_bounding_boxes() {
        for spec in study_sites() {
            assert!(spec.target_cells <= (spec.rows as usize) * (spec.cols as usize));
        }
    }

    #[test]
    fn only_sws_is_seasonal() {
        assert_eq!(mfnp_spec().seasonality, Seasonality::None);
        assert_eq!(qenp_spec().seasonality, Seasonality::None);
        assert_eq!(sws_spec().seasonality, Seasonality::WetDry);
    }
}
