//! Park presets matching the three study sites of the paper.
//!
//! Table I of the paper:
//!
//! | | MFNP | QENP | SWS |
//! |---|---|---|---|
//! | Number of features | 22 | 19 | 21 |
//! | Number of 1×1 km cells | 4,613 | 2,522 | 3,750 |
//!
//! The feature count in Table I includes the single dynamic covariate
//! (previous-step patrol coverage, added by `paws-data`), so the presets
//! generate 21 / 18 / 20 static columns respectively. Cell counts are exact.

use crate::features::FeatureKind;
use crate::park::{BoundaryShape, ParkSpec, Seasonality};

/// Murchison Falls National Park, Uganda (≈ 5,000 km², 4,613 study cells).
///
/// Large grasslands, roughly circular with a protected core, so most
/// poaching happens near the edges (Sec. VII-A).
pub fn mfnp_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "MFNP".to_string(),
        rows: 82,
        cols: 82,
        target_cells: 4_613,
        shape: BoundaryShape::Circular,
        n_rivers: 6,
        n_roads: 5,
        n_villages: 14,
        n_towns: 4,
        n_patrol_posts: 10,
        n_camps: 4,
        n_water_holes: 10,
        features: vec![
            Elevation,
            Slope,
            Ruggedness,
            ForestCover,
            ScrubCover,
            GrasslandCover,
            Npp,
            Rainfall,
            AnimalDensity,
            WaterDensity,
            RiverDensity,
            RoadDensity,
            DistRiver,
            DistWaterHole,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistTown,
            DistPatrolPost,
            DistCamp,
            DistForestEdge,
        ],
        seasonality: Seasonality::None,
        terrain_scale: 1.0,
    }
}

/// Queen Elizabeth National Park, Uganda (≈ 2,500 km², 2,522 study cells).
///
/// Elongated shape — "it is easy to access the center from the boundary" —
/// more scrub and woodland than MFNP.
pub fn qenp_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "QENP".to_string(),
        rows: 88,
        cols: 44,
        target_cells: 2_522,
        shape: BoundaryShape::Elongated { aspect: 2.2 },
        n_rivers: 4,
        n_roads: 4,
        n_villages: 12,
        n_towns: 3,
        n_patrol_posts: 8,
        n_camps: 3,
        n_water_holes: 8,
        features: vec![
            Elevation,
            Slope,
            ForestCover,
            ScrubCover,
            GrasslandCover,
            Npp,
            AnimalDensity,
            WaterDensity,
            RiverDensity,
            RoadDensity,
            DistRiver,
            DistWaterHole,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistTown,
            DistPatrolPost,
            DistCamp,
        ],
        seasonality: Seasonality::None,
        terrain_scale: 1.0,
    }
}

/// Srepok Wildlife Sanctuary, Cambodia (≈ 4,300 km², 3,750 study cells).
///
/// Dense forest, strong wet/dry seasonality, motorbike patrols, only 72
/// rangers — the hardest of the three datasets (0.36 % positive labels).
pub fn sws_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "SWS".to_string(),
        rows: 72,
        cols: 76,
        target_cells: 3_750,
        shape: BoundaryShape::Elongated { aspect: 1.3 },
        n_rivers: 7,
        n_roads: 3,
        n_villages: 10,
        n_towns: 3,
        n_patrol_posts: 6,
        n_camps: 2,
        n_water_holes: 12,
        features: vec![
            Elevation,
            Slope,
            Ruggedness,
            ForestCover,
            ScrubCover,
            Npp,
            Rainfall,
            AnimalDensity,
            WaterDensity,
            RiverDensity,
            RoadDensity,
            DistRiver,
            DistWaterHole,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistTown,
            DistPatrolPost,
            DistCamp,
            DistForestEdge,
        ],
        seasonality: Seasonality::WetDry,
        terrain_scale: 1.0,
    }
}

/// A small park used throughout unit/integration tests and the quickstart
/// example; it keeps every pipeline stage fast while preserving the
/// structure of the real presets.
pub fn test_park_spec() -> ParkSpec {
    use FeatureKind::*;
    ParkSpec {
        name: "TestPark".to_string(),
        rows: 28,
        cols: 28,
        target_cells: 500,
        shape: BoundaryShape::Circular,
        n_rivers: 2,
        n_roads: 2,
        n_villages: 5,
        n_towns: 2,
        n_patrol_posts: 3,
        n_camps: 1,
        n_water_holes: 4,
        features: vec![
            Elevation,
            Slope,
            ForestCover,
            GrasslandCover,
            AnimalDensity,
            WaterDensity,
            DistRiver,
            DistRoad,
            DistBoundary,
            DistVillage,
            DistPatrolPost,
        ],
        seasonality: Seasonality::None,
        terrain_scale: 1.0,
    }
}

/// All three study-site presets in paper order.
pub fn study_sites() -> Vec<ParkSpec> {
    vec![mfnp_spec(), qenp_spec(), sws_spec()]
}

/// An LLC-scale synthetic park of `target_cells` 1×1 km cells
/// (50k–200k intended; anything ≥ 10k accepted) — the workload the
/// bitvector-vs-arena traversal comparison and the f32 plane's bandwidth
/// claims are measured on, since the study-site presets (≤ 4,613 cells)
/// keep every feature matrix comfortably cache-resident.
///
/// The spec scales MFNP's geography: the same full feature set (21 static
/// columns with the generator's realistic cross-correlations — animal
/// density driven by water/NPP/interior distance, vegetation covers
/// competing to sum to one, density layers derived from the same traced
/// rivers/roads the distance layers use), a circular boundary at MFNP's
/// fill ratio, and infrastructure counts grown with the square root of
/// the area so rivers/roads/posts stay realistically sparse.
pub fn llc_park_spec(target_cells: usize) -> ParkSpec {
    assert!(
        target_cells >= 10_000,
        "LLC-scale parks start at 10k cells; use the study-site presets below that"
    );
    // MFNP's bounding-box fill: 4,613 cells in an 82×82 grid.
    let mfnp = mfnp_spec();
    let fill = mfnp.target_cells as f64 / f64::from(mfnp.rows * mfnp.cols);
    let side = (target_cells as f64 / fill).sqrt().ceil() as u32;
    let scale = (target_cells as f64 / mfnp.target_cells as f64).sqrt();
    let grown = |n: usize| ((n as f64 * scale).round() as usize).max(n);
    ParkSpec {
        name: format!("LLC-{}k", target_cells.div_ceil(1000)),
        rows: side,
        cols: side,
        target_cells,
        shape: BoundaryShape::Circular,
        n_rivers: grown(mfnp.n_rivers),
        n_roads: grown(mfnp.n_roads),
        n_villages: grown(mfnp.n_villages),
        n_towns: grown(mfnp.n_towns),
        n_patrol_posts: grown(mfnp.n_patrol_posts),
        n_camps: grown(mfnp.n_camps),
        n_water_holes: grown(mfnp.n_water_holes),
        features: mfnp.features,
        seasonality: Seasonality::None,
        // One landscape, not a tiling of MFNP-sized patches: terrain
        // length scales grow with the park side.
        terrain_scale: scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_feature_counts_match_table1_minus_coverage() {
        // Table I counts include the dynamic previous-coverage covariate.
        assert_eq!(mfnp_spec().features.len() + 1, 22);
        assert_eq!(qenp_spec().features.len() + 1, 19);
        assert_eq!(sws_spec().features.len() + 1, 21);
    }

    #[test]
    fn cell_targets_match_table1() {
        assert_eq!(mfnp_spec().target_cells, 4_613);
        assert_eq!(qenp_spec().target_cells, 2_522);
        assert_eq!(sws_spec().target_cells, 3_750);
    }

    #[test]
    fn cell_targets_fit_bounding_boxes() {
        for spec in study_sites() {
            assert!(spec.target_cells <= (spec.rows as usize) * (spec.cols as usize));
        }
    }

    #[test]
    fn llc_spec_scales_mfnp_geography() {
        let spec = llc_park_spec(50_000);
        assert_eq!(spec.target_cells, 50_000);
        assert!(spec.rows as usize * spec.cols as usize >= 50_000);
        assert_eq!(spec.features.len(), mfnp_spec().features.len());
        assert_eq!(spec.name, "LLC-50k");
        // Infrastructure grows sublinearly with area (√ scaling) but never
        // below the MFNP baseline.
        let scale = (50_000f64 / mfnp_spec().target_cells as f64).sqrt();
        assert_eq!(
            spec.n_patrol_posts,
            (10.0 * scale).round() as usize,
            "posts scale with √area"
        );
        assert!(spec.n_rivers >= mfnp_spec().n_rivers);
        let bigger = llc_park_spec(200_000);
        assert!(bigger.n_patrol_posts > spec.n_patrol_posts);
        assert!(bigger.rows > spec.rows);
    }

    #[test]
    #[should_panic(expected = "LLC-scale parks start at 10k cells")]
    fn llc_spec_rejects_small_parks() {
        let _ = llc_park_spec(500);
    }

    #[test]
    fn only_sws_is_seasonal() {
        assert_eq!(mfnp_spec().seasonality, Seasonality::None);
        assert_eq!(qenp_spec().seasonality, Seasonality::None);
        assert_eq!(sws_spec().seasonality, Seasonality::WetDry);
    }
}
