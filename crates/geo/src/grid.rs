//! Discretisation of a protected area into 1×1 km grid cells.
//!
//! The paper discretises each park into 1×1 km cells (Sec. III-B). A
//! [`Grid`] describes the bounding rectangle of the study region; a park is
//! the subset of cells inside the park boundary (the *mask*, see
//! [`crate::park::Park`]). Cells are addressed either by `(row, col)`
//! coordinates or by a dense [`CellId`] index used everywhere downstream
//! (feature matrices, labels, risk maps).

use serde::{Deserialize, Serialize};

/// Dense identifier of a grid cell within a [`Grid`].
///
/// Cell ids enumerate the full bounding rectangle in row-major order; park
/// code normally works with the subset of ids for which the park mask is
/// true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// Underlying dense index as `usize` (for indexing slices).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rectangular grid of 1×1 km cells covering the study region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    rows: u32,
    cols: u32,
}

impl Grid {
    /// Create a grid with the given number of rows and columns.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Self { rows, cols }
    }

    /// Number of rows (north-south extent in km).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (east-west extent in km).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of cells in the bounding rectangle.
    #[inline]
    pub fn len(&self) -> usize {
        (self.rows as usize) * (self.cols as usize)
    }

    /// True when the grid has no cells (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert `(row, col)` to a dense cell id.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn cell(&self, row: u32, col: u32) -> CellId {
        assert!(row < self.rows && col < self.cols, "cell out of bounds");
        CellId(row * self.cols + col)
    }

    /// Convert `(row, col)` to a cell id, returning `None` when out of bounds.
    #[inline]
    pub fn try_cell(&self, row: i64, col: i64) -> Option<CellId> {
        if row >= 0 && col >= 0 && (row as u32) < self.rows && (col as u32) < self.cols {
            Some(CellId(row as u32 * self.cols + col as u32))
        } else {
            None
        }
    }

    /// Convert a cell id back to `(row, col)`.
    #[inline]
    pub fn coords(&self, cell: CellId) -> (u32, u32) {
        let row = cell.0 / self.cols;
        let col = cell.0 % self.cols;
        debug_assert!(row < self.rows);
        (row, col)
    }

    /// Centre of a cell in kilometres from the grid origin (south-west corner).
    #[inline]
    pub fn centre_km(&self, cell: CellId) -> (f64, f64) {
        let (row, col) = self.coords(cell);
        (row as f64 + 0.5, col as f64 + 0.5)
    }

    /// Euclidean distance in kilometres between the centres of two cells.
    #[inline]
    pub fn distance_km(&self, a: CellId, b: CellId) -> f64 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        let dr = ar as f64 - br as f64;
        let dc = ac as f64 - bc as f64;
        (dr * dr + dc * dc).sqrt()
    }

    /// Iterate over every cell id of the bounding rectangle in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.len() as u32).map(CellId)
    }

    /// The 4-neighbourhood (von Neumann) of a cell, clipped to the grid.
    pub fn neighbours4(&self, cell: CellId) -> Vec<CellId> {
        let (row, col) = self.coords(cell);
        let (row, col) = (row as i64, col as i64);
        [(-1, 0), (1, 0), (0, -1), (0, 1)]
            .iter()
            .filter_map(|&(dr, dc)| self.try_cell(row + dr, col + dc))
            .collect()
    }

    /// The 8-neighbourhood (Moore) of a cell, clipped to the grid.
    ///
    /// Each entry is returned with the step length in kilometres (1 for the
    /// four cardinal moves, √2 for the diagonals), which is what the patrol
    /// simulator and the distance transform need.
    pub fn neighbours8(&self, cell: CellId) -> Vec<(CellId, f64)> {
        let (row, col) = self.coords(cell);
        let (row, col) = (row as i64, col as i64);
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                if let Some(n) = self.try_cell(row + dr, col + dc) {
                    let step = if dr != 0 && dc != 0 {
                        std::f64::consts::SQRT_2
                    } else {
                        1.0
                    };
                    out.push((n, step));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip() {
        let g = Grid::new(7, 11);
        for r in 0..7 {
            for c in 0..11 {
                let id = g.cell(r, c);
                assert_eq!(g.coords(id), (r, c));
            }
        }
    }

    #[test]
    fn len_matches_dims() {
        let g = Grid::new(13, 9);
        assert_eq!(g.len(), 117);
        assert_eq!(g.cells().count(), 117);
    }

    #[test]
    fn try_cell_rejects_out_of_bounds() {
        let g = Grid::new(4, 4);
        assert!(g.try_cell(-1, 0).is_none());
        assert!(g.try_cell(0, -1).is_none());
        assert!(g.try_cell(4, 0).is_none());
        assert!(g.try_cell(0, 4).is_none());
        assert!(g.try_cell(3, 3).is_some());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cell_panics_out_of_bounds() {
        let g = Grid::new(4, 4);
        let _ = g.cell(4, 0);
    }

    #[test]
    fn corner_neighbourhood_sizes() {
        let g = Grid::new(5, 5);
        assert_eq!(g.neighbours4(g.cell(0, 0)).len(), 2);
        assert_eq!(g.neighbours4(g.cell(2, 2)).len(), 4);
        assert_eq!(g.neighbours8(g.cell(0, 0)).len(), 3);
        assert_eq!(g.neighbours8(g.cell(2, 2)).len(), 8);
    }

    #[test]
    fn neighbour_steps_are_metric() {
        let g = Grid::new(5, 5);
        for (n, step) in g.neighbours8(g.cell(2, 2)) {
            let d = g.distance_km(g.cell(2, 2), n);
            assert!((d - step).abs() < 1e-12);
        }
    }

    #[test]
    fn centre_km_is_offset_by_half() {
        let g = Grid::new(3, 3);
        assert_eq!(g.centre_km(g.cell(0, 0)), (0.5, 0.5));
        assert_eq!(g.centre_km(g.cell(2, 1)), (2.5, 1.5));
    }

    #[test]
    fn distance_symmetry() {
        let g = Grid::new(10, 10);
        let a = g.cell(1, 2);
        let b = g.cell(7, 9);
        assert!((g.distance_km(a, b) - g.distance_km(b, a)).abs() < 1e-12);
    }
}
