//! # paws-geo
//!
//! Grid geometry and synthetic protected-area landscapes for the PAWS
//! reproduction.
//!
//! The paper's pipeline starts from GIS layers of three real protected areas
//! (Murchison Falls NP, Queen Elizabeth NP, Srepok Wildlife Sanctuary).
//! Those layers are not publicly available, so this crate generates synthetic
//! parks with the same structure: a 1×1 km cell grid, an irregular boundary,
//! terrain / hydrology / infrastructure objects, and the static geospatial
//! feature columns of Sec. III-B.
//!
//! Entry points:
//! * [`grid::Grid`] — the 1×1 km discretisation.
//! * [`park::Park::generate`] — build a synthetic park from a [`park::ParkSpec`].
//! * [`parks`] — presets matching MFNP / QENP / SWS (Table I).

pub mod distance;
pub mod features;
pub mod grid;
pub mod noise;
pub mod park;
pub mod parks;

pub use features::{FeatureKind, FeatureTable};
pub use grid::{CellId, Grid};
pub use park::{BoundaryShape, Park, ParkSpec, Seasonality};
