//! Deterministic fractal value noise used to synthesise terrain layers.
//!
//! The real PAWS deployments consume GIS rasters (elevation, forest cover,
//! net primary productivity, …) provided by the conservation NGOs. Those
//! rasters are not publicly available, so the synthetic parks generate
//! spatially-correlated layers from seeded fractal value noise: smooth at
//! large scales with progressively finer detail, which is what makes the
//! learned models face realistic spatial autocorrelation rather than i.i.d.
//! noise.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seeded fractal value-noise field over a 2-D domain.
#[derive(Debug, Clone)]
pub struct FractalNoise {
    /// Lattice of random gradients per octave; octave o has lattice spacing
    /// `base_scale / 2^o`.
    octaves: Vec<NoiseOctave>,
}

#[derive(Debug, Clone)]
struct NoiseOctave {
    /// Lattice spacing in km.
    scale: f64,
    /// Amplitude of this octave.
    amplitude: f64,
    /// Random values on the lattice, indexed by hashed lattice coordinates.
    lattice: Vec<f64>,
    lattice_cols: usize,
    lattice_rows: usize,
}

impl FractalNoise {
    /// Build a noise field covering a `rows × cols` km domain.
    ///
    /// * `base_scale` — wavelength of the coarsest octave in km.
    /// * `octaves` — number of octaves; each halves the wavelength and the
    ///   amplitude (persistence 0.5).
    pub fn new(seed: u64, rows: u32, cols: u32, base_scale: f64, octaves: usize) -> Self {
        assert!(base_scale > 0.0, "base_scale must be positive");
        assert!(octaves > 0, "need at least one octave");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(octaves);
        let mut scale = base_scale;
        let mut amplitude = 1.0;
        for _ in 0..octaves {
            let lattice_rows = ((rows as f64 / scale).ceil() as usize) + 2;
            let lattice_cols = ((cols as f64 / scale).ceil() as usize) + 2;
            let lattice: Vec<f64> = (0..lattice_rows * lattice_cols)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            layers.push(NoiseOctave {
                scale,
                amplitude,
                lattice,
                lattice_cols,
                lattice_rows,
            });
            scale = (scale / 2.0).max(1.0);
            amplitude *= 0.5;
        }
        Self { octaves: layers }
    }

    /// Sample the noise field at a point given in km; output is roughly in
    /// `[-1, 1]` (normalised by the total amplitude).
    pub fn sample(&self, row_km: f64, col_km: f64) -> f64 {
        let mut total = 0.0;
        let mut norm = 0.0;
        for oct in &self.octaves {
            total += oct.amplitude * oct.sample(row_km, col_km);
            norm += oct.amplitude;
        }
        total / norm
    }

    /// Sample and rescale to `[0, 1]`.
    pub fn sample_unit(&self, row_km: f64, col_km: f64) -> f64 {
        (self.sample(row_km, col_km) + 1.0) / 2.0
    }
}

impl NoiseOctave {
    fn lattice_value(&self, r: usize, c: usize) -> f64 {
        let r = r.min(self.lattice_rows - 1);
        let c = c.min(self.lattice_cols - 1);
        self.lattice[r * self.lattice_cols + c]
    }

    fn sample(&self, row_km: f64, col_km: f64) -> f64 {
        let r = row_km / self.scale;
        let c = col_km / self.scale;
        let r0 = r.floor().max(0.0) as usize;
        let c0 = c.floor().max(0.0) as usize;
        let fr = smoothstep(r - r.floor());
        let fc = smoothstep(c - c.floor());
        let v00 = self.lattice_value(r0, c0);
        let v01 = self.lattice_value(r0, c0 + 1);
        let v10 = self.lattice_value(r0 + 1, c0);
        let v11 = self.lattice_value(r0 + 1, c0 + 1);
        let top = lerp(v00, v01, fc);
        let bottom = lerp(v10, v11, fc);
        lerp(top, bottom, fr)
    }
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[inline]
fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = FractalNoise::new(7, 50, 50, 16.0, 4);
        let b = FractalNoise::new(7, 50, 50, 16.0, 4);
        for &(r, c) in &[(0.5, 0.5), (10.2, 33.7), (49.9, 0.1)] {
            assert_eq!(a.sample(r, c), b.sample(r, c));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FractalNoise::new(1, 50, 50, 16.0, 4);
        let b = FractalNoise::new(2, 50, 50, 16.0, 4);
        let pa = a.sample(25.0, 25.0);
        let pb = b.sample(25.0, 25.0);
        assert_ne!(pa, pb);
    }

    #[test]
    fn samples_bounded() {
        let n = FractalNoise::new(3, 40, 60, 12.0, 5);
        for r in 0..40 {
            for c in 0..60 {
                let v = n.sample(r as f64 + 0.5, c as f64 + 0.5);
                assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
                let u = n.sample_unit(r as f64 + 0.5, c as f64 + 0.5);
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn spatially_smooth_at_small_offsets() {
        // Value noise interpolates between lattice points, so moving by a
        // fraction of a km must change the value by much less than the full
        // dynamic range.
        let n = FractalNoise::new(11, 60, 60, 20.0, 3);
        let base = n.sample(30.0, 30.0);
        let near = n.sample(30.1, 30.05);
        assert!((base - near).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "octave")]
    fn zero_octaves_rejected() {
        let _ = FractalNoise::new(0, 10, 10, 4.0, 0);
    }
}
