//! Synthetic protected-area generation.
//!
//! Real PAWS uses GIS shapefiles and GeoTIFF layers supplied by UWA / WCS /
//! WWF that are not publicly released. This module builds a synthetic park
//! with the same *structure*: an irregular park boundary on a 1×1 km grid,
//! terrain (elevation / slope / cover), hydrology (rivers, water holes),
//! infrastructure (roads, villages, towns, patrol posts, ranger camps), and
//! ecological layers (animal density, NPP). Every generated object feeds the
//! same distance/direct feature columns the paper describes, so the learned
//! models see the same kind of spatially-correlated, post-biased data.

use crate::distance::{density_within, distance_to_nearest};
use crate::features::{FeatureKind, FeatureTable};
use crate::grid::{CellId, Grid};
use crate::noise::FractalNoise;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Seasonal regime of a park.
///
/// SWS in Cambodia has a pronounced wet/dry cycle (rivers become impassable
/// in the wet season and poaching shifts geographically); the Ugandan parks
/// are treated as non-seasonal, matching Sec. III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Seasonality {
    /// No seasonal structure.
    None,
    /// Alternating wet and dry seasons; the attack model shifts north (dry)
    /// and south (wet) as reported by the SWS rangers.
    WetDry,
}

/// Shape of the park boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BoundaryShape {
    /// Roughly circular (MFNP: "circular with a more protected core").
    Circular,
    /// Elongated ellipse (QENP: "the shape of QENP is long").
    Elongated {
        /// Ratio of the long axis to the short axis (> 1).
        aspect: f64,
    },
}

/// Specification of a synthetic park; see [`crate::parks`] for the presets
/// matching the three study sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParkSpec {
    /// Park name used in reports.
    pub name: String,
    /// Grid rows (north-south km).
    pub rows: u32,
    /// Grid columns (east-west km).
    pub cols: u32,
    /// Number of 1×1 km cells inside the park boundary (Table I).
    pub target_cells: usize,
    /// Boundary shape.
    pub shape: BoundaryShape,
    /// Number of rivers.
    pub n_rivers: usize,
    /// Number of roads crossing the park.
    pub n_roads: usize,
    /// Number of villages just outside the boundary.
    pub n_villages: usize,
    /// Number of towns further outside the boundary.
    pub n_towns: usize,
    /// Number of patrol posts (Fig. 11 shows posts around the boundary).
    pub n_patrol_posts: usize,
    /// Number of ranger camps in the interior.
    pub n_camps: usize,
    /// Number of water holes.
    pub n_water_holes: usize,
    /// Static feature columns to generate for this park.
    pub features: Vec<FeatureKind>,
    /// Seasonal regime.
    pub seasonality: Seasonality,
    /// Multiplier on the terrain-noise length scales (elevation, cover,
    /// NPP, rainfall, wildlife, boundary wobble). `1.0` reproduces the
    /// study-site landscapes exactly; LLC-scale parks
    /// (`crate::parks::llc_park_spec`) grow it with the park side so a
    /// 270 km park remains one landscape with realistic long-range
    /// feature correlations instead of a patchwork of 24 km tiles.
    pub terrain_scale: f64,
}

/// A fully generated synthetic park.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Park {
    /// Park name.
    pub name: String,
    /// Bounding-rectangle grid.
    pub grid: Grid,
    /// `mask[cell] == true` when the cell is inside the park boundary.
    pub mask: Vec<bool>,
    /// In-park cell ids in row-major order; downstream datasets index cells
    /// by position in this list.
    pub cells: Vec<CellId>,
    /// Static feature layers over the full bounding rectangle.
    pub features: FeatureTable,
    /// Patrol post cells (inside the park, near the boundary).
    pub patrol_posts: Vec<CellId>,
    /// Ranger camps (inside the park interior).
    pub camps: Vec<CellId>,
    /// River cells.
    pub rivers: Vec<CellId>,
    /// Road cells.
    pub roads: Vec<CellId>,
    /// Village cells (outside the park).
    pub villages: Vec<CellId>,
    /// Town cells (outside the park, further away).
    pub towns: Vec<CellId>,
    /// Water hole cells.
    pub water_holes: Vec<CellId>,
    /// Boundary cells (in-park cells adjacent to outside).
    pub boundary: Vec<CellId>,
    /// Seasonal regime.
    pub seasonality: Seasonality,
    /// Position of each in-park cell in `cells`, or `u32::MAX` when outside.
    cell_pos: Vec<u32>,
}

impl Park {
    /// Generate a park from a spec with a deterministic seed.
    pub fn generate(spec: &ParkSpec, seed: u64) -> Self {
        ParkBuilder::new(spec, seed).build()
    }

    /// Number of in-park cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Is the cell inside the park boundary?
    #[inline]
    pub fn contains(&self, cell: CellId) -> bool {
        self.mask[cell.index()]
    }

    /// Position of an in-park cell within [`Park::cells`], if inside.
    #[inline]
    pub fn cell_position(&self, cell: CellId) -> Option<usize> {
        let p = self.cell_pos[cell.index()];
        if p == u32::MAX {
            None
        } else {
            Some(p as usize)
        }
    }

    /// Static feature vector of a cell (column order = `features.kinds()`).
    pub fn feature_row(&self, cell: CellId) -> Vec<f64> {
        self.features.row(cell.index())
    }

    /// Write the static feature vector of a cell into `out` without
    /// allocating (used by flat feature-matrix assembly).
    pub fn write_feature_row(&self, cell: CellId, out: &mut [f64]) {
        self.features.write_row(cell.index(), out);
    }

    /// Number of static feature columns.
    pub fn n_static_features(&self) -> usize {
        self.features.n_features()
    }

    /// In-park 8-neighbours of an in-park cell, with step lengths in km.
    pub fn park_neighbours(&self, cell: CellId) -> Vec<(CellId, f64)> {
        self.grid
            .neighbours8(cell)
            .into_iter()
            .filter(|(n, _)| self.contains(*n))
            .collect()
    }

    /// Fraction of in-park cells relative to the bounding rectangle.
    pub fn fill_ratio(&self) -> f64 {
        self.cells.len() as f64 / self.grid.len() as f64
    }
}

struct ParkBuilder<'a> {
    spec: &'a ParkSpec,
    rng: ChaCha8Rng,
    grid: Grid,
}

impl<'a> ParkBuilder<'a> {
    fn new(spec: &'a ParkSpec, seed: u64) -> Self {
        assert!(
            spec.target_cells <= (spec.rows as usize * spec.cols as usize),
            "target cell count exceeds the bounding rectangle"
        );
        assert!(
            spec.n_patrol_posts > 0,
            "a park needs at least one patrol post"
        );
        Self {
            spec,
            rng: ChaCha8Rng::seed_from_u64(seed),
            grid: Grid::new(spec.rows, spec.cols),
        }
    }

    fn build(mut self) -> Park {
        let mask = self.build_mask();
        let cells: Vec<CellId> = self.grid.cells().filter(|c| mask[c.index()]).collect();
        let mut cell_pos = vec![u32::MAX; self.grid.len()];
        for (i, c) in cells.iter().enumerate() {
            cell_pos[c.index()] = i as u32;
        }
        let boundary = self.boundary_cells(&mask);

        // Terrain noise fields; length scales grow with the spec's
        // terrain_scale so LLC-size parks stay one coherent landscape.
        let ts = self.spec.terrain_scale;
        let elevation_noise =
            FractalNoise::new(self.rng.gen(), self.spec.rows, self.spec.cols, 24.0 * ts, 5);
        let forest_noise =
            FractalNoise::new(self.rng.gen(), self.spec.rows, self.spec.cols, 14.0 * ts, 4);
        let scrub_noise =
            FractalNoise::new(self.rng.gen(), self.spec.rows, self.spec.cols, 10.0 * ts, 4);
        let npp_noise =
            FractalNoise::new(self.rng.gen(), self.spec.rows, self.spec.cols, 18.0 * ts, 4);
        let rain_noise =
            FractalNoise::new(self.rng.gen(), self.spec.rows, self.spec.cols, 30.0 * ts, 3);
        let animal_noise =
            FractalNoise::new(self.rng.gen(), self.spec.rows, self.spec.cols, 12.0 * ts, 4);

        let elevation: Vec<f64> = self
            .grid
            .cells()
            .map(|c| {
                let (r, k) = self.grid.centre_km(c);
                elevation_noise.sample_unit(r, k)
            })
            .collect();

        let rivers = self.trace_rivers(&mask, &elevation, &boundary);
        let water_holes = self.place_water_holes(&cells, &elevation);
        let roads = self.trace_roads(&boundary);
        let villages = self.place_outside(&mask, &boundary, self.spec.n_villages, 1.0, 4.0);
        let towns = self.place_outside(&mask, &boundary, self.spec.n_towns, 5.0, 12.0);
        let patrol_posts = self.place_patrol_posts(&mask, &cells, &boundary, &roads);
        let camps = self.place_camps(&cells, &boundary);

        // Distance transforms reused by several feature layers.
        let dist_boundary_outside = distance_to_nearest(&self.grid, &self.outside_cells(&mask));
        let dist_river = distance_to_nearest(&self.grid, &rivers);
        let dist_road = distance_to_nearest(&self.grid, &roads);
        let dist_village = distance_to_nearest(&self.grid, &villages);
        let dist_town = distance_to_nearest(&self.grid, &towns);
        let dist_post = distance_to_nearest(&self.grid, &patrol_posts);
        let dist_camp = distance_to_nearest(&self.grid, &camps);
        let dist_water_hole = distance_to_nearest(&self.grid, &water_holes);

        let slope = self.slope_of(&elevation);
        let ruggedness = self.ruggedness_of(&elevation);

        // Vegetation cover: three competing layers normalised to sum to one.
        let mut forest = Vec::with_capacity(self.grid.len());
        let mut scrub = Vec::with_capacity(self.grid.len());
        let mut grass = Vec::with_capacity(self.grid.len());
        for c in self.grid.cells() {
            let (r, k) = self.grid.centre_km(c);
            let f = forest_noise.sample_unit(r, k).powi(2) + 0.05;
            let s = scrub_noise.sample_unit(r, k).powi(2) + 0.05;
            let g = (1.0 - forest_noise.sample_unit(r, k)).powi(2) + 0.05;
            let total = f + s + g;
            forest.push(f / total);
            scrub.push(s / total);
            grass.push(g / total);
        }

        let npp: Vec<f64> = self
            .grid
            .cells()
            .map(|c| {
                let (r, k) = self.grid.centre_km(c);
                0.6 * npp_noise.sample_unit(r, k) + 0.4 * forest[c.index()]
            })
            .collect();
        let rainfall: Vec<f64> = self
            .grid
            .cells()
            .map(|c| {
                let (r, k) = self.grid.centre_km(c);
                rain_noise.sample_unit(r, k)
            })
            .collect();

        // Animal density: higher in the interior, near water, on productive
        // land; this is the main driver of where poachers set snares.
        let animal_density: Vec<f64> = self
            .grid
            .cells()
            .map(|c| {
                let i = c.index();
                let (r, k) = self.grid.centre_km(c);
                let interior = (dist_boundary_outside[i] / 10.0).min(1.0);
                let water =
                    (-dist_water_hole[i] / 6.0).exp() * 0.5 + (-dist_river[i] / 8.0).exp() * 0.5;
                let base = animal_noise.sample_unit(r, k);
                (0.35 * base + 0.30 * interior + 0.20 * water + 0.15 * npp[i]).clamp(0.0, 1.0)
            })
            .collect();

        let water_density = {
            let mut sources = rivers.clone();
            sources.extend_from_slice(&water_holes);
            density_within(&self.grid, &sources, 3.0)
        };
        let river_density = density_within(&self.grid, &rivers, 3.0);
        let road_density = density_within(&self.grid, &roads, 3.0);

        // Forest edge: cells where forest cover crosses 0.5 between
        // neighbours.
        let forest_edge: Vec<CellId> = self
            .grid
            .cells()
            .filter(|c| {
                let here = forest[c.index()] >= 0.5;
                self.grid
                    .neighbours4(*c)
                    .iter()
                    .any(|n| (forest[n.index()] >= 0.5) != here)
            })
            .collect();
        let dist_forest_edge = distance_to_nearest(&self.grid, &forest_edge);

        let mut features = FeatureTable::new(self.grid.len());
        let finite = |v: Vec<f64>, cap: f64| -> Vec<f64> {
            v.into_iter()
                .map(|x| if x.is_finite() { x } else { cap })
                .collect()
        };
        let max_dist = (self.spec.rows + self.spec.cols) as f64;
        for kind in &self.spec.features {
            let column = match kind {
                FeatureKind::Elevation => elevation.clone(),
                FeatureKind::Slope => slope.clone(),
                FeatureKind::Ruggedness => ruggedness.clone(),
                FeatureKind::ForestCover => forest.clone(),
                FeatureKind::ScrubCover => scrub.clone(),
                FeatureKind::GrasslandCover => grass.clone(),
                FeatureKind::Npp => npp.clone(),
                FeatureKind::Rainfall => rainfall.clone(),
                FeatureKind::AnimalDensity => animal_density.clone(),
                FeatureKind::WaterDensity => water_density.clone(),
                FeatureKind::RiverDensity => river_density.clone(),
                FeatureKind::RoadDensity => road_density.clone(),
                FeatureKind::DistRiver => finite(dist_river.clone(), max_dist),
                FeatureKind::DistWaterHole => finite(dist_water_hole.clone(), max_dist),
                FeatureKind::DistRoad => finite(dist_road.clone(), max_dist),
                FeatureKind::DistBoundary => finite(dist_boundary_outside.clone(), max_dist),
                FeatureKind::DistVillage => finite(dist_village.clone(), max_dist),
                FeatureKind::DistTown => finite(dist_town.clone(), max_dist),
                FeatureKind::DistPatrolPost => finite(dist_post.clone(), max_dist),
                FeatureKind::DistCamp => finite(dist_camp.clone(), max_dist),
                FeatureKind::DistForestEdge => finite(dist_forest_edge.clone(), max_dist),
            };
            features.push(*kind, column);
        }

        Park {
            name: self.spec.name.clone(),
            grid: self.grid,
            mask,
            cells,
            features,
            patrol_posts,
            camps,
            rivers,
            roads,
            villages,
            towns,
            water_holes,
            boundary,
            seasonality: self.spec.seasonality,
            cell_pos,
        }
    }

    /// Build the park mask: a noise-perturbed ellipse scaled to hit the exact
    /// target cell count.
    fn build_mask(&mut self) -> Vec<bool> {
        let rows = self.spec.rows as f64;
        let cols = self.spec.cols as f64;
        let (cr, cc) = (rows / 2.0, cols / 2.0);
        let aspect = match self.spec.shape {
            BoundaryShape::Circular => 1.0,
            BoundaryShape::Elongated { aspect } => aspect.max(1.0),
        };
        let wobble = FractalNoise::new(
            self.rng.gen(),
            self.spec.rows,
            self.spec.cols,
            20.0 * self.spec.terrain_scale,
            3,
        );

        // Radial score of every cell: lower = closer to the park centre after
        // aspect scaling and boundary wobble. The `target_cells` cells with
        // the lowest score form the park, which guarantees an exact match
        // with Table I's cell counts while keeping an organic boundary.
        let mut scored: Vec<(f64, CellId)> = self
            .grid
            .cells()
            .map(|cell| {
                let (r, c) = self.grid.centre_km(cell);
                let dr = (r - cr) / rows;
                let dc = (c - cc) / (cols / aspect.max(1.0)).max(1.0) * (aspect.sqrt());
                let radial = (dr * dr + dc * dc).sqrt();
                let w = 0.12 * wobble.sample(r, c);
                (radial + w, cell)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut mask = vec![false; self.grid.len()];
        for (_, cell) in scored.iter().take(self.spec.target_cells) {
            mask[cell.index()] = true;
        }
        mask
    }

    fn outside_cells(&self, mask: &[bool]) -> Vec<CellId> {
        self.grid.cells().filter(|c| !mask[c.index()]).collect()
    }

    fn boundary_cells(&self, mask: &[bool]) -> Vec<CellId> {
        self.grid
            .cells()
            .filter(|c| {
                mask[c.index()]
                    && (self.grid.neighbours4(*c).iter().any(|n| !mask[n.index()])
                        || self.grid.neighbours4(*c).len() < 4)
            })
            .collect()
    }

    fn trace_rivers(
        &mut self,
        mask: &[bool],
        elevation: &[f64],
        boundary: &[CellId],
    ) -> Vec<CellId> {
        let mut rivers = Vec::new();
        let interior: Vec<CellId> = self.grid.cells().filter(|c| mask[c.index()]).collect();
        if interior.is_empty() {
            return rivers;
        }
        for _ in 0..self.spec.n_rivers {
            // Start at a relatively high cell and walk downhill with noise
            // until leaving the park or hitting a dead end.
            let mut best = *interior.choose(&mut self.rng).expect("non-empty interior");
            for _ in 0..20 {
                let cand = *interior.choose(&mut self.rng).expect("non-empty interior");
                if elevation[cand.index()] > elevation[best.index()] {
                    best = cand;
                }
            }
            let mut current = best;
            let max_len = (self.spec.rows + self.spec.cols) as usize;
            for _ in 0..max_len {
                rivers.push(current);
                let neigh = self.grid.neighbours8(current);
                let next = neigh
                    .iter()
                    .map(|(n, _)| (elevation[n.index()] + self.rng.gen_range(-0.03..0.03), *n))
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                    .map(|(_, n)| n);
                match next {
                    Some(n) if !rivers.contains(&n) => {
                        current = n;
                        if !mask[n.index()] || boundary.contains(&n) {
                            rivers.push(n);
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
        rivers.sort_unstable();
        rivers.dedup();
        rivers
    }

    fn place_water_holes(&mut self, cells: &[CellId], elevation: &[f64]) -> Vec<CellId> {
        let mut sorted: Vec<CellId> = cells.to_vec();
        sorted.sort_by(|a, b| elevation[a.index()].total_cmp(&elevation[b.index()]));
        let low = &sorted[..(sorted.len() / 3).max(1)];
        let mut out = Vec::new();
        for _ in 0..self.spec.n_water_holes {
            if let Some(&c) = low.choose(&mut self.rng) {
                out.push(c);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn trace_roads(&mut self, boundary: &[CellId]) -> Vec<CellId> {
        let mut roads = Vec::new();
        if boundary.len() < 2 {
            return roads;
        }
        for _ in 0..self.spec.n_roads {
            let a = *boundary.choose(&mut self.rng).expect("non-empty boundary");
            // Pick the end point far from the start so roads cross the park.
            let b = *boundary
                .iter()
                .max_by(|x, y| {
                    let da = self.grid.distance_km(a, **x) + self.rng.gen_range(0.0..6.0);
                    let db = self.grid.distance_km(a, **y) + self.rng.gen_range(0.0..6.0);
                    da.total_cmp(&db)
                })
                .expect("non-empty boundary");
            roads.extend(self.line_cells(a, b));
        }
        roads.sort_unstable();
        roads.dedup();
        roads
    }

    /// Rasterise the straight segment between two cell centres.
    fn line_cells(&self, a: CellId, b: CellId) -> Vec<CellId> {
        let (ar, ac) = self.grid.centre_km(a);
        let (br, bc) = self.grid.centre_km(b);
        let steps = ((ar - br).abs().max((ac - bc).abs()).ceil() as usize).max(1);
        (0..=steps)
            .filter_map(|s| {
                let t = s as f64 / steps as f64;
                let r = ar + (br - ar) * t;
                let c = ac + (bc - ac) * t;
                self.grid.try_cell(r.floor() as i64, c.floor() as i64)
            })
            .collect()
    }

    fn place_outside(
        &mut self,
        mask: &[bool],
        boundary: &[CellId],
        count: usize,
        min_km: f64,
        max_km: f64,
    ) -> Vec<CellId> {
        let dist_to_park: Vec<f64> = {
            let inside: Vec<CellId> = self.grid.cells().filter(|c| mask[c.index()]).collect();
            distance_to_nearest(&self.grid, &inside)
        };
        let candidates: Vec<CellId> = self
            .grid
            .cells()
            .filter(|c| {
                !mask[c.index()]
                    && dist_to_park[c.index()] >= min_km
                    && dist_to_park[c.index()] <= max_km
            })
            .collect();
        let mut out = Vec::new();
        for _ in 0..count {
            if let Some(&c) = candidates.choose(&mut self.rng) {
                out.push(c);
            } else if let Some(&c) = boundary.choose(&mut self.rng) {
                // Degenerate geometry (tiny test parks): fall back to the boundary.
                out.push(c);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Patrol posts sit inside the park near the boundary (and preferentially
    /// near roads), spread out by greedy max-min distance — mirroring Fig. 11.
    fn place_patrol_posts(
        &mut self,
        mask: &[bool],
        cells: &[CellId],
        boundary: &[CellId],
        roads: &[CellId],
    ) -> Vec<CellId> {
        let dist_road = distance_to_nearest(&self.grid, roads);
        let dist_outside: Vec<f64> = {
            // Mask lookup, not a per-cell scan of the in-park list — the
            // LLC-scale parks (50k+ cells) made the old `cells.contains`
            // filter quadratic in park size.
            let outside: Vec<CellId> = self.grid.cells().filter(|c| !mask[c.index()]).collect();
            if outside.is_empty() {
                vec![0.0; self.grid.len()]
            } else {
                distance_to_nearest(&self.grid, &outside)
            }
        };
        let mut candidates: Vec<CellId> = cells
            .iter()
            .copied()
            .filter(|c| dist_outside[c.index()] <= 4.0)
            .collect();
        if candidates.is_empty() {
            candidates = boundary.to_vec();
        }
        if candidates.is_empty() {
            candidates = cells.to_vec();
        }
        // Score candidates by proximity to roads so posts sit on access routes.
        candidates.sort_by(|a, b| dist_road[a.index()].total_cmp(&dist_road[b.index()]));
        let pool = &candidates[..candidates.len().min(candidates.len() / 2 + 1).max(1)];

        let mut posts: Vec<CellId> = Vec::with_capacity(self.spec.n_patrol_posts);
        let first = pool[self.rng.gen_range(0..pool.len())];
        posts.push(first);
        while posts.len() < self.spec.n_patrol_posts {
            // Greedy farthest-point placement.
            let next = pool
                .iter()
                .copied()
                .max_by(|a, b| {
                    let da: f64 = posts
                        .iter()
                        .map(|p| self.grid.distance_km(*a, *p))
                        .fold(f64::INFINITY, f64::min);
                    let db: f64 = posts
                        .iter()
                        .map(|p| self.grid.distance_km(*b, *p))
                        .fold(f64::INFINITY, f64::min);
                    da.total_cmp(&db)
                })
                .expect("non-empty candidate pool");
            if posts.contains(&next) {
                break;
            }
            posts.push(next);
        }
        posts
    }

    fn place_camps(&mut self, cells: &[CellId], boundary: &[CellId]) -> Vec<CellId> {
        let dist_boundary = distance_to_nearest(&self.grid, boundary);
        let mut interior: Vec<CellId> = cells
            .iter()
            .copied()
            .filter(|c| dist_boundary[c.index()] >= 3.0)
            .collect();
        if interior.is_empty() {
            interior = cells.to_vec();
        }
        let mut out = Vec::new();
        for _ in 0..self.spec.n_camps {
            if let Some(&c) = interior.choose(&mut self.rng) {
                out.push(c);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn slope_of(&self, elevation: &[f64]) -> Vec<f64> {
        self.grid
            .cells()
            .map(|c| {
                let here = elevation[c.index()];
                let neigh = self.grid.neighbours4(c);
                if neigh.is_empty() {
                    return 0.0;
                }
                neigh
                    .iter()
                    .map(|n| (elevation[n.index()] - here).abs())
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    fn ruggedness_of(&self, elevation: &[f64]) -> Vec<f64> {
        self.grid
            .cells()
            .map(|c| {
                let neigh = self.grid.neighbours8(c);
                if neigh.is_empty() {
                    return 0.0;
                }
                let here = elevation[c.index()];
                let mean: f64 = neigh.iter().map(|(n, _)| elevation[n.index()]).sum::<f64>()
                    / neigh.len() as f64;
                let var: f64 = neigh
                    .iter()
                    .map(|(n, _)| (elevation[n.index()] - mean).powi(2))
                    .sum::<f64>()
                    / neigh.len() as f64;
                (var.sqrt() + (here - mean).abs()) / 2.0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parks;

    fn tiny_spec() -> ParkSpec {
        ParkSpec {
            name: "tiny".to_string(),
            rows: 20,
            cols: 20,
            target_cells: 200,
            shape: BoundaryShape::Circular,
            n_rivers: 2,
            n_roads: 2,
            n_villages: 4,
            n_towns: 2,
            n_patrol_posts: 3,
            n_camps: 1,
            n_water_holes: 3,
            features: FeatureKind::all().to_vec(),
            seasonality: Seasonality::None,
            terrain_scale: 1.0,
        }
    }

    #[test]
    fn generates_exact_cell_count() {
        let park = Park::generate(&tiny_spec(), 42);
        assert_eq!(park.n_cells(), 200);
        assert_eq!(park.cells.len(), park.mask.iter().filter(|&&m| m).count());
    }

    #[test]
    fn cell_positions_are_consistent() {
        let park = Park::generate(&tiny_spec(), 42);
        for (i, &c) in park.cells.iter().enumerate() {
            assert_eq!(park.cell_position(c), Some(i));
            assert!(park.contains(c));
        }
        for c in park.grid.cells() {
            if !park.contains(c) {
                assert_eq!(park.cell_position(c), None);
            }
        }
    }

    #[test]
    fn features_match_spec_and_are_finite() {
        let park = Park::generate(&tiny_spec(), 7);
        assert_eq!(park.n_static_features(), FeatureKind::all().len());
        for &c in &park.cells {
            for v in park.feature_row(c) {
                assert!(v.is_finite(), "non-finite feature value");
            }
        }
    }

    #[test]
    fn patrol_posts_inside_park() {
        let park = Park::generate(&tiny_spec(), 3);
        assert_eq!(park.patrol_posts.len(), 3);
        for p in &park.patrol_posts {
            assert!(park.contains(*p), "patrol post outside park");
        }
    }

    #[test]
    fn villages_outside_park() {
        let park = Park::generate(&tiny_spec(), 5);
        assert!(!park.villages.is_empty());
        for v in &park.villages {
            assert!(!park.contains(*v), "village inside park");
        }
    }

    #[test]
    fn boundary_cells_touch_outside() {
        let park = Park::generate(&tiny_spec(), 11);
        assert!(!park.boundary.is_empty());
        for b in &park.boundary {
            assert!(park.contains(*b));
            let touches_outside = park.grid.neighbours4(*b).iter().any(|n| !park.contains(*n))
                || park.grid.neighbours4(*b).len() < 4;
            assert!(touches_outside);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = Park::generate(&tiny_spec(), 99);
        let b = Park::generate(&tiny_spec(), 99);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.patrol_posts, b.patrol_posts);
        assert_eq!(a.feature_row(a.cells[10]), b.feature_row(b.cells[10]));
    }

    #[test]
    fn different_seed_changes_landscape() {
        let a = Park::generate(&tiny_spec(), 1);
        let b = Park::generate(&tiny_spec(), 2);
        assert_ne!(a.feature_row(a.cells[0]), b.feature_row(b.cells[0]));
    }

    #[test]
    fn presets_have_table1_cell_counts() {
        // Keep this cheap: generate only the smallest preset here; the full
        // Table I check lives in the bench/integration tests.
        let spec = parks::qenp_spec();
        let park = Park::generate(&spec, 1);
        assert_eq!(park.n_cells(), 2522);
    }

    #[test]
    fn park_neighbours_stay_inside() {
        let park = Park::generate(&tiny_spec(), 13);
        for &c in park.cells.iter().take(50) {
            for (n, step) in park.park_neighbours(c) {
                assert!(park.contains(n));
                assert!((1.0..=std::f64::consts::SQRT_2 + 1e-12).contains(&step));
            }
        }
    }
}
