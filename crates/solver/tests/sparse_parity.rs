//! Property-based parity suite: the sparse revised simplex (the default
//! `solve_lp` engine) must agree with the dense tableau reference
//! (`solve_lp_dense`) on every randomized instance — same status, objective
//! within 1e-9 (relative), identical `require_usable` outcome — and the
//! budgeted entry points must be behavioural no-ops under an unlimited
//! budget. A cycling regression pins the Bland's-rule fallback.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use paws_solver::{
    solve_lp, solve_lp_budgeted, solve_lp_dense, solve_lp_dense_budgeted, solve_milp, ConstraintOp,
    LpEngine, MilpOptions, Model, Sense, SolveBudget, SolveStatus, SparseLp,
};

/// A random LP over a handful of bounded/unbounded variables and mixed-sense
/// rows — small enough that both engines run to a definitive status.
fn random_lp(seed: u64) -> Model {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(1..12);
    let mut m = Model::new(if rng.gen::<f64>() < 0.5 {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..n)
        .map(|i| {
            let lo = rng.gen_range(-3.0..2.0);
            let hi = if rng.gen::<f64>() < 0.3 {
                f64::INFINITY
            } else {
                lo + rng.gen_range(0.0..6.0)
            };
            m.add_continuous(&format!("x{i}"), lo, hi, rng.gen_range(-4.0..4.0))
        })
        .collect();
    for _ in 0..rng.gen_range(1..10) {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen::<f64>() < 0.6 {
                terms.push((v, rng.gen_range(-3.0..3.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let op = match rng.gen_range(0..4) {
            0 => ConstraintOp::Ge,
            1 => ConstraintOp::Eq,
            _ => ConstraintOp::Le,
        };
        m.add_constraint(&terms, op, rng.gen_range(-5.0..8.0));
    }
    m
}

fn objectives_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn sparse_agrees_with_dense_on_random_lps(seed in 0.0..100000.0f64) {
        let m = random_lp(seed as u64);
        let dense = solve_lp_dense(&m, None);
        let sparse = solve_lp(&m, None);
        prop_assert!(
            sparse.status == dense.status,
            "seed {seed}: sparse {:?} vs dense {:?}",
            sparse.status,
            dense.status
        );
        // require_usable must give the identical verdict on both engines.
        prop_assert!(
            sparse.require_usable().is_ok() == dense.require_usable().is_ok(),
            "seed {seed}: require_usable diverged"
        );
        if dense.status == SolveStatus::Optimal {
            prop_assert!(
                objectives_close(sparse.objective, dense.objective),
                "seed {seed}: sparse {} vs dense {}",
                sparse.objective,
                dense.objective
            );
            prop_assert!(
                m.is_feasible(&sparse.values, 1e-6),
                "seed {seed}: sparse point infeasible"
            );
        }
    }

    #[test]
    fn unlimited_budget_is_a_behavioural_noop_on_both_engines(seed in 0.0..100000.0f64) {
        let m = random_lp(seed as u64);
        let budget = SolveBudget::unlimited();
        let sparse_free = solve_lp(&m, None);
        let sparse_budgeted = solve_lp_budgeted(&m, None, &budget);
        prop_assert!(sparse_budgeted.status == sparse_free.status);
        prop_assert!(sparse_budgeted.objective == sparse_free.objective);
        prop_assert!(sparse_budgeted.values == sparse_free.values);
        let dense_free = solve_lp_dense(&m, None);
        let dense_budgeted = solve_lp_dense_budgeted(&m, None, &budget);
        prop_assert!(dense_budgeted.status == dense_free.status);
        prop_assert!(dense_budgeted.values == dense_free.values);
    }

    #[test]
    fn milp_engines_agree_on_random_knapsacks(seed in 0.0..100000.0f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed as u64 + 77);
        let n = rng.gen_range(2..9);
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(&format!("b{i}"), rng.gen_range(0.5..10.0)))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .map(|&v| (v, rng.gen_range(0.5..4.0)))
            .collect();
        let cap = rng.gen_range(1.0..8.0);
        m.add_constraint(&terms, ConstraintOp::Le, cap);
        let (sparse, _) = solve_milp(&m, &MilpOptions::default());
        let (dense, _) = solve_milp(
            &m,
            &MilpOptions {
                engine: LpEngine::Dense,
                ..MilpOptions::default()
            },
        );
        prop_assert!(sparse.status == dense.status, "seed {seed}");
        if dense.status == SolveStatus::Optimal {
            prop_assert!(
                objectives_close(sparse.objective, dense.objective),
                "seed {seed}: sparse {} vs dense {}",
                sparse.objective,
                dense.objective
            );
        }
    }
}

/// Beale's classic cycling LP: Dantzig pricing with naive tie-breaking
/// cycles forever; the stall-triggered Bland fallback (and the forced
/// Bland-only mode) must terminate at the optimum 0.05.
fn beale_model() -> Model {
    let mut m = Model::new(Sense::Maximize);
    let x1 = m.add_continuous("x1", 0.0, f64::INFINITY, 0.75);
    let x2 = m.add_continuous("x2", 0.0, f64::INFINITY, -150.0);
    let x3 = m.add_continuous("x3", 0.0, f64::INFINITY, 0.02);
    let x4 = m.add_continuous("x4", 0.0, f64::INFINITY, -6.0);
    m.add_constraint(
        &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        ConstraintOp::Le,
        0.0,
    );
    m.add_constraint(
        &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        ConstraintOp::Le,
        0.0,
    );
    m.add_constraint(&[(x3, 1.0)], ConstraintOp::Le, 1.0);
    m
}

#[test]
fn cycling_instance_terminates_via_bland_fallback() {
    let m = beale_model();
    let default_path = solve_lp(&m, None);
    assert_eq!(default_path.status, SolveStatus::Optimal);
    assert!((default_path.objective - 0.05).abs() < 1e-9);

    // Forced Bland-only run (stall limit zero): pure anti-cycling pricing
    // must reach the same optimum.
    let mut ws = SparseLp::new(&m);
    ws.set_stall_limit(0);
    let bland = ws.solve(None);
    assert_eq!(bland.solution.status, SolveStatus::Optimal);
    assert!((bland.solution.objective - 0.05).abs() < 1e-9);

    // And the dense reference agrees.
    let dense = solve_lp_dense(&m, None);
    assert_eq!(dense.status, SolveStatus::Optimal);
    assert!((dense.objective - 0.05).abs() < 1e-9);
}

#[test]
fn degraded_and_budget_exceeded_parity_under_starved_budgets() {
    // Feasible-at-start model: a zero deadline leaves a Degraded feasible
    // point on both engines.
    let mut feasible = Model::new(Sense::Maximize);
    let x = feasible.add_continuous("x", 0.0, 5.0, 1.0);
    feasible.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
    let budget = SolveBudget::with_time_limit(std::time::Duration::ZERO);
    let sparse = solve_lp_budgeted(&feasible, None, &budget);
    let dense = solve_lp_dense_budgeted(&feasible, None, &budget);
    assert_eq!(sparse.status, SolveStatus::Degraded);
    assert_eq!(dense.status, SolveStatus::Degraded);
    assert!(feasible.is_feasible(&sparse.values, 1e-6));

    // Phase-1 model (needs artificials): the same budget dies before
    // feasibility, surfacing BudgetExceeded on both engines.
    let mut phase1 = Model::new(Sense::Maximize);
    let y = phase1.add_continuous("y", 0.0, f64::INFINITY, 1.0);
    phase1.add_constraint(&[(y, 1.0)], ConstraintOp::Ge, 2.0);
    phase1.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 10.0);
    let sparse1 = solve_lp_budgeted(&phase1, None, &budget);
    let dense1 = solve_lp_dense_budgeted(&phase1, None, &budget);
    assert_eq!(sparse1.status, SolveStatus::BudgetExceeded);
    assert_eq!(dense1.status, SolveStatus::BudgetExceeded);
    assert_eq!(
        sparse1.require_usable().is_ok(),
        dense1.require_usable().is_ok()
    );
}

#[test]
fn iteration_cap_yields_degraded_feasible_point_like_dense() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0);
    let y = m.add_continuous("y", 0.0, f64::INFINITY, 5.0);
    m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
    m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
    m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
    let budget = SolveBudget {
        time_limit: None,
        max_lp_iterations: Some(1),
    };
    let sparse = solve_lp_budgeted(&m, None, &budget);
    let dense = solve_lp_dense_budgeted(&m, None, &budget);
    assert_eq!(sparse.status, SolveStatus::Degraded);
    assert_eq!(dense.status, SolveStatus::Degraded);
    assert!(m.is_feasible(&sparse.values, 1e-6));
    assert!(sparse.require_usable().is_ok());
}
