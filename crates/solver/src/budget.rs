//! Anytime solve budgets.
//!
//! The patrol planner runs inside a serving surface with a response
//! deadline; an adversarially slow instance (or a numerically unlucky
//! branch-and-bound) must not hang the caller. A [`SolveBudget`] bounds a
//! solve by wall-clock time and/or simplex iterations; when the budget is
//! exhausted the solvers return their best incumbent tagged
//! [`crate::model::SolveStatus::Degraded`] (or
//! [`crate::model::SolveStatus::BudgetExceeded`] when no usable point was
//! found in time) instead of running to completion.
//!
//! The default budget is unlimited, so budget-unaware callers see exactly
//! the pre-budget behaviour.

use std::time::{Duration, Instant};

/// Resource bounds for one solve. The default is unlimited on both axes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Wall-clock limit for the whole solve (shared by every LP relaxation
    /// inside branch-and-bound). `None` means no deadline.
    pub time_limit: Option<Duration>,
    /// Cap on simplex iterations *per LP solve*, applied on top of the
    /// solver's internal anti-cycling cap. `None` means the internal cap
    /// alone applies.
    pub max_lp_iterations: Option<usize>,
}

impl SolveBudget {
    /// No limits: solves behave exactly as if no budget existed.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Budget bounded by wall-clock time only.
    pub fn with_time_limit(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            max_lp_iterations: None,
        }
    }

    /// Convert the relative time limit into an absolute deadline, measured
    /// from now. A limit too large to represent is treated as no deadline.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.time_limit.and_then(|d| Instant::now().checked_add(d))
    }
}

/// True when `deadline` is set and has passed.
pub(crate) fn deadline_expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = SolveBudget::default();
        assert_eq!(b, SolveBudget::unlimited());
        assert!(b.deadline().is_none());
        assert!(!deadline_expired(b.deadline()));
    }

    #[test]
    fn zero_time_limit_expires_immediately() {
        let b = SolveBudget::with_time_limit(Duration::ZERO);
        assert!(deadline_expired(b.deadline()));
    }

    #[test]
    fn huge_time_limit_degrades_to_no_deadline() {
        let b = SolveBudget::with_time_limit(Duration::MAX);
        assert!(!deadline_expired(b.deadline()));
    }
}
