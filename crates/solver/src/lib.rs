//! # paws-solver
//!
//! A small, self-contained linear / mixed-binary optimisation toolkit: the
//! from-scratch substitute for the commercial MILP solver the paper's patrol
//! planner relies on.
//!
//! * [`model::Model`] — build variables, bounds, objective and constraints.
//! * [`simplex::solve_lp`] — dense two-phase primal simplex for the
//!   continuous relaxation.
//! * [`milp::solve_milp`] — branch-and-bound over the binary variables.
//! * [`budget::SolveBudget`] — anytime wall-clock / iteration budgets; an
//!   exhausted budget returns the best incumbent tagged
//!   [`model::SolveStatus::Degraded`] instead of hanging the caller.

pub mod budget;
pub mod milp;
pub mod model;
pub mod simplex;

pub use budget::SolveBudget;
pub use milp::{solve_milp, MilpOptions, MilpStats};
pub use model::{
    ConstraintOp, Model, Sense, Solution, SolveStatus, SolverError, VarKind, Variable,
};
pub use simplex::{solve_lp, solve_lp_budgeted};
