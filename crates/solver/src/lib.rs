//! # paws-solver
//!
//! A small, self-contained linear / mixed-binary optimisation toolkit: the
//! from-scratch substitute for the commercial MILP solver the paper's patrol
//! planner relies on.
//!
//! * [`model::Model`] — build variables, bounds, objective and constraints.
//! * [`revised::solve_lp`] — sparse revised simplex (LU-factorised basis,
//!   bounded variables, eta updates) for the continuous relaxation; the
//!   default engine at every scale.
//! * [`simplex::solve_lp_dense`] — the original dense two-phase tableau,
//!   retained as the parity reference for the sparse engine.
//! * [`milp::solve_milp`] — branch-and-bound over the binary variables,
//!   warm-starting each node's relaxation from its parent basis.
//! * [`budget::SolveBudget`] — anytime wall-clock / iteration budgets; an
//!   exhausted budget returns the best incumbent tagged
//!   [`model::SolveStatus::Degraded`] instead of hanging the caller.

pub mod budget;
pub mod csc;
pub mod lu;
pub mod milp;
pub mod model;
pub mod revised;
pub mod simplex;

pub use budget::SolveBudget;
pub use milp::{solve_milp, LpEngine, MilpOptions, MilpStats};
pub use model::{
    ConstraintOp, Model, Sense, Solution, SolveStatus, SolverError, VarKind, Variable,
};
pub use revised::{solve_lp, solve_lp_budgeted, BasisSnapshot, LpOutcome, SparseLp};
pub use simplex::{solve_lp_dense, solve_lp_dense_budgeted};
