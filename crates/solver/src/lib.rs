//! # paws-solver
//!
//! A small, self-contained linear / mixed-binary optimisation toolkit: the
//! from-scratch substitute for the commercial MILP solver the paper's patrol
//! planner relies on.
//!
//! * [`model::Model`] — build variables, bounds, objective and constraints.
//! * [`simplex::solve_lp`] — dense two-phase primal simplex for the
//!   continuous relaxation.
//! * [`milp::solve_milp`] — branch-and-bound over the binary variables.

pub mod milp;
pub mod model;
pub mod simplex;

pub use milp::{solve_milp, MilpOptions, MilpStats};
pub use model::{ConstraintOp, Model, Sense, Solution, SolveStatus, VarKind, Variable};
pub use simplex::solve_lp;
