//! Branch-and-bound for mixed binary programs.
//!
//! The patrol-planning MILP (problem P with a piecewise-linear objective)
//! needs binary variables only for the SOS2 encoding of non-concave PWL
//! pieces; all other decision variables (patrol effort, flows, λ weights)
//! are continuous. Branch-and-bound on the binaries is therefore
//! sufficient. Relaxations are solved by the sparse revised simplex of
//! [`crate::revised`] by default — one [`SparseLp`] workspace is built per
//! search and every node warm-starts from its parent's optimal basis — with
//! the dense tableau of [`crate::simplex`] selectable via
//! [`MilpOptions::engine`] for parity testing and benchmarking.

use std::rc::Rc;

use crate::budget::{deadline_expired, SolveBudget};
use crate::model::{Model, Sense, Solution, SolveStatus};
use crate::revised::{BasisSnapshot, SparseLp};
use crate::simplex::solve_lp_inner;

/// Which LP engine branch-and-bound uses for node relaxations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpEngine {
    /// Sparse revised simplex with a shared workspace and parent-basis warm
    /// starts — the default.
    #[default]
    Sparse,
    /// The dense tableau reference engine (solves every node from scratch).
    Dense,
}

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum number of explored nodes before returning the incumbent.
    pub max_nodes: usize,
    /// Absolute optimality gap at which a node is fathomed.
    pub gap_tolerance: f64,
    /// Integrality tolerance.
    pub int_tolerance: f64,
    /// Anytime budget for the whole search: one wall-clock deadline shared
    /// by every LP relaxation, plus an optional per-LP iteration cap. When
    /// it runs out the best incumbent is returned tagged
    /// [`SolveStatus::Degraded`] ([`SolveStatus::BudgetExceeded`] when no
    /// incumbent was found in time). Unlimited by default.
    pub budget: SolveBudget,
    /// Relaxation engine; [`LpEngine::Sparse`] unless stated otherwise.
    pub engine: LpEngine,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            max_nodes: 20_000,
            gap_tolerance: 1e-6,
            int_tolerance: 1e-6,
            budget: SolveBudget::unlimited(),
            engine: LpEngine::default(),
        }
    }
}

/// Statistics of a branch-and-bound run.
#[derive(Debug, Clone, Default)]
pub struct MilpStats {
    /// Number of explored nodes.
    pub nodes: usize,
    /// Number of LP relaxations solved.
    pub lp_solves: usize,
    /// Number of relaxations that successfully warm-started from their
    /// parent node's basis (always 0 on the dense engine).
    pub warm_starts: usize,
}

struct Node {
    bounds: Vec<(f64, f64)>,
    relaxation_bound: f64,
    /// Optimal basis of the parent relaxation, shared by both children.
    warm: Option<Rc<BasisSnapshot>>,
}

/// Solve a model whose binary variables must take integral values.
pub fn solve_milp(model: &Model, options: &MilpOptions) -> (Solution, MilpStats) {
    let binaries = model.binary_vars();
    let mut stats = MilpStats::default();
    let deadline = options.budget.deadline();
    let lp_cap = options.budget.max_lp_iterations;

    let root_bounds: Vec<(f64, f64)> = (0..model.n_vars())
        .map(|i| (model.vars[i].lower, model.vars[i].upper))
        .collect();

    // One sparse workspace per search: CSC build and solver scratch are
    // shared by every relaxation, and each node warm-starts from the basis
    // its parent left behind.
    let mut sparse_ws = match options.engine {
        LpEngine::Sparse => Some(SparseLp::new(model)),
        LpEngine::Dense => None,
    };
    let solve_relax = |ws: &mut Option<SparseLp>,
                       bounds: &[(f64, f64)],
                       warm: Option<&BasisSnapshot>,
                       stats: &mut MilpStats|
     -> (Solution, Option<Rc<BasisSnapshot>>) {
        stats.lp_solves += 1;
        match ws {
            Some(ws) => {
                let out = ws.solve_inner(Some(bounds), lp_cap, deadline, warm);
                if out.warm_started {
                    stats.warm_starts += 1;
                }
                (out.solution, out.basis.map(Rc::new))
            }
            None => (solve_lp_inner(model, Some(bounds), lp_cap, deadline), None),
        }
    };

    let (root, root_basis) = solve_relax(&mut sparse_ws, &root_bounds, None, &mut stats);
    match root.status {
        SolveStatus::Infeasible | SolveStatus::Unbounded | SolveStatus::BudgetExceeded => {
            return (root, stats)
        }
        _ => {}
    }
    if binaries.is_empty() {
        return (root, stats);
    }

    // Maximisation internally: convert sense so "better" means larger.
    let better = |a: f64, b: f64| match model.sense() {
        Sense::Maximize => a > b,
        Sense::Minimize => a < b,
    };

    // A Degraded root relaxation has no trustworthy bound; remember that
    // the budget already bit so the final status reports degradation.
    let mut budget_hit = root.status == SolveStatus::Degraded;
    let mut incumbent: Option<Solution> = None;
    let mut stack: Vec<Node> = vec![Node {
        bounds: root_bounds,
        relaxation_bound: root.objective,
        warm: root_basis,
    }];

    while let Some(node) = stack.pop() {
        if deadline_expired(deadline) {
            budget_hit = true;
            break;
        }
        if stats.nodes >= options.max_nodes {
            break;
        }
        stats.nodes += 1;

        // Bound-based fathoming against the incumbent.
        if let Some(inc) = &incumbent {
            let gap_ok = match model.sense() {
                Sense::Maximize => node.relaxation_bound <= inc.objective + options.gap_tolerance,
                Sense::Minimize => node.relaxation_bound >= inc.objective - options.gap_tolerance,
            };
            if gap_ok {
                continue;
            }
        }

        let (relax, relax_basis) = solve_relax(
            &mut sparse_ws,
            &node.bounds,
            node.warm.as_deref(),
            &mut stats,
        );
        if relax.status == SolveStatus::Infeasible {
            continue;
        }
        if matches!(
            relax.status,
            SolveStatus::Degraded | SolveStatus::BudgetExceeded
        ) {
            // An unfinished relaxation has neither a valid bound to fathom
            // with nor a branching point worth trusting: skip the node and
            // let the deadline check at the loop top stop the search.
            budget_hit = true;
            continue;
        }
        if let Some(inc) = &incumbent {
            if !better(relax.objective, inc.objective + 0.0) {
                continue;
            }
        }

        // Most fractional binary.
        let fractional = most_fractional(
            binaries.iter().map(|&v| (v, relax.value(v))),
            options.int_tolerance,
        );

        match fractional {
            None => {
                // Integral solution: candidate incumbent.
                let mut values = relax.values.clone();
                for &v in &binaries {
                    values[v.0] = values[v.0].round();
                }
                let objective = model.objective_value(&values);
                let candidate = Solution {
                    status: SolveStatus::Optimal,
                    objective,
                    values,
                };
                if incumbent
                    .as_ref()
                    .is_none_or(|inc| better(candidate.objective, inc.objective))
                {
                    incumbent = Some(candidate);
                }
            }
            Some((var, value)) => {
                // Branch: explore the side closer to the relaxation value last
                // (so it is popped first from the DFS stack).
                let mut zero = node.bounds.clone();
                zero[var.0] = (0.0, 0.0);
                let mut one = node.bounds.clone();
                one[var.0] = (1.0, 1.0);
                let (first, second) = if value >= 0.5 {
                    (zero, one)
                } else {
                    (one, zero)
                };
                stack.push(Node {
                    bounds: first,
                    relaxation_bound: relax.objective,
                    warm: relax_basis.clone(),
                });
                stack.push(Node {
                    bounds: second,
                    relaxation_bound: relax.objective,
                    warm: relax_basis,
                });
            }
        }
    }

    match incumbent {
        Some(mut sol) => {
            if budget_hit {
                sol.status = SolveStatus::Degraded;
            } else if stats.nodes >= options.max_nodes {
                sol.status = SolveStatus::LimitReached;
            }
            (sol, stats)
        }
        None => (
            Solution {
                status: if budget_hit {
                    SolveStatus::BudgetExceeded
                } else if stats.nodes >= options.max_nodes {
                    SolveStatus::LimitReached
                } else {
                    SolveStatus::Infeasible
                },
                objective: match model.sense() {
                    Sense::Maximize => f64::NEG_INFINITY,
                    Sense::Minimize => f64::INFINITY,
                },
                values: vec![0.0; model.n_vars()],
            },
            stats,
        ),
    }
}

/// The most fractional candidate (value nearest 0.5) among `values`, or
/// `None` when every value is integral within `tol`.
///
/// A non-finite relaxation value (a degenerate LP basis) is treated as
/// non-fractional and skipped — it carries no branching information, and it
/// used to panic the `partial_cmp().unwrap()` comparator. The surviving
/// comparison uses `total_cmp`, which cannot panic and keeps the original
/// `max_by` tie-breaking (the last of equally fractional candidates wins).
fn most_fractional<V: Copy>(values: impl Iterator<Item = (V, f64)>, tol: f64) -> Option<(V, f64)> {
    values
        .filter(|(_, x)| x.is_finite() && (x - x.round()).abs() > tol)
        .max_by(|a, b| {
            let fa = (a.1 - 0.5).abs();
            let fb = (b.1 - 0.5).abs();
            fb.total_cmp(&fa)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    #[test]
    fn most_fractional_skips_non_finite_and_picks_nearest_half() {
        // Regression: a NaN relaxation value panicked the branching
        // comparator; it must now be treated as non-fractional (skipped).
        let picked = most_fractional(
            [
                (0usize, 1.0),          // integral — filtered
                (1, f64::NAN),          // non-finite — skipped, not a panic
                (2, 0.9),               // fractional
                (3, f64::INFINITY),     // non-finite — skipped
                (4, 0.45),              // most fractional
                (5, f64::NEG_INFINITY), // non-finite — skipped
            ]
            .into_iter(),
            1e-6,
        );
        assert_eq!(picked, Some((4, 0.45)));
        // All-integral (or unusable) candidates mean "no branching var".
        assert_eq!(
            most_fractional([(0usize, 1.0), (1, f64::NAN)].into_iter(), 1e-6),
            None
        );
    }

    #[test]
    fn solves_small_knapsack() {
        // Knapsack: values 10, 13, 7; weights 5, 7, 4; capacity 9 -> pick items 1 and 3 (17).
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_binary("x1", 10.0);
        let x2 = m.add_binary("x2", 13.0);
        let x3 = m.add_binary("x3", 7.0);
        m.add_constraint(&[(x1, 5.0), (x2, 7.0), (x3, 4.0)], ConstraintOp::Le, 9.0);
        let (sol, stats) = solve_milp(&m, &MilpOptions::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 17.0).abs() < 1e-6);
        assert!((sol.value(x1) - 1.0).abs() < 1e-6);
        assert!((sol.value(x2) - 0.0).abs() < 1e-6);
        assert!((sol.value(x3) - 1.0).abs() < 1e-6);
        assert!(stats.nodes >= 1);
    }

    #[test]
    fn mixed_integer_with_continuous_part() {
        // max 4y + x  s.t. x <= 3.5, x + 10y <= 10, y binary.
        // y=1 -> x <= 0 -> obj 4; y=0 -> x <= 3.5 -> obj 3.5. Optimal y=1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 3.5, 1.0);
        let y = m.add_binary("y", 4.0);
        m.add_constraint(&[(x, 1.0), (y, 10.0)], ConstraintOp::Le, 10.0);
        let (sol, _) = solve_milp(&m, &MilpOptions::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6);
        assert!((sol.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 2.0, 1.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 5.0);
        let (sol, stats) = solve_milp(&m, &MilpOptions::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-6);
        assert_eq!(stats.lp_solves, 1);
    }

    #[test]
    fn infeasible_binary_problem_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        let (sol, _) = solve_milp(&m, &MilpOptions::default());
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn set_partitioning_exactly_one() {
        // Choose exactly one of three options, maximise value.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", 5.0);
        let c = m.add_binary("c", 3.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Eq, 1.0);
        let (sol, _) = solve_milp(&m, &MilpOptions::default());
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!((sol.value(b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn minimisation_branching_works() {
        // min 3a + 2b + 4c s.t. a + b + c >= 2 (binaries) -> pick b and a? 2+3=5 vs b+c=6, a+c=7 -> 5.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a", 3.0);
        let b = m.add_binary("b", 2.0);
        let c = m.add_binary("c", 4.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Ge, 2.0);
        let (sol, _) = solve_milp(&m, &MilpOptions::default());
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!((sol.value(a) - 1.0).abs() < 1e-6);
        assert!((sol.value(b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_limit_status() {
        // A 12-item knapsack with a node limit of 1 cannot finish.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(&format!("x{i}"), (i % 5) as f64 + 1.5))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 3) as f64 + 1.0))
            .collect();
        m.add_constraint(&terms, ConstraintOp::Le, 7.5);
        let options = MilpOptions {
            max_nodes: 1,
            ..MilpOptions::default()
        };
        let (sol, stats) = solve_milp(&m, &options);
        assert!(stats.nodes <= 2);
        assert!(sol.status == SolveStatus::LimitReached || sol.status == SolveStatus::Optimal);
    }

    #[test]
    fn generous_budget_reproduces_unbudgeted_milp_exactly() {
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_binary("x1", 10.0);
        let x2 = m.add_binary("x2", 13.0);
        let x3 = m.add_binary("x3", 7.0);
        m.add_constraint(&[(x1, 5.0), (x2, 7.0), (x3, 4.0)], ConstraintOp::Le, 9.0);
        let (free, free_stats) = solve_milp(&m, &MilpOptions::default());
        let options = MilpOptions {
            budget: crate::budget::SolveBudget::with_time_limit(std::time::Duration::from_secs(
                3600,
            )),
            ..MilpOptions::default()
        };
        let (budgeted, stats) = solve_milp(&m, &options);
        assert_eq!(budgeted.status, free.status);
        assert_eq!(budgeted.values, free.values);
        assert_eq!(budgeted.objective, free.objective);
        assert_eq!(stats.nodes, free_stats.nodes);
        assert_eq!(stats.lp_solves, free_stats.lp_solves);
    }

    #[test]
    fn expired_deadline_returns_budget_exceeded_without_hanging() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_binary(&format!("x{i}"), (i % 4) as f64 + 1.0))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 3) as f64 + 1.0))
            .collect();
        m.add_constraint(&terms, ConstraintOp::Le, 6.5);
        let options = MilpOptions {
            budget: crate::budget::SolveBudget::with_time_limit(std::time::Duration::ZERO),
            ..MilpOptions::default()
        };
        let (sol, _) = solve_milp(&m, &options);
        assert_eq!(sol.status, SolveStatus::BudgetExceeded);
    }

    #[test]
    fn starved_lp_iterations_surface_as_budget_degradation() {
        // With one simplex iteration per relaxation no node can be solved
        // to optimality; the search must still terminate with a typed
        // budget status rather than mis-reporting optimality.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 3.0);
        let y = m.add_binary("y", 2.0);
        m.add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Le, 3.0);
        let options = MilpOptions {
            budget: crate::budget::SolveBudget {
                time_limit: None,
                max_lp_iterations: Some(1),
            },
            ..MilpOptions::default()
        };
        let (sol, _) = solve_milp(&m, &options);
        assert!(
            matches!(
                sol.status,
                SolveStatus::Degraded | SolveStatus::BudgetExceeded
            ),
            "unexpected status {:?}",
            sol.status
        );
    }

    #[test]
    fn sparse_and_dense_engines_agree_and_sparse_warm_starts() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_binary(&format!("x{i}"), ((i * 7) % 11) as f64 + 0.5))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 3) % 5) as f64 + 1.0))
            .collect();
        m.add_constraint(&terms, ConstraintOp::Le, 11.5);
        let (sparse, sparse_stats) = solve_milp(&m, &MilpOptions::default());
        let (dense, dense_stats) = solve_milp(
            &m,
            &MilpOptions {
                engine: LpEngine::Dense,
                ..MilpOptions::default()
            },
        );
        assert_eq!(sparse.status, SolveStatus::Optimal);
        assert_eq!(dense.status, SolveStatus::Optimal);
        assert!(
            (sparse.objective - dense.objective).abs() < 1e-9,
            "sparse {} vs dense {}",
            sparse.objective,
            dense.objective
        );
        // The dense engine never warm-starts; the sparse engine should
        // reuse parent bases for most non-root relaxations.
        assert_eq!(dense_stats.warm_starts, 0);
        assert!(
            sparse_stats.lp_solves <= 1 || sparse_stats.warm_starts > 0,
            "expected warm starts in {sparse_stats:?}"
        );
    }

    #[test]
    fn larger_knapsack_matches_dynamic_programming() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 14;
        let values: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(1.0..20.0_f64).round())
            .collect();
        let weights: Vec<usize> = (0..n).map(|_| rng.gen_range(1..8)).collect();
        let capacity = 20usize;

        // DP over integer weights.
        let mut dp = vec![0.0f64; capacity + 1];
        for i in 0..n {
            for w in (weights[i]..=capacity).rev() {
                dp[w] = dp[w].max(dp[w - weights[i]] + values[i]);
            }
        }
        let best_dp = dp[capacity];

        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(&format!("x{i}"), values[i]))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, weights[i] as f64))
            .collect();
        m.add_constraint(&terms, ConstraintOp::Le, capacity as f64);
        let (sol, _) = solve_milp(&m, &MilpOptions::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(
            (sol.objective - best_dp).abs() < 1e-6,
            "milp={} dp={}",
            sol.objective,
            best_dp
        );
    }
}
