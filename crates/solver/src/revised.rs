//! Sparse revised simplex with direct bounded-variable handling.
//!
//! This is the default LP engine behind [`solve_lp`] / [`solve_lp_budgeted`]
//! and the MILP relaxations. Unlike the dense tableau of
//! [`crate::simplex`], it never materialises `B⁻¹A`: the basis is held as a
//! Markowitz LU factorisation ([`crate::lu`]) refreshed by product-form eta
//! updates, pricing reads the original columns through a CSC matrix
//! ([`crate::csc`]), and simple variable bounds are handled in the ratio
//! test (including bound flips) instead of being expanded into explicit
//! constraint rows. Work per iteration is proportional to the basis fill
//! and the number of structural non-zeros, not to `m·n`.
//!
//! Engine policy in one paragraph: Dantzig pricing by default, switching to
//! Bland's rule after [`STALL_LIMIT`] consecutive degenerate steps so
//! cycling cannot occur (and back once progress resumes); the basis is
//! refactorised every [`REFACTOR_EVERY`] eta updates, or early when an eta
//! pivot is small relative to its spike (the stability trigger); phase 1
//! introduces artificial columns only for rows whose slack-basis residual
//! violates the slack bounds. Deadline and iteration budgets behave exactly
//! like the dense path: `Degraded` is a primal-feasible interrupted point,
//! `BudgetExceeded` means feasibility was never established.

use std::time::Instant;

use crate::budget::{deadline_expired, SolveBudget};
use crate::csc::CscMatrix;
use crate::lu::{Eta, LuFactors};
use crate::model::{ConstraintOp, Model, Sense, Solution, SolveStatus};

/// Upper bounds at or above this value are treated as +∞ (dense-path parity).
const UNBOUNDED: f64 = 1e15;
const EPS: f64 = 1e-9;
/// Wall-clock deadline poll stride, matching the dense engine.
const DEADLINE_STRIDE: usize = 64;
/// Refactorise after this many product-form eta updates.
const REFACTOR_EVERY: usize = 100;
/// Stability trigger: an eta pivot below `STABILITY_REL · max|w|` (or below
/// the absolute floor) forces an early refactorisation before pivoting.
const STABILITY_REL: f64 = 1e-8;
const STABILITY_ABS: f64 = 1e-11;
/// Consecutive degenerate (zero-step) iterations before Bland's rule kicks
/// in. Reset as soon as a strictly improving step is taken.
const DEFAULT_STALL_LIMIT: usize = 60;
/// Ratio-test pivot tolerance.
const PIVOT_TOL: f64 = 1e-9;
/// Tolerance for accepting a warm-start basis as primal feasible.
const WARM_TOL: f64 = 1e-7;

/// Where a nonbasic variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VState {
    Basic,
    AtLower,
    AtUpper,
}

/// An opaque snapshot of a simplex basis, reusable to warm-start a later
/// solve of the *same* model under different bound overrides (the
/// branch-and-bound pattern). Snapshots never reference artificial columns.
#[derive(Debug, Clone)]
pub struct BasisSnapshot {
    basis: Vec<usize>,
    state: Vec<VState>,
}

impl BasisSnapshot {
    /// Build a snapshot from an explicit list of basic columns — structural
    /// indices `0..n_cols` followed by logical (slack) indices
    /// `n_cols..n_cols + n_rows` — one per row, with every other variable
    /// parked at its lower bound. Callers with structural knowledge (e.g. a
    /// column-generation master whose convexity rows each carry a
    /// known-feasible breakpoint column) use this to skip phase 1; the
    /// solver still validates the hint (non-singularity, primal
    /// feasibility, bound re-seating) and silently falls back to a cold
    /// start when it is wrong, so a bad hint costs time, never
    /// correctness. Returns `None` only when the shape is impossible:
    /// wrong count, an out-of-range index, or a repeated column.
    pub fn from_basic_columns(n_rows: usize, n_cols: usize, basic: &[usize]) -> Option<Self> {
        let n_base = n_cols + n_rows;
        if basic.len() != n_rows {
            return None;
        }
        let mut state = vec![VState::AtLower; n_base];
        for &c in basic {
            if c >= n_base || state[c] == VState::Basic {
                return None;
            }
            state[c] = VState::Basic;
        }
        Some(Self {
            basis: basic.to_vec(),
            state,
        })
    }

    /// The basic column indices, one per row (structural columns first,
    /// then logicals), in basis order.
    pub fn basic_columns(&self) -> &[usize] {
        &self.basis
    }
}

/// Result of a sparse LP solve: the familiar [`Solution`] plus the row
/// duals and the final basis.
#[derive(Debug, Clone)]
pub struct LpOutcome {
    /// Status, objective and primal values, exactly as [`solve_lp`] returns.
    pub solution: Solution,
    /// Row duals `π` (one per model constraint, in model row order),
    /// scaled to the model's own sense: the reduced cost of a column with
    /// objective `c` and entries `a` is `c − πᵀa`, positive meaning
    /// "improving" for `Maximize` and negative for `Minimize`. Meaningful
    /// when the status is `Optimal`; zeros otherwise.
    pub duals: Vec<f64>,
    /// Final basis, when it is warm-start reusable.
    pub basis: Option<BasisSnapshot>,
    /// Whether this solve reused a caller-supplied warm basis.
    pub warm_started: bool,
}

enum LoopExit {
    Optimal,
    Unbounded,
    Degraded,
    LimitReached,
    Singular,
}

enum RatioOutcome {
    Unbounded,
    BoundFlip(f64),
    /// `(basis position, step length, bound side the leaver hits)`
    Pivot(usize, f64, VState),
}

/// A reusable sparse-LP workspace over one [`Model`]: the CSC build and all
/// solver scratch are allocated once and reused across repeated solves with
/// different bound overrides (branch-and-bound nodes, column-generation
/// restricted masters re-built per round use one workspace per build).
#[derive(Debug)]
pub struct SparseLp {
    m: usize,
    n_struct: usize,
    a: CscMatrix,
    sense_sign: f64,
    obj_orig: Vec<f64>,
    rhs: Vec<f64>,
    row_ops: Vec<ConstraintOp>,
    model_bounds: Vec<(f64, f64)>,
    stall_limit: usize,

    // --- per-solve state -------------------------------------------------
    /// Bounds per total column (structural, logical, then artificials).
    bounds: Vec<(f64, f64)>,
    state: Vec<VState>,
    basis: Vec<usize>,
    x_basic: Vec<f64>,
    /// Row of each artificial column (total index `n_struct + m + t`).
    art_rows: Vec<usize>,
    cost: Vec<f64>,
    lu: LuFactors,
    etas: Vec<Eta>,

    // --- scratch ---------------------------------------------------------
    scratch: Vec<f64>,
    w_vals: Vec<f64>,
    w_nz: Vec<usize>,
    duals_y: Vec<f64>,
    banned: Vec<usize>,
}

impl SparseLp {
    /// Build a workspace for a model. The model's structure (columns,
    /// objective, row senses) is fixed at this point; only bounds may vary
    /// between solves, via overrides.
    pub fn new(model: &Model) -> Self {
        let m = model.n_constraints();
        let n_struct = model.n_vars();
        let a = CscMatrix::from_model(model);
        let sense_sign = match model.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let obj_orig: Vec<f64> = (0..n_struct).map(|i| model.vars[i].objective).collect();
        let rhs: Vec<f64> = model.constraints.iter().map(|c| c.rhs).collect();
        let row_ops: Vec<ConstraintOp> = model.constraints.iter().map(|c| c.op).collect();
        let model_bounds: Vec<(f64, f64)> = (0..n_struct)
            .map(|i| (model.vars[i].lower, model.vars[i].upper))
            .collect();
        Self {
            m,
            n_struct,
            a,
            sense_sign,
            obj_orig,
            rhs,
            row_ops,
            model_bounds,
            stall_limit: DEFAULT_STALL_LIMIT,
            bounds: Vec::new(),
            state: Vec::new(),
            basis: Vec::new(),
            x_basic: Vec::new(),
            art_rows: Vec::new(),
            cost: Vec::new(),
            lu: LuFactors::default(),
            etas: Vec::new(),
            scratch: vec![0.0; m],
            w_vals: vec![0.0; m],
            w_nz: Vec::new(),
            duals_y: vec![0.0; m],
            banned: Vec::new(),
        }
    }

    /// Number of model rows.
    pub fn n_rows(&self) -> usize {
        self.m
    }

    /// Number of structural columns.
    pub fn n_cols(&self) -> usize {
        self.n_struct
    }

    /// Override the degenerate-iteration threshold after which pricing
    /// falls back to Bland's rule. `0` forces Bland's rule from the first
    /// iteration — used by the anti-cycling regression tests; the default
    /// is tuned for throughput and needs no adjustment in normal use.
    pub fn set_stall_limit(&mut self, limit: usize) {
        self.stall_limit = limit;
    }

    /// Solve the LP (optionally with per-variable bound overrides), like
    /// [`solve_lp`] but reusing this workspace.
    pub fn solve(&mut self, bound_overrides: Option<&[(f64, f64)]>) -> LpOutcome {
        self.solve_inner(bound_overrides, None, None, None)
    }

    /// [`SparseLp::solve`] under a [`SolveBudget`], with the dense engine's
    /// semantics: `Degraded` carries the best primal-feasible point found
    /// in time, `BudgetExceeded` means feasibility was never established.
    pub fn solve_budgeted(
        &mut self,
        bound_overrides: Option<&[(f64, f64)]>,
        budget: &SolveBudget,
    ) -> LpOutcome {
        self.solve_inner(
            bound_overrides,
            budget.max_lp_iterations,
            budget.deadline(),
            None,
        )
    }

    /// Budgeted solve that additionally tries to start from `warm` (a basis
    /// returned by an earlier solve of the same workspace, typically the
    /// parent branch-and-bound node). A warm basis is used only when it is
    /// still non-singular and primal feasible under the new bounds; the
    /// solver silently falls back to a cold start otherwise.
    pub fn solve_warm(
        &mut self,
        bound_overrides: Option<&[(f64, f64)]>,
        budget: &SolveBudget,
        warm: Option<&BasisSnapshot>,
    ) -> LpOutcome {
        self.solve_inner(
            bound_overrides,
            budget.max_lp_iterations,
            budget.deadline(),
            warm,
        )
    }

    pub(crate) fn solve_inner(
        &mut self,
        bound_overrides: Option<&[(f64, f64)]>,
        iteration_cap: Option<usize>,
        deadline: Option<Instant>,
        warm: Option<&BasisSnapshot>,
    ) -> LpOutcome {
        let n = self.n_struct;
        let m = self.m;
        let n_base = n + m;

        // Effective structural bounds.
        let mut eff: Vec<(f64, f64)> = Vec::with_capacity(n_base);
        for i in 0..n {
            let (mut lo, mut hi) = self.model_bounds[i];
            if let Some(over) = bound_overrides {
                lo = lo.max(over[i].0);
                hi = hi.min(over[i].1);
            }
            if hi >= UNBOUNDED {
                hi = f64::INFINITY;
            }
            eff.push((lo, hi));
        }
        if eff.iter().any(|&(lo, hi)| lo > hi + EPS) {
            return self.outcome_infeasible();
        }
        // Logical (slack) bounds by row sense.
        for op in &self.row_ops {
            eff.push(match op {
                ConstraintOp::Le => (0.0, f64::INFINITY),
                ConstraintOp::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            });
        }
        self.bounds = eff;
        self.art_rows.clear();
        self.etas.clear();
        self.banned.clear();

        // A cold start may be needed twice: once up front, and once more if
        // a numerically singular refactorisation poisons a warm run.
        let mut tried_warm = false;
        for attempt in 0..2 {
            let use_warm = attempt == 0 && warm.is_some();
            let warm_ok = if use_warm {
                // Clamp nonbasic states onto the (possibly changed) bounds.
                self.try_warm_start(warm)
            } else {
                false
            };
            tried_warm = tried_warm || warm_ok;
            if !warm_ok && !self.cold_start() {
                // Even the slack/artificial crash basis failed to
                // factorise: numerically hopeless, mirror the dense
                // engine's "numerical failure reads as infeasible".
                return self.outcome_infeasible();
            }

            // ---- Phase 1 (only when artificials exist) ----------------
            if !self.art_rows.is_empty() {
                self.set_phase1_cost();
                match self.simplex_loop(iteration_cap, deadline) {
                    LoopExit::Degraded => return self.outcome_budget_exceeded(),
                    LoopExit::Unbounded => return self.outcome_infeasible(),
                    LoopExit::Singular => {
                        if attempt == 0 {
                            continue;
                        }
                        return self.outcome_infeasible();
                    }
                    LoopExit::Optimal | LoopExit::LimitReached => {}
                }
                let infeas: f64 = self
                    .basis
                    .iter()
                    .zip(&self.x_basic)
                    .filter(|(&b, _)| b >= n_base)
                    .map(|(_, &x)| x.abs())
                    .sum();
                if infeas > 1e-6 {
                    return self.outcome_infeasible();
                }
                // Pin every artificial to zero for phase 2.
                for t in 0..self.art_rows.len() {
                    self.bounds[n_base + t] = (0.0, 0.0);
                }
            }

            // ---- Phase 2 ----------------------------------------------
            self.set_phase2_cost();
            let status = match self.simplex_loop(iteration_cap, deadline) {
                LoopExit::Optimal => SolveStatus::Optimal,
                LoopExit::Unbounded => {
                    return LpOutcome {
                        solution: Solution {
                            status: SolveStatus::Unbounded,
                            objective: f64::INFINITY,
                            values: vec![0.0; n],
                        },
                        duals: vec![0.0; m],
                        basis: None,
                        warm_started: tried_warm,
                    };
                }
                LoopExit::Degraded => SolveStatus::Degraded,
                LoopExit::LimitReached => SolveStatus::LimitReached,
                LoopExit::Singular => {
                    if attempt == 0 {
                        continue;
                    }
                    return self.outcome_infeasible();
                }
            };

            // ---- Extraction -------------------------------------------
            let mut values = vec![0.0; n];
            for (j, value) in values.iter_mut().enumerate() {
                *value = match self.state[j] {
                    VState::AtLower => self.bounds[j].0,
                    VState::AtUpper => self.bounds[j].1,
                    VState::Basic => 0.0,
                };
            }
            for (pos, &b) in self.basis.iter().enumerate() {
                if b < n {
                    values[b] = self.x_basic[pos];
                }
            }
            let objective: f64 = self.obj_orig.iter().zip(&values).map(|(c, x)| c * x).sum();
            let duals = if status == SolveStatus::Optimal {
                self.compute_duals();
                self.duals_y.iter().map(|&y| self.sense_sign * y).collect()
            } else {
                vec![0.0; m]
            };
            let snapshot = if self.basis.iter().all(|&b| b < n_base) {
                Some(BasisSnapshot {
                    basis: self.basis.clone(),
                    state: self.state[..n_base].to_vec(),
                })
            } else {
                None
            };
            return LpOutcome {
                solution: Solution {
                    status,
                    objective,
                    values,
                },
                duals,
                basis: snapshot,
                warm_started: tried_warm,
            };
        }
        // Unreachable: the loop either returns or retries exactly once.
        self.outcome_infeasible()
    }

    // ---- start-up ------------------------------------------------------

    /// Try to install a warm basis: must reference no artificials, stay
    /// non-singular, and be primal feasible under the current bounds.
    fn try_warm_start(&mut self, warm: Option<&BasisSnapshot>) -> bool {
        let n_base = self.n_struct + self.m;
        let Some(snap) = warm else { return false };
        if snap.basis.len() != self.m
            || snap.state.len() != n_base
            || snap.basis.iter().any(|&b| b >= n_base)
        {
            return false;
        }
        self.basis = snap.basis.clone();
        self.state = snap.state.clone();
        self.art_rows.clear();
        // Re-seat nonbasic variables on finite bounds (a bound override may
        // have made the previously occupied side infinite).
        for j in 0..n_base {
            if self.state[j] == VState::Basic {
                continue;
            }
            let (lo, hi) = self.bounds[j];
            self.state[j] = match self.state[j] {
                VState::AtUpper if hi.is_finite() => VState::AtUpper,
                _ if lo.is_finite() => VState::AtLower,
                _ if hi.is_finite() => VState::AtUpper,
                _ => return false,
            };
        }
        if !self.refactorise() {
            return false;
        }
        // Primal feasible under the new bounds?
        self.basis.iter().zip(&self.x_basic).all(|(&b, &x)| {
            let (lo, hi) = self.bounds[b];
            x >= lo - WARM_TOL && x <= hi + WARM_TOL
        })
    }

    /// Slack crash basis, with artificial columns for rows whose residual
    /// violates the slack bounds. Returns false when even this basis fails
    /// to factorise (cannot happen structurally — it is an identity).
    fn cold_start(&mut self) -> bool {
        let n = self.n_struct;
        let m = self.m;
        let n_base = n + m;
        self.bounds.truncate(n_base);
        self.art_rows.clear();
        self.state.clear();
        // Structural lower bounds are always finite (model invariant), so
        // every structural variable can start at its lower bound.
        self.state.resize(n_base, VState::AtLower);
        // Residuals of the all-slack basis.
        let mut resid = self.rhs.clone();
        for j in 0..n {
            let xj = self.bounds[j].0;
            if xj != 0.0 {
                for (r, v) in self.a.col(j) {
                    resid[r] -= v * xj;
                }
            }
        }
        self.basis.clear();
        self.x_basic.clear();
        debug_assert_eq!(resid.len(), m);
        for (i, &r) in resid.iter().enumerate() {
            let logical = n + i;
            let (slo, shi) = self.bounds[logical];
            if r >= slo - EPS && r <= shi + EPS {
                self.state[logical] = VState::Basic;
                self.basis.push(logical);
                self.x_basic.push(r);
            } else {
                // Slack parks at the bound nearest the residual; an
                // artificial column absorbs the remainder.
                self.state[logical] = if r > shi {
                    VState::AtUpper
                } else {
                    VState::AtLower
                };
                if !self.state_bound_finite(logical) {
                    // Ge slack has no finite lower: park at upper instead.
                    self.state[logical] = VState::AtUpper;
                }
                let park = match self.state[logical] {
                    VState::AtLower => self.bounds[logical].0,
                    _ => self.bounds[logical].1,
                };
                let d = r - park;
                let art = n_base + self.art_rows.len();
                self.art_rows.push(i);
                self.bounds.push(if d >= 0.0 {
                    (0.0, f64::INFINITY)
                } else {
                    (f64::NEG_INFINITY, 0.0)
                });
                self.state.push(VState::Basic);
                self.basis.push(art);
                self.x_basic.push(d);
            }
        }
        self.refactorise()
    }

    fn state_bound_finite(&self, j: usize) -> bool {
        match self.state[j] {
            VState::AtLower => self.bounds[j].0.is_finite(),
            VState::AtUpper => self.bounds[j].1.is_finite(),
            VState::Basic => true,
        }
    }

    fn set_phase1_cost(&mut self) {
        let n_base = self.n_struct + self.m;
        self.cost.clear();
        self.cost.resize(n_base + self.art_rows.len(), 0.0);
        for (t, slot) in self.cost[n_base..].iter_mut().enumerate() {
            // Maximise −Σ|z|: a positive artificial costs −1, a negative +1.
            let positive = self.bounds[n_base + t].1 > 0.0;
            *slot = if positive { -1.0 } else { 1.0 };
        }
    }

    fn set_phase2_cost(&mut self) {
        let n_base = self.n_struct + self.m;
        self.cost.clear();
        self.cost.resize(n_base + self.art_rows.len(), 0.0);
        for j in 0..self.n_struct {
            self.cost[j] = self.sense_sign * self.obj_orig[j];
        }
    }

    // ---- linear algebra -------------------------------------------------

    /// Rebuild the LU factors from the current basis and recompute the
    /// basic values from scratch. Clears the eta file. Returns false on a
    /// singular basis.
    fn refactorise(&mut self) -> bool {
        let n = self.n_struct;
        let m = self.m;
        let n_base = n + m;
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        for &b in &self.basis {
            if b < n {
                cols.push(self.a.col(b).collect());
            } else if b < n_base {
                cols.push(vec![(b - n, 1.0)]);
            } else {
                cols.push(vec![(self.art_rows[b - n_base], 1.0)]);
            }
        }
        let Some(lu) = LuFactors::factorise(m, &cols) else {
            return false;
        };
        self.lu = lu;
        self.etas.clear();
        // x_B = B⁻¹ (b − N x_N); only structural nonbasics at non-zero
        // bounds contribute (logical/artificial nonbasics sit at zero).
        self.scratch.copy_from_slice(&self.rhs);
        for j in 0..n {
            if self.state[j] == VState::Basic {
                continue;
            }
            let xj = match self.state[j] {
                VState::AtLower => self.bounds[j].0,
                _ => self.bounds[j].1,
            };
            if xj != 0.0 {
                for (r, v) in self.a.col(j) {
                    self.scratch[r] -= v * xj;
                }
            }
        }
        self.x_basic.resize(m, 0.0);
        self.lu.ftran(&mut self.scratch, &mut self.x_basic);
        true
    }

    /// `w = B⁻¹ a_q` into `w_vals` (dense, by basis position) and `w_nz`.
    fn ftran_column(&mut self, q: usize) {
        let n = self.n_struct;
        let n_base = n + self.m;
        self.scratch.fill(0.0);
        if q < n {
            for (r, v) in self.a.col(q) {
                self.scratch[r] += v;
            }
        } else if q < n_base {
            self.scratch[q - n] = 1.0;
        } else {
            self.scratch[self.art_rows[q - n_base]] = 1.0;
        }
        self.lu.ftran(&mut self.scratch, &mut self.w_vals);
        for eta in &self.etas {
            let xp = self.w_vals[eta.p] / eta.pivot;
            if xp != 0.0 {
                for &(r, v) in &eta.entries {
                    self.w_vals[r] -= v * xp;
                }
            }
            self.w_vals[eta.p] = xp;
        }
        self.w_nz.clear();
        for (i, &v) in self.w_vals.iter().enumerate() {
            if v.abs() > STABILITY_ABS {
                self.w_nz.push(i);
            }
        }
    }

    /// `y = B⁻ᵀ c_B` into `duals_y` (by row), for the current `cost`.
    fn compute_duals(&mut self) {
        for (pos, &b) in self.basis.iter().enumerate() {
            self.scratch[pos] = self.cost[b];
        }
        for eta in self.etas.iter().rev() {
            let mut acc = self.scratch[eta.p];
            for &(r, v) in &eta.entries {
                acc -= v * self.scratch[r];
            }
            self.scratch[eta.p] = acc / eta.pivot;
        }
        self.lu.btran(&mut self.scratch, &mut self.duals_y);
    }

    // ---- the iteration loop ---------------------------------------------

    fn simplex_loop(
        &mut self,
        iteration_cap: Option<usize>,
        deadline: Option<Instant>,
    ) -> LoopExit {
        let n_total = self.bounds.len();
        let internal_cap = 20_000usize.max(50 * (self.m + n_total));
        let max_iterations = iteration_cap.map_or(internal_cap, |c| c.min(internal_cap));
        let mut bland = self.stall_limit == 0;
        let mut stall = 0usize;
        for iteration in 0..max_iterations {
            if iteration % DEADLINE_STRIDE == 0 && deadline_expired(deadline) {
                return LoopExit::Degraded;
            }
            if self.etas.len() >= REFACTOR_EVERY && !self.refactorise() {
                return LoopExit::Singular;
            }
            self.compute_duals();
            let Some((q, _dq)) = self.price(bland) else {
                return LoopExit::Optimal;
            };
            self.ftran_column(q);
            let dir = if self.state[q] == VState::AtLower {
                1.0
            } else {
                -1.0
            };
            let mut outcome = self.ratio_test(q, dir, bland);
            if let RatioOutcome::Pivot(p, _, _) = outcome {
                // Stability trigger: a tiny eta pivot relative to the spike
                // poisons every later eta solve — refactorise first and
                // re-derive the spike and ratio test from fresh factors.
                let wmax = self
                    .w_nz
                    .iter()
                    .fold(0.0f64, |acc, &i| acc.max(self.w_vals[i].abs()));
                let wp = self.w_vals[p].abs();
                if !self.etas.is_empty() && (wp < STABILITY_REL * wmax || wp < STABILITY_ABS) {
                    if !self.refactorise() {
                        return LoopExit::Singular;
                    }
                    self.ftran_column(q);
                    outcome = self.ratio_test(q, dir, bland);
                }
            }
            match outcome {
                RatioOutcome::Unbounded => return LoopExit::Unbounded,
                RatioOutcome::BoundFlip(t) => {
                    for &i in &self.w_nz {
                        self.x_basic[i] -= t * dir * self.w_vals[i];
                    }
                    self.state[q] = if dir > 0.0 {
                        VState::AtUpper
                    } else {
                        VState::AtLower
                    };
                    if t <= 1e-12 {
                        stall += 1;
                    } else {
                        stall = 0;
                        bland = self.stall_limit == 0;
                    }
                }
                RatioOutcome::Pivot(p, t, leaver_side) => {
                    let wp = self.w_vals[p];
                    if wp.abs() <= STABILITY_ABS {
                        // Still numerically unusable after a refactorise:
                        // ban this entering column until the basis changes.
                        self.banned.push(q);
                        continue;
                    }
                    for &i in &self.w_nz {
                        self.x_basic[i] -= t * dir * self.w_vals[i];
                    }
                    let enter_from = match self.state[q] {
                        VState::AtLower => self.bounds[q].0,
                        _ => self.bounds[q].1,
                    };
                    let leaver = self.basis[p];
                    self.state[leaver] = leaver_side;
                    self.state[q] = VState::Basic;
                    self.basis[p] = q;
                    self.x_basic[p] = enter_from + dir * t;
                    let entries: Vec<(usize, f64)> = self
                        .w_nz
                        .iter()
                        .filter(|&&i| i != p)
                        .map(|&i| (i, self.w_vals[i]))
                        .collect();
                    self.etas.push(Eta {
                        p,
                        entries,
                        pivot: wp,
                    });
                    self.banned.clear();
                    if t <= 1e-12 {
                        stall += 1;
                    } else {
                        stall = 0;
                        bland = self.stall_limit == 0;
                    }
                }
            }
            if stall >= self.stall_limit {
                bland = true;
            }
        }
        if iteration_cap.is_some_and(|c| c < internal_cap) {
            LoopExit::Degraded
        } else {
            LoopExit::LimitReached
        }
    }

    /// Pick the entering column: Dantzig (most-positive improvement) or
    /// Bland (lowest eligible index) pricing over all nonbasic columns.
    fn price(&self, bland: bool) -> Option<(usize, f64)> {
        let n = self.n_struct;
        let n_base = n + self.m;
        let n_total = self.bounds.len();
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n_total {
            if self.state[j] == VState::Basic {
                continue;
            }
            let (lo, hi) = self.bounds[j];
            if lo >= hi {
                continue; // fixed: can never move
            }
            if self.banned.contains(&j) {
                continue;
            }
            let d = if j < n {
                self.cost[j] - self.a.col_dot(j, &self.duals_y)
            } else if j < n_base {
                self.cost[j] - self.duals_y[j - n]
            } else {
                self.cost[j] - self.duals_y[self.art_rows[j - n_base]]
            };
            let improving = match self.state[j] {
                VState::AtLower => d > EPS,
                VState::AtUpper => d < -EPS,
                VState::Basic => false,
            };
            if !improving {
                continue;
            }
            if bland {
                return Some((j, d));
            }
            if best.is_none_or(|(_, bd)| d.abs() > bd.abs()) {
                best = Some((j, d));
            }
        }
        best
    }

    /// Bounded-variable ratio test for entering column `q` moving in
    /// direction `dir` (+1 from its lower bound, −1 from its upper).
    fn ratio_test(&self, q: usize, dir: f64, bland: bool) -> RatioOutcome {
        let mut best_t = f64::INFINITY;
        let mut best: Option<(usize, VState)> = None;
        for &i in &self.w_nz {
            let eff = dir * self.w_vals[i];
            let b = self.basis[i];
            let (lo, hi) = self.bounds[b];
            let (limit, side) = if eff > PIVOT_TOL {
                if lo.is_finite() {
                    ((self.x_basic[i] - lo) / eff, VState::AtLower)
                } else {
                    continue;
                }
            } else if eff < -PIVOT_TOL {
                if hi.is_finite() {
                    ((self.x_basic[i] - hi) / eff, VState::AtUpper)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let limit = limit.max(0.0);
            let tie = (limit - best_t).abs() <= EPS;
            let better = limit < best_t - EPS
                || (tie
                    && match best {
                        None => true,
                        Some((bi, _)) => {
                            if bland {
                                self.basis[i] < self.basis[bi]
                            } else {
                                self.w_vals[i].abs() > self.w_vals[bi].abs()
                            }
                        }
                    });
            if better {
                best_t = best_t.min(limit);
                best = Some((i, side));
            }
        }
        let (lo_q, hi_q) = self.bounds[q];
        let flip = if lo_q.is_finite() && hi_q.is_finite() {
            hi_q - lo_q
        } else {
            f64::INFINITY
        };
        match best {
            None if flip.is_infinite() => RatioOutcome::Unbounded,
            None => RatioOutcome::BoundFlip(flip),
            Some((p, side)) => {
                if flip <= best_t {
                    RatioOutcome::BoundFlip(flip)
                } else {
                    RatioOutcome::Pivot(p, best_t, side)
                }
            }
        }
    }

    // ---- canned outcomes ------------------------------------------------

    fn outcome_infeasible(&self) -> LpOutcome {
        LpOutcome {
            solution: Solution {
                status: SolveStatus::Infeasible,
                objective: f64::NEG_INFINITY,
                values: vec![0.0; self.n_struct],
            },
            duals: vec![0.0; self.m],
            basis: None,
            warm_started: false,
        }
    }

    fn outcome_budget_exceeded(&self) -> LpOutcome {
        LpOutcome {
            solution: Solution {
                status: SolveStatus::BudgetExceeded,
                objective: if self.sense_sign > 0.0 {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                },
                values: vec![0.0; self.n_struct],
            },
            duals: vec![0.0; self.m],
            basis: None,
            warm_started: false,
        }
    }
}

/// Solve the continuous (LP) relaxation of a model with the sparse revised
/// simplex, optionally overriding per-variable bounds (used by
/// branch-and-bound). This is the default engine;
/// [`crate::simplex::solve_lp_dense`] is the tableau reference
/// implementation retained for parity testing.
pub fn solve_lp(model: &Model, bound_overrides: Option<&[(f64, f64)]>) -> Solution {
    SparseLp::new(model).solve(bound_overrides).solution
}

/// [`solve_lp`] under a [`SolveBudget`]: when the budget runs out mid-solve
/// the current basic point is returned tagged [`SolveStatus::Degraded`] if
/// it is primal feasible (phase 2 was reached), or
/// [`SolveStatus::BudgetExceeded`] if feasibility was never established.
/// An unlimited budget reproduces [`solve_lp`] exactly.
pub fn solve_lp_budgeted(
    model: &Model,
    bound_overrides: Option<&[(f64, f64)]>,
    budget: &SolveBudget,
) -> Solution {
    SparseLp::new(model)
        .solve_budgeted(bound_overrides, budget)
        .solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};
    use crate::simplex::solve_lp_dense;

    #[test]
    fn solves_textbook_maximisation() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 36.0).abs() < 1e-9);
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!((sol.value(y) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_are_handled_without_rows() {
        // x in [1, 3] enforced directly: max x st. x + y <= 10, y in [0, 2].
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 1.0, 3.0, 1.0);
        let y = m.add_continuous("y", 0.0, 2.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let sol = solve_lp(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
        assert!((sol.value(y) - 2.0).abs() < 1e-9);
        // Only one row was ever built.
        assert_eq!(SparseLp::new(&m).n_rows(), 1);
    }

    #[test]
    fn minimisation_with_ge_rows_needs_phase1() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 1.0);
        let sol = solve_lp(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 8.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_and_unbounded_match_dense_statuses() {
        let mut inf = Model::new(Sense::Maximize);
        let x = inf.add_continuous("x", 0.0, 1.0, 1.0);
        inf.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve_lp(&inf, None).status, SolveStatus::Infeasible);
        assert_eq!(solve_lp_dense(&inf, None).status, SolveStatus::Infeasible);

        let mut unb = Model::new(Sense::Maximize);
        let x = unb.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = unb.add_continuous("y", 0.0, f64::INFINITY, 0.0);
        unb.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(solve_lp(&unb, None).status, SolveStatus::Unbounded);
        assert_eq!(solve_lp_dense(&unb, None).status, SolveStatus::Unbounded);
    }

    #[test]
    fn equality_rows_and_fixed_vars() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 2.0, 1.0);
        let y = m.add_continuous("y", 0.0, 4.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 5.0);
        let sol = solve_lp(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-9);
        assert!(m.is_feasible(&sol.values, 1e-6));
        // Fixing x via overrides changes the optimum accordingly.
        let pinned = solve_lp(&m, Some(&[(2.0, 2.0), (0.0, 4.0)]));
        assert!((pinned.value(x) - 2.0).abs() < 1e-9);
        assert!((pinned.value(y) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn duals_price_columns_correctly() {
        // max 3x st. x <= 4 — the budget row's shadow price is 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        let out = SparseLp::new(&m).solve(None);
        assert_eq!(out.solution.status, SolveStatus::Optimal);
        assert!((out.duals[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_from_parent_bounds_is_used() {
        // A small LP solved twice: second solve warm-starts from the first
        // basis with a tightened bound on a nonbasic variable.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 4.0, 3.0);
        let y = m.add_continuous("y", 0.0, 6.0, 5.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let mut ws = SparseLp::new(&m);
        let first = ws.solve(None);
        assert_eq!(first.solution.status, SolveStatus::Optimal);
        let warm = first.basis.as_ref();
        let again = ws.solve_warm(
            Some(&[(0.0, 4.0), (0.0, 6.0)]),
            &SolveBudget::unlimited(),
            warm,
        );
        assert!(again.warm_started);
        assert_eq!(again.solution.status, SolveStatus::Optimal);
        assert!((again.solution.objective - first.solution.objective).abs() < 1e-9);
    }

    #[test]
    fn hand_built_basis_hint_warm_starts_a_colgen_shaped_master() {
        // A tiny column-generation master: two convexity Eq rows (which a
        // cold start can only satisfy through phase-1 artificials) plus a
        // budget row. Hinting the breakpoint-0 column of each cell and the
        // budget slack as basic skips phase 1 entirely.
        let mut m = Model::new(Sense::Maximize);
        let a0 = m.add_continuous("a0", 0.0, f64::INFINITY, 0.0);
        let a1 = m.add_continuous("a1", 0.0, f64::INFINITY, 2.0);
        let b0 = m.add_continuous("b0", 0.0, f64::INFINITY, 0.0);
        let b1 = m.add_continuous("b1", 0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(a0, 1.0), (a1, 1.0)], ConstraintOp::Eq, 1.0);
        m.add_constraint(&[(b0, 1.0), (b1, 1.0)], ConstraintOp::Eq, 1.0);
        m.add_constraint(&[(a1, 2.0), (b1, 3.0)], ConstraintOp::Le, 4.0);
        // Structural columns 0..4 (a0, a1, b0, b1), logicals 4..7; basic =
        // {a0, b0, budget slack}.
        let hint = BasisSnapshot::from_basic_columns(3, 4, &[0, 2, 6]).unwrap();
        let out = SparseLp::new(&m).solve_warm(None, &SolveBudget::unlimited(), Some(&hint));
        assert!(out.warm_started);
        assert_eq!(out.solution.status, SolveStatus::Optimal);
        // Optimum: b1 = 1 (utility 5, cost 3), a1 = 1/2 (utility 1).
        assert!((out.solution.objective - 6.0).abs() < 1e-9);

        // Impossible shapes are rejected up front; a plausible-looking but
        // singular hint (two columns hitting the same row) falls back to a
        // cold start and still reaches the optimum.
        assert!(BasisSnapshot::from_basic_columns(3, 4, &[0, 2]).is_none());
        assert!(BasisSnapshot::from_basic_columns(3, 4, &[0, 2, 9]).is_none());
        assert!(BasisSnapshot::from_basic_columns(3, 4, &[0, 2, 2]).is_none());
        let singular = BasisSnapshot::from_basic_columns(3, 4, &[0, 1, 6]).unwrap();
        let fallback =
            SparseLp::new(&m).solve_warm(None, &SolveBudget::unlimited(), Some(&singular));
        assert!(!fallback.warm_started);
        assert_eq!(fallback.solution.status, SolveStatus::Optimal);
        assert!((fallback.solution.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bland_only_mode_still_terminates_at_the_optimum() {
        // Beale's classic cycling instance: Dantzig with unlucky
        // tie-breaking cycles forever; Bland's rule terminates. Forcing
        // stall_limit = 0 runs the whole solve under Bland's rule.
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_continuous("x1", 0.0, f64::INFINITY, 0.75);
        let x2 = m.add_continuous("x2", 0.0, f64::INFINITY, -150.0);
        let x3 = m.add_continuous("x3", 0.0, f64::INFINITY, 0.02);
        let x4 = m.add_continuous("x4", 0.0, f64::INFINITY, -6.0);
        m.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(&[(x3, 1.0)], ConstraintOp::Le, 1.0);
        let mut ws = SparseLp::new(&m);
        ws.set_stall_limit(0);
        let out = ws.solve(None);
        assert_eq!(out.solution.status, SolveStatus::Optimal);
        assert!((out.solution.objective - 0.05).abs() < 1e-9);
        // And the default (Dantzig + stall fallback) agrees.
        let default = solve_lp(&m, None);
        assert_eq!(default.status, SolveStatus::Optimal);
        assert!((default.objective - 0.05).abs() < 1e-9);
    }

    #[test]
    fn budget_statuses_mirror_the_dense_engine() {
        // Expired deadline inside phase 1 → BudgetExceeded.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 10.0);
        let sol = solve_lp_budgeted(
            &m,
            None,
            &SolveBudget::with_time_limit(std::time::Duration::ZERO),
        );
        assert_eq!(sol.status, SolveStatus::BudgetExceeded);

        // Expired deadline with a feasible start → Degraded feasible point.
        let mut m2 = Model::new(Sense::Maximize);
        let x = m2.add_continuous("x", 0.0, 5.0, 1.0);
        m2.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        let sol2 = solve_lp_budgeted(
            &m2,
            None,
            &SolveBudget::with_time_limit(std::time::Duration::ZERO),
        );
        assert_eq!(sol2.status, SolveStatus::Degraded);
        assert!(m2.is_feasible(&sol2.values, 1e-6));
    }

    #[test]
    fn generous_budget_is_a_behavioural_noop() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let free = solve_lp(&m, None);
        let budgeted = solve_lp_budgeted(
            &m,
            None,
            &SolveBudget::with_time_limit(std::time::Duration::from_secs(3600)),
        );
        assert_eq!(budgeted.status, free.status);
        assert_eq!(budgeted.values, free.values);
        assert_eq!(budgeted.objective, free.objective);
    }

    #[test]
    fn degenerate_constraints_do_not_cycle() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 10.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, -57.0);
        let z = m.add_continuous("z", 0.0, f64::INFINITY, -9.0);
        let w = m.add_continuous("w", 0.0, f64::INFINITY, -24.0);
        m.add_constraint(
            &[(x, 0.5), (y, -5.5), (z, -2.5), (w, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            &[(x, 0.5), (y, -1.5), (z, -0.5), (w, 1.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        let sol = solve_lp(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_constraint_models_degrade_to_bound_optimisation() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", -0.0, 7.0, 2.0);
        let y = m.add_continuous("y", 1.0, 3.0, -1.0);
        let sol = solve_lp(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.value(x) - 7.0).abs() < 1e-12);
        assert!((sol.value(y) - 1.0).abs() < 1e-12);
        // Unbounded via bounds alone.
        let mut m2 = Model::new(Sense::Maximize);
        m2.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        assert_eq!(solve_lp(&m2, None).status, SolveStatus::Unbounded);
    }

    #[test]
    fn agrees_with_dense_on_random_instances() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for trial in 0..40 {
            let n = rng.gen_range(1..10);
            let mut m = Model::new(if rng.gen::<f64>() < 0.5 {
                Sense::Maximize
            } else {
                Sense::Minimize
            });
            let vars: Vec<_> = (0..n)
                .map(|i| {
                    let lo = rng.gen_range(-2.0..1.0);
                    let hi = if rng.gen::<f64>() < 0.3 {
                        f64::INFINITY
                    } else {
                        lo + rng.gen_range(0.0..5.0)
                    };
                    m.add_continuous(&format!("x{i}"), lo, hi, rng.gen_range(-3.0..3.0))
                })
                .collect();
            for _ in 0..rng.gen_range(1..8) {
                let mut terms = Vec::new();
                for &v in &vars {
                    if rng.gen::<f64>() < 0.5 {
                        terms.push((v, rng.gen_range(-2.0..2.0)));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let op = match rng.gen_range(0..3) {
                    0 => ConstraintOp::Le,
                    1 => ConstraintOp::Ge,
                    _ => ConstraintOp::Eq,
                };
                m.add_constraint(&terms, op, rng.gen_range(-4.0..6.0));
            }
            let dense = solve_lp_dense(&m, None);
            let sparse = solve_lp(&m, None);
            assert_eq!(
                sparse.status, dense.status,
                "trial {trial}: sparse {:?} vs dense {:?}",
                sparse.status, dense.status
            );
            if dense.status == SolveStatus::Optimal {
                assert!(
                    (sparse.objective - dense.objective).abs()
                        <= 1e-9 * dense.objective.abs().max(1.0),
                    "trial {trial}: sparse {} vs dense {}",
                    sparse.objective,
                    dense.objective
                );
                assert!(m.is_feasible(&sparse.values, 1e-6));
            }
        }
    }
}
