//! Sparse LU factorisation of a simplex basis with Markowitz pivot
//! selection, plus the product-form eta file that amortises basis changes
//! between refactorisations.
//!
//! The factorisation is right-looking Gaussian elimination over a working
//! copy of the basis columns. Pivots are chosen by the classic Markowitz
//! rule — minimise `(row_count−1)·(col_count−1)` among numerically
//! acceptable candidates (`|a| ≥ 0.1·colmax`) — with singleton columns
//! taken immediately as a fast path, which is the common case for planning
//! bases (slack and λ columns are one- and two-nonzero columns).
//!
//! A factorisation records, per elimination step `k`:
//! * the pivot position `(row p_k, basis column j_k)` and pivot value,
//! * the L multipliers that eliminated column `j_k` below the pivot,
//! * the U row: the pivot row's surviving entries in still-active columns.
//!
//! `FTRAN` (solve `Bx = b`) applies the L ops forward then back-substitutes
//! the U rows in reverse elimination order; `BTRAN` (solve `Bᵀy = c`)
//! forward-substitutes `Uᵀ` by scatter in elimination order then applies
//! the transposed L ops in reverse. Basis changes append [`Eta`] updates
//! (the spike `w = B⁻¹a_q` at the leaving position); both solves thread the
//! eta file in the appropriate order.

/// Entries with magnitude at or below this are dropped during elimination.
const DROP_TOL: f64 = 1e-12;
/// A pivot candidate must be at least this large in absolute value.
const ABS_PIVOT_MIN: f64 = 1e-10;
/// Relative (threshold-pivoting) bound: a candidate must be within this
/// factor of the largest entry in its column.
const REL_PIVOT: f64 = 0.1;
/// Markowitz search examines at most this many numerically valid candidate
/// columns before settling for the best seen.
const CANDIDATE_LIMIT: usize = 4;
/// Column-count buckets above this size are lumped together.
const MAX_BUCKET: usize = 48;

/// One product-form basis update: the spike `w = B⁻¹ a_entering` pivoted at
/// basis position `p`.
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    /// Basis position replaced by the entering column.
    pub p: usize,
    /// Off-pivot non-zeros of the spike, `(position, w_r)` with `r ≠ p`.
    pub entries: Vec<(usize, f64)>,
    /// The pivot element `w_p`.
    pub pivot: f64,
}

/// LU factors of an m×m basis, in elimination order.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactors {
    m: usize,
    /// Pivot row of step k.
    pivot_rows: Vec<usize>,
    /// Pivot (basis-position) column of step k.
    pivot_cols: Vec<usize>,
    /// Pivot value of step k.
    pivot_vals: Vec<f64>,
    /// L multipliers, flattened per step: `l_ptr[k]..l_ptr[k+1]`.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// U-row entries (excluding the pivot), flattened per step.
    u_ptr: Vec<usize>,
    u_cols: Vec<usize>,
    u_vals: Vec<f64>,
}

impl LuFactors {
    /// Factorise the m×m basis given by `cols` (one sparse column per basis
    /// position, `(row, value)` pairs). Returns `None` when the basis is
    /// structurally or numerically singular.
    pub fn factorise(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<Self> {
        if cols.len() != m {
            return None;
        }
        let mut acols: Vec<Vec<(usize, f64)>> = cols.to_vec();
        let mut col_active = vec![true; m];
        let mut row_active = vec![true; m];
        let mut col_count = vec![0usize; m];
        let mut row_count = vec![0usize; m];
        // Candidate columns per row (lazily maintained superset).
        let mut arow_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (j, col) in acols.iter().enumerate() {
            col_count[j] = col.len();
            for &(r, _) in col {
                if r >= m {
                    return None;
                }
                row_count[r] += 1;
                arow_cols[r].push(j);
            }
        }
        // Columns bucketed by non-zero count (lazy deletion).
        let bucket_of = |count: usize| count.min(MAX_BUCKET);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); MAX_BUCKET + 1];
        for j in 0..m {
            buckets[bucket_of(col_count[j])].push(j);
        }

        let mut factors = LuFactors {
            m,
            l_ptr: vec![0],
            u_ptr: vec![0],
            ..LuFactors::default()
        };
        let mut work = vec![0.0f64; m];
        // Column-visited stamps for deduping arow_cols sweeps.
        let mut stamp = vec![0u32; m];
        let mut epoch = 0u32;
        let mut requeue: Vec<usize> = Vec::new();

        for _step in 0..m {
            // ---- Markowitz pivot search -------------------------------
            let mut best: Option<(usize, usize, f64, usize)> = None; // (p, j, val, cost)
            let mut examined = 0usize;
            requeue.clear();
            'search: for (b, bucket) in buckets.iter_mut().enumerate().skip(1) {
                while let Some(j) = bucket.pop() {
                    if !col_active[j] || bucket_of(col_count[j]) != b || col_count[j] == 0 {
                        // Stale entry: a live column re-queued itself when
                        // its count changed, so dropping this copy is safe.
                        continue;
                    }
                    requeue.push(j);
                    let colmax = acols[j]
                        .iter()
                        .fold(0.0f64, |acc, &(_, v)| acc.max(v.abs()));
                    if colmax <= ABS_PIVOT_MIN {
                        continue;
                    }
                    let mut local: Option<(usize, f64, usize)> = None;
                    for &(r, v) in &acols[j] {
                        if v.abs() < REL_PIVOT * colmax || v.abs() <= ABS_PIVOT_MIN {
                            continue;
                        }
                        let cost = (row_count[r] - 1) * (col_count[j] - 1);
                        let better = match local {
                            None => true,
                            Some((_, lv, lc)) => cost < lc || (cost == lc && v.abs() > lv.abs()),
                        };
                        if better {
                            local = Some((r, v, cost));
                        }
                    }
                    if let Some((r, v, cost)) = local {
                        let better = match best {
                            None => true,
                            Some((_, _, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                        };
                        if better {
                            best = Some((r, j, v, cost));
                        }
                        examined += 1;
                        if cost == 0 || examined >= CANDIDATE_LIMIT {
                            break 'search;
                        }
                    }
                }
            }
            for &j in &requeue {
                if col_active[j] {
                    buckets[bucket_of(col_count[j])].push(j);
                }
            }
            let Some((p, j, piv, _)) = best else {
                return None; // no acceptable pivot anywhere: singular
            };

            // ---- Elimination of column j at pivot row p ---------------
            factors.pivot_rows.push(p);
            factors.pivot_cols.push(j);
            factors.pivot_vals.push(piv);
            let l_start = factors.l_rows.len();
            for &(r, v) in &acols[j] {
                if r != p {
                    factors.l_rows.push(r);
                    factors.l_vals.push(v / piv);
                    row_count[r] -= 1;
                }
            }
            factors.l_ptr.push(factors.l_rows.len());
            col_active[j] = false;
            row_active[p] = false;
            acols[j].clear();
            col_count[j] = 0;

            // Sweep the pivot row's candidate columns, building the U row
            // and applying the rank-1 update to each touched column.
            epoch = epoch.wrapping_add(1);
            let row_candidates = std::mem::take(&mut arow_cols[p]);
            for c in row_candidates {
                if !col_active[c] || stamp[c] == epoch {
                    continue;
                }
                stamp[c] = epoch;
                let Some(at_p) = acols[c].iter().position(|&(r, _)| r == p) else {
                    continue;
                };
                let w = acols[c][at_p].1;
                factors.u_cols.push(c);
                factors.u_vals.push(w);
                // Scatter column c (minus the pivot-row entry), apply the
                // elimination, gather back, and fix up the row structures.
                let old = std::mem::take(&mut acols[c]);
                for &(r, v) in &old {
                    if r != p {
                        work[r] = v;
                    }
                }
                for k in l_start..factors.l_ptr[factors.l_ptr.len() - 1] {
                    let r = factors.l_rows[k];
                    work[r] -= factors.l_vals[k] * w;
                }
                let mut rebuilt = Vec::with_capacity(old.len() + 2);
                // Old rows first (preserves counts for vanished entries).
                for &(r, _) in &old {
                    if r == p {
                        continue;
                    }
                    let v = work[r];
                    work[r] = 0.0;
                    if v.abs() > DROP_TOL {
                        rebuilt.push((r, v));
                    } else {
                        row_count[r] -= 1;
                    }
                }
                // Fill-in: L rows not present in the old column.
                for k in l_start..factors.l_ptr[factors.l_ptr.len() - 1] {
                    let r = factors.l_rows[k];
                    let v = work[r];
                    if v != 0.0 {
                        work[r] = 0.0;
                        if v.abs() > DROP_TOL {
                            rebuilt.push((r, v));
                            row_count[r] += 1;
                            arow_cols[r].push(c);
                        }
                    }
                }
                col_count[c] = rebuilt.len();
                acols[c] = rebuilt;
                buckets[bucket_of(col_count[c])].push(c);
            }
            factors.u_ptr.push(factors.u_cols.len());
        }
        Some(factors)
    }

    /// Solve `B x = b`. `work` holds `b` indexed by row on entry and is
    /// consumed as scratch; the solution lands in `out`, indexed by basis
    /// position (every entry of `out` is overwritten). The two buffers are
    /// separate because pivot rows and pivot columns are *different*
    /// permutations of `0..m` — an in-place solve would alias unread
    /// right-hand-side entries with already-written solution entries.
    pub fn ftran(&self, work: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        // Forward: apply L ops in elimination order.
        for k in 0..m {
            let wp = work[self.pivot_rows[k]];
            if wp != 0.0 {
                for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                    work[self.l_rows[t]] -= self.l_vals[t] * wp;
                }
            }
        }
        // Backward: U back-substitution; x lands at the pivot columns.
        for k in (0..m).rev() {
            let mut acc = work[self.pivot_rows[k]];
            for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                acc -= self.u_vals[t] * out[self.u_cols[t]];
            }
            out[self.pivot_cols[k]] = acc / self.pivot_vals[k];
        }
    }

    /// Solve `Bᵀ y = c`. `work` holds `c` indexed by basis position on
    /// entry and is consumed as scratch; the solution lands in `out`,
    /// indexed by row (every entry of `out` is overwritten).
    pub fn btran(&self, work: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        // Forward: solve Uᵀ z = c by scatter in elimination order. Residual
        // updates only ever touch columns still active at that step, so the
        // pivot column read at step k is final when read.
        for k in 0..m {
            let t = work[self.pivot_cols[k]] / self.pivot_vals[k];
            for u in self.u_ptr[k]..self.u_ptr[k + 1] {
                work[self.u_cols[u]] -= t * self.u_vals[u];
            }
            out[self.pivot_rows[k]] = t;
        }
        // Backward: apply transposed L ops in reverse order.
        for k in (0..m).rev() {
            let mut acc = out[self.pivot_rows[k]];
            for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                acc -= self.l_vals[t] * out[self.l_rows[t]];
            }
            out[self.pivot_rows[k]] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_from_cols(m: usize, cols: &[Vec<(usize, f64)>]) -> Vec<Vec<f64>> {
        let mut a = vec![vec![0.0; m]; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                a[r][j] += v;
            }
        }
        a
    }

    fn matvec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(c, v)| c * v).sum())
            .collect()
    }

    fn matvec_t(a: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
        let m = a.len();
        (0..m)
            .map(|j| (0..m).map(|i| a[i][j] * y[i]).sum())
            .collect()
    }

    #[test]
    fn ftran_btran_solve_identity() {
        let cols: Vec<Vec<(usize, f64)>> = (0..4).map(|i| vec![(i, 1.0)]).collect();
        let f = LuFactors::factorise(4, &cols).unwrap();
        let mut w = vec![1.0, 2.0, 3.0, 4.0];
        let mut out = vec![0.0; 4];
        f.ftran(&mut w, &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
        let mut w = vec![4.0, 3.0, 2.0, 1.0];
        f.btran(&mut w, &mut out);
        assert_eq!(out, vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn solves_against_dense_reference() {
        // A mix of slack-like and structural-like columns with a permuted
        // structure, exercising both elimination and fill-in.
        let cols: Vec<Vec<(usize, f64)>> = vec![
            vec![(0, 2.0), (2, 1.0)],
            vec![(1, 1.0)],
            vec![(0, 1.0), (2, 3.0), (3, 0.5)],
            vec![(1, -2.0), (3, 4.0)],
        ];
        let m = 4;
        let f = LuFactors::factorise(m, &cols).expect("nonsingular");
        let a = dense_from_cols(m, &cols);
        let x_true = vec![1.5, -2.0, 0.25, 3.0];
        let b = matvec(&a, &x_true);
        let mut w = b.clone();
        let mut out = vec![0.0; m];
        f.ftran(&mut w, &mut out);
        for i in 0..m {
            assert!((out[i] - x_true[i]).abs() < 1e-10, "x[{i}] = {}", out[i]);
        }
        let y_true = vec![0.5, 1.0, -1.0, 2.0];
        let c = matvec_t(&a, &y_true);
        let mut w = c.clone();
        f.btran(&mut w, &mut out);
        for i in 0..m {
            assert!((out[i] - y_true[i]).abs() < 1e-10, "y[{i}] = {}", out[i]);
        }
    }

    #[test]
    fn random_sparse_basis_roundtrips() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for trial in 0..25 {
            let m = rng.gen_range(2..30);
            // Diagonally dominant => nonsingular.
            let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
            for j in 0..m {
                let mut col = vec![(j, rng.gen_range(2.0..4.0))];
                for r in 0..m {
                    if r != j && rng.gen::<f64>() < 0.15 {
                        col.push((r, rng.gen_range(-0.5..0.5)));
                    }
                }
                cols.push(col);
            }
            let f = LuFactors::factorise(m, &cols).expect("diag-dominant basis");
            let a = dense_from_cols(m, &cols);
            let x_true: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut w = matvec(&a, &x_true);
            let mut out = vec![0.0; m];
            f.ftran(&mut w, &mut out);
            for i in 0..m {
                assert!(
                    (out[i] - x_true[i]).abs() < 1e-8,
                    "trial {trial} ftran x[{i}]"
                );
            }
            let y_true: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut w = matvec_t(&a, &y_true);
            f.btran(&mut w, &mut out);
            for i in 0..m {
                assert!(
                    (out[i] - y_true[i]).abs() < 1e-8,
                    "trial {trial} btran y[{i}]"
                );
            }
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        // Two identical columns.
        let cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        assert!(LuFactors::factorise(2, &cols).is_none());
        // A structurally empty column.
        let cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0)], vec![]];
        assert!(LuFactors::factorise(2, &cols).is_none());
    }
}
