//! Dense two-phase primal simplex for the continuous relaxation of a
//! [`Model`].
//!
//! The implementation converts the model to standard form (shift every
//! variable to a non-negative offset from its lower bound, add explicit
//! upper-bound rows for finitely-bounded variables, add slack/surplus and
//! artificial columns) and runs a textbook two-phase tableau simplex with
//! Dantzig pricing and a Bland's-rule fallback for anti-cycling. Problem
//! sizes in the patrol planner are at most a few thousand columns, which a
//! dense tableau handles comfortably.

use std::time::Instant;

use crate::budget::{deadline_expired, SolveBudget};
use crate::model::{ConstraintOp, Model, Sense, Solution, SolveStatus};

/// Upper bounds at or above this value are treated as +∞.
const UNBOUNDED: f64 = 1e15;
const EPS: f64 = 1e-9;
/// The wall-clock deadline is polled once per this many simplex
/// iterations; a single iteration is far below any meaningful deadline, so
/// amortising the clock read keeps the budgeted path as fast as the
/// unbudgeted one.
const DEADLINE_STRIDE: usize = 64;

/// Solve the continuous (LP) relaxation of a model with the dense tableau
/// engine, optionally overriding per-variable bounds. Retained as the
/// reference implementation for parity-testing the default sparse engine
/// ([`crate::revised::solve_lp`]); prefer `solve_lp` for production use.
pub fn solve_lp_dense(model: &Model, bound_overrides: Option<&[(f64, f64)]>) -> Solution {
    solve_lp_inner(model, bound_overrides, None, None)
}

/// [`solve_lp_dense`] under a [`SolveBudget`]: when the budget runs out mid-solve
/// the current basic point is returned tagged
/// [`SolveStatus::Degraded`] if it is primal feasible (phase 2 was
/// reached), or [`SolveStatus::BudgetExceeded`] if feasibility was never
/// established (the budget died inside phase 1). An unlimited budget
/// reproduces [`solve_lp_dense`] exactly.
pub fn solve_lp_dense_budgeted(
    model: &Model,
    bound_overrides: Option<&[(f64, f64)]>,
    budget: &SolveBudget,
) -> Solution {
    solve_lp_inner(
        model,
        bound_overrides,
        budget.max_lp_iterations,
        budget.deadline(),
    )
}

/// Budget plumbing shared with branch-and-bound (which owns one deadline
/// across every relaxation it solves).
pub(crate) fn solve_lp_inner(
    model: &Model,
    bound_overrides: Option<&[(f64, f64)]>,
    iteration_cap: Option<usize>,
    deadline: Option<Instant>,
) -> Solution {
    let n = model.n_vars();
    let bounds: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let (mut lo, mut hi) = (model.vars[i].lower, model.vars[i].upper);
            if let Some(over) = bound_overrides {
                lo = lo.max(over[i].0);
                hi = hi.min(over[i].1);
            }
            (lo, hi)
        })
        .collect();
    if bounds.iter().any(|&(lo, hi)| lo > hi + EPS) {
        return infeasible(n);
    }

    // Shift x = lower + s with s >= 0; collect rows.
    #[derive(Clone)]
    struct Row {
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.n_constraints() + n);
    for c in &model.constraints {
        let shift: f64 = c.terms.iter().map(|&(i, coeff)| coeff * bounds[i].0).sum();
        rows.push(Row {
            coeffs: c.terms.clone(),
            op: c.op,
            rhs: c.rhs - shift,
        });
    }
    // Upper-bound rows for finitely-bounded variables.
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        if hi < UNBOUNDED {
            let width = hi - lo;
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                op: ConstraintOp::Le,
                rhs: width.max(0.0),
            });
        }
    }

    // Objective in shifted coordinates (always maximise internally).
    let sign = match model.sense() {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let obj: Vec<f64> = (0..n).map(|i| sign * model.vars[i].objective).collect();
    let obj_offset: f64 = (0..n)
        .map(|i| sign * model.vars[i].objective * bounds[i].0)
        .sum();

    let m = rows.len();
    // Count slack and artificial columns.
    let mut n_slack = 0usize;
    let mut n_artificial = 0usize;
    for r in &mut rows {
        if r.rhs < 0.0 {
            // Normalise to rhs >= 0 by flipping the row.
            for (_, c) in r.coeffs.iter_mut() {
                *c = -*c;
            }
            r.rhs = -r.rhs;
            r.op = match r.op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
        match r.op {
            ConstraintOp::Le => n_slack += 1,
            ConstraintOp::Ge => {
                n_slack += 1;
                n_artificial += 1;
            }
            ConstraintOp::Eq => n_artificial += 1,
        }
    }

    let total_cols = n + n_slack + n_artificial;
    let width = total_cols + 1; // + rhs column
    let mut tableau = vec![0.0f64; m * width];
    let mut basis = vec![0usize; m];
    let mut slack_idx = n;
    let mut art_idx = n + n_slack;
    let artificial_start = n + n_slack;

    for (r, row) in rows.iter().enumerate() {
        for &(i, c) in &row.coeffs {
            tableau[r * width + i] += c;
        }
        tableau[r * width + total_cols] = row.rhs;
        match row.op {
            ConstraintOp::Le => {
                tableau[r * width + slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            ConstraintOp::Ge => {
                tableau[r * width + slack_idx] = -1.0;
                slack_idx += 1;
                tableau[r * width + art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
            ConstraintOp::Eq => {
                tableau[r * width + art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
        }
    }

    // Phase 1: minimise the sum of artificials (maximise the negative sum).
    if n_artificial > 0 {
        let mut phase1 = vec![0.0f64; total_cols];
        for slot in phase1.iter_mut().take(total_cols).skip(artificial_start) {
            *slot = -1.0;
        }
        let status = run_simplex(
            &mut tableau,
            &mut basis,
            &phase1,
            m,
            total_cols,
            width,
            iteration_cap,
            deadline,
        );
        if status == SolveStatus::Unbounded {
            // Phase 1 is bounded by construction; treat as numerical failure.
            return infeasible(n);
        }
        if status == SolveStatus::Degraded {
            // The budget died before feasibility was established: there is
            // no point worth returning.
            return budget_exceeded(model, n);
        }
        let art_sum: f64 = basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| b >= artificial_start)
            .map(|(r, _)| tableau[r * width + total_cols])
            .sum();
        let phase1_obj: f64 =
            phase1_objective(&tableau, &basis, m, total_cols, width, artificial_start);
        if art_sum > 1e-6 || phase1_obj > 1e-6 {
            return infeasible(n);
        }
        // Drive any remaining artificial variables out of the basis when
        // possible; otherwise their rows are redundant with zero rhs.
        for r in 0..m {
            if basis[r] >= artificial_start {
                if let Some(col) =
                    (0..artificial_start).find(|&c| tableau[r * width + c].abs() > 1e-7)
                {
                    pivot(&mut tableau, &mut basis, r, col, m, width);
                }
            }
        }
    }

    // Phase 2: zero out the artificial columns and optimise the real objective.
    if n_artificial > 0 {
        for r in 0..m {
            for c in artificial_start..total_cols {
                tableau[r * width + c] = 0.0;
            }
        }
    }
    let mut phase2 = vec![0.0f64; total_cols];
    phase2[..n].copy_from_slice(&obj);
    let status = run_simplex(
        &mut tableau,
        &mut basis,
        &phase2,
        m,
        artificial_start,
        width,
        iteration_cap,
        deadline,
    );
    if status == SolveStatus::Unbounded {
        return Solution {
            status: SolveStatus::Unbounded,
            objective: f64::INFINITY,
            values: vec![0.0; n],
        };
    }

    // Extract the solution.
    let mut shifted = vec![0.0f64; total_cols];
    for r in 0..m {
        shifted[basis[r]] = tableau[r * width + total_cols];
    }
    let values: Vec<f64> = (0..n).map(|i| bounds[i].0 + shifted[i]).collect();
    let objective_internal: f64 = (0..n).map(|i| obj[i] * shifted[i]).sum::<f64>() + obj_offset;
    Solution {
        status,
        objective: sign * objective_internal,
        values,
    }
}

fn infeasible(n: usize) -> Solution {
    Solution {
        status: SolveStatus::Infeasible,
        objective: f64::NEG_INFINITY,
        values: vec![0.0; n],
    }
}

fn budget_exceeded(model: &Model, n: usize) -> Solution {
    Solution {
        status: SolveStatus::BudgetExceeded,
        objective: match model.sense() {
            Sense::Maximize => f64::NEG_INFINITY,
            Sense::Minimize => f64::INFINITY,
        },
        values: vec![0.0; n],
    }
}

fn phase1_objective(
    tableau: &[f64],
    basis: &[usize],
    m: usize,
    total_cols: usize,
    width: usize,
    artificial_start: usize,
) -> f64 {
    let mut total = 0.0;
    for r in 0..m {
        if basis[r] >= artificial_start && basis[r] < total_cols {
            total += tableau[r * width + total_cols];
        }
    }
    total
}

/// Run the primal simplex maximising `objective` over the current tableau.
/// `usable_cols` restricts the entering columns (e.g. excluding artificials
/// during phase 2). `iteration_cap` / `deadline` are the caller's budget:
/// hitting either returns [`SolveStatus::Degraded`] with the tableau at
/// its current (primal-feasible) basis, distinct from the internal
/// anti-cycling cap's [`SolveStatus::LimitReached`].
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    tableau: &mut [f64],
    basis: &mut [usize],
    objective: &[f64],
    m: usize,
    usable_cols: usize,
    width: usize,
    iteration_cap: Option<usize>,
    deadline: Option<std::time::Instant>,
) -> SolveStatus {
    let internal_cap = 20_000usize.max(50 * (m + usable_cols));
    let max_iterations = iteration_cap.map_or(internal_cap, |c| c.min(internal_cap));
    for iteration in 0..max_iterations {
        if iteration % DEADLINE_STRIDE == 0 && deadline_expired(deadline) {
            return SolveStatus::Degraded;
        }
        // Reduced costs: c_j - c_B B^-1 A_j, computed from the tableau.
        let mut entering: Option<usize> = None;
        let mut best_reduced = EPS;
        let bland = iteration > max_iterations / 2;
        for j in 0..usable_cols {
            if basis.contains(&j) {
                continue;
            }
            let mut reduced = objective[j];
            for r in 0..m {
                reduced -= objective[basis[r]] * tableau[r * width + j];
            }
            if reduced > best_reduced {
                entering = Some(j);
                best_reduced = reduced;
                if bland {
                    break;
                }
            }
        }
        let Some(col) = entering else {
            return SolveStatus::Optimal;
        };

        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            let a = tableau[r * width + col];
            if a > EPS {
                let ratio = tableau[r * width + width - 1] / a;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leaving.is_none_or(|l| basis[r] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(r);
                }
            }
        }
        let Some(row) = leaving else {
            return SolveStatus::Unbounded;
        };
        pivot(tableau, basis, row, col, m, width);
    }
    if iteration_cap.is_some_and(|c| c < internal_cap) {
        SolveStatus::Degraded
    } else {
        SolveStatus::LimitReached
    }
}

fn pivot(tableau: &mut [f64], basis: &mut [usize], row: usize, col: usize, m: usize, width: usize) {
    let pivot_val = tableau[row * width + col];
    debug_assert!(pivot_val.abs() > 1e-12, "pivot on a ~zero element");
    for c in 0..width {
        tableau[row * width + c] /= pivot_val;
    }
    for r in 0..m {
        if r == row {
            continue;
        }
        let factor = tableau[r * width + col];
        if factor.abs() < 1e-14 {
            continue;
        }
        for c in 0..width {
            tableau[r * width + c] -= factor * tableau[row * width + c];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    #[test]
    fn solves_textbook_maximisation() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, obj=36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.value(y) - 6.0).abs() < 1e-6);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn solves_minimisation_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4? no: put all weight on x
        // (cheaper): x=4, y=0, obj=8; but x>=1 already satisfied.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 1.0);
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 8.0).abs() < 1e-6);
        assert!((sol.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn handles_equality_constraints_and_bounds() {
        // max x + y s.t. x + y = 5, x in [0,2], y in [0,4] -> obj 5, x in [1,2].
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 2.0, 1.0);
        let y = m.add_continuous("y", 0.0, 4.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 5.0);
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn reports_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn reports_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 0.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 1.0);
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn respects_nonzero_lower_bounds() {
        // min x + y with x >= 2, y >= 3, x + y >= 6 -> 6.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 2.0, f64::INFINITY, 1.0);
        let y = m.add_continuous("y", 3.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 6.0);
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 6.0).abs() < 1e-6);
        assert!(sol.value(x) >= 2.0 - 1e-9 && sol.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn bound_overrides_tighten_the_problem() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 8.0);
        let free = solve_lp_dense(&m, None);
        assert!((free.objective - 8.0).abs() < 1e-6);
        let overridden = solve_lp_dense(&m, Some(&[(0.0, 3.0)]));
        assert!((overridden.objective - 3.0).abs() < 1e-6);
        let conflicting = solve_lp_dense(&m, Some(&[(5.0, 3.0)]));
        assert_eq!(conflicting.status, SolveStatus::Infeasible);
    }

    #[test]
    fn degenerate_constraints_do_not_cycle() {
        // A classic degenerate LP; must terminate with the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 10.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, -57.0);
        let z = m.add_continuous("z", 0.0, f64::INFINITY, -9.0);
        let w = m.add_continuous("w", 0.0, f64::INFINITY, -24.0);
        m.add_constraint(
            &[(x, 0.5), (y, -5.5), (z, -2.5), (w, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            &[(x, 0.5), (y, -1.5), (z, -0.5), (w, 1.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-5);
    }

    #[test]
    fn generous_budget_reproduces_unbudgeted_solve_exactly() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let free = solve_lp_dense(&m, None);
        let budgeted = solve_lp_dense_budgeted(
            &m,
            None,
            &crate::budget::SolveBudget::with_time_limit(std::time::Duration::from_secs(3600)),
        );
        assert_eq!(budgeted.status, free.status);
        assert_eq!(budgeted.values, free.values);
        assert_eq!(budgeted.objective, free.objective);
    }

    #[test]
    fn expired_deadline_yields_typed_budget_status_not_a_hang() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 10.0);
        let sol = solve_lp_dense_budgeted(
            &m,
            None,
            &crate::budget::SolveBudget::with_time_limit(std::time::Duration::ZERO),
        );
        // Phase 1 never ran an iteration: no feasible point exists yet.
        assert_eq!(sol.status, SolveStatus::BudgetExceeded);
    }

    #[test]
    fn iteration_cap_returns_degraded_feasible_point() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        // An all-Le LP needs no phase 1, so the origin basis is feasible
        // and any iteration cap still leaves a primal-feasible point.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..30)
            .map(|i| m.add_continuous(&format!("x{i}"), 0.0, 4.0, rng.gen_range(0.1..1.0)))
            .collect();
        for _ in 0..20 {
            let mut terms: Vec<(crate::model::Variable, f64)> = Vec::new();
            for &v in &vars {
                if rng.gen::<f64>() < 0.4 {
                    terms.push((v, rng.gen_range(0.1..1.0)));
                }
            }
            if !terms.is_empty() {
                m.add_constraint(&terms, ConstraintOp::Le, rng.gen_range(2.0..8.0));
            }
        }
        let full = solve_lp_dense(&m, None);
        assert_eq!(full.status, SolveStatus::Optimal);
        let capped = solve_lp_dense_budgeted(
            &m,
            None,
            &crate::budget::SolveBudget {
                time_limit: None,
                max_lp_iterations: Some(1),
            },
        );
        assert_eq!(capped.status, SolveStatus::Degraded);
        assert!(m.is_feasible(&capped.values, 1e-6));
        assert!(capped.objective <= full.objective + 1e-9);
    }

    #[test]
    fn larger_random_feasible_lp_is_solved_and_feasible() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..40)
            .map(|i| m.add_continuous(&format!("x{i}"), 0.0, 5.0, rng.gen_range(0.1..1.0)))
            .collect();
        for _ in 0..25 {
            let mut terms: Vec<(crate::model::Variable, f64)> = Vec::new();
            for &v in &vars {
                if rng.gen::<f64>() < 0.3 {
                    terms.push((v, rng.gen_range(0.1..1.0)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            m.add_constraint(&terms, ConstraintOp::Le, rng.gen_range(2.0..10.0));
        }
        let sol = solve_lp_dense(&m, None);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(m.is_feasible(&sol.values, 1e-6));
        assert!(sol.objective > 0.0);
    }
}
