//! Column-major compressed sparse column (CSC) storage for the revised
//! simplex.
//!
//! The planning LPs are overwhelmingly sparse — a λ column touches exactly
//! its cell's convexity row and the budget row — so the sparse engine never
//! materialises a tableau. [`CscMatrix::from_model`] transposes a
//! [`Model`]'s row-major constraint list into per-variable columns once;
//! pricing, FTRAN loads and basis refactorisation all read columns through
//! [`CscMatrix::col`].

use crate::model::Model;

/// A read-only m×n sparse matrix in compressed-sparse-column layout.
///
/// Row indices within one column are strictly increasing and duplicate
/// `(row, value)` entries from the source model are summed, matching the
/// dense tableau's `+=` accumulation semantics.
#[derive(Debug, Clone)]
pub struct CscMatrix {
    m: usize,
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zeros of column `j` as `(row, value)` pairs, rows ascending.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&r, &v)| (r, v))
    }

    /// Dot product of column `j` with a dense row-indexed vector.
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        let mut acc = 0.0;
        for k in lo..hi {
            acc += self.values[k] * dense[self.row_idx[k]];
        }
        acc
    }

    /// Build the structural-column matrix of a model: one column per
    /// decision variable, one row per constraint. Logical (slack) and
    /// artificial columns are identity columns the simplex synthesises on
    /// the fly, so they are deliberately not stored.
    pub fn from_model(model: &Model) -> Self {
        let m = model.n_constraints();
        let n = model.n_vars();
        // Count entries per column (duplicates counted, merged below).
        let mut counts = vec![0usize; n];
        for c in &model.constraints {
            for &(var, _) in &c.terms {
                counts[var] += 1;
            }
        }
        let mut col_ptr = vec![0usize; n + 1];
        for j in 0..n {
            col_ptr[j + 1] = col_ptr[j] + counts[j];
        }
        let nnz_upper = col_ptr[n];
        let mut row_idx = vec![0usize; nnz_upper];
        let mut values = vec![0.0f64; nnz_upper];
        let mut cursor = col_ptr.clone();
        // Constraints are visited in row order, so each column's rows land
        // already sorted ascending.
        for (r, c) in model.constraints.iter().enumerate() {
            for &(var, coeff) in &c.terms {
                let k = cursor[var];
                row_idx[k] = r;
                values[k] = coeff;
                cursor[var] += 1;
            }
        }
        // Merge duplicate rows within each column (the dense path sums them).
        let mut out_ptr = vec![0usize; n + 1];
        let mut w = 0usize;
        for j in 0..n {
            let lo = col_ptr[j];
            let hi = col_ptr[j + 1];
            out_ptr[j] = w;
            let mut k = lo;
            while k < hi {
                let row = row_idx[k];
                let mut val = values[k];
                let mut k2 = k + 1;
                while k2 < hi && row_idx[k2] == row {
                    val += values[k2];
                    k2 += 1;
                }
                row_idx[w] = row;
                values[w] = val;
                w += 1;
                k = k2;
            }
        }
        out_ptr[n] = w;
        row_idx.truncate(w);
        values.truncate(w);
        Self {
            m,
            n,
            col_ptr: out_ptr,
            row_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense, Variable};

    #[test]
    fn transposes_rows_into_sorted_columns() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 2.0), (y, 3.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, -1.0)], ConstraintOp::Ge, -2.0);
        m.add_constraint(&[(x, 5.0)], ConstraintOp::Eq, 1.0);
        let csc = CscMatrix::from_model(&m);
        assert_eq!((csc.n_rows(), csc.n_cols(), csc.nnz()), (3, 2, 4));
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(0, 2.0), (2, 5.0)]);
        assert_eq!(csc.col(1).collect::<Vec<_>>(), vec![(0, 3.0), (1, -1.0)]);
    }

    #[test]
    fn duplicate_terms_are_summed_like_the_dense_tableau() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 2.0), (Variable(0), 3.0)], ConstraintOp::Le, 4.0);
        let csc = CscMatrix::from_model(&m);
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(0, 5.0)]);
        assert_eq!(csc.nnz(), 1);
    }

    #[test]
    fn col_dot_matches_manual_product() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 2.0)], ConstraintOp::Le, 1.0);
        m.add_constraint(&[(x, -3.0)], ConstraintOp::Ge, -5.0);
        let csc = CscMatrix::from_model(&m);
        assert_eq!(csc.col_dot(0, &[10.0, 100.0]), 2.0 * 10.0 - 3.0 * 100.0);
    }
}
