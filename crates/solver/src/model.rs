//! Optimisation-model builder shared by the LP and MILP solvers.
//!
//! The patrol planner of the paper formulates problem (P) as a mixed integer
//! linear program and hands it to a commercial solver; this crate provides
//! the from-scratch substitute. A [`Model`] collects variables (continuous or
//! binary, with bounds and objective coefficients) and linear constraints;
//! [`crate::simplex`] solves its continuous relaxation and
//! [`crate::milp`] wraps that in branch-and-bound for the binaries.

use serde::{Deserialize, Serialize};

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// Continuous variable within its bounds.
    Continuous,
    /// Binary variable (bounds are implicitly [0, 1]).
    Binary,
}

/// Handle to a variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Variable(pub usize);

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct VarDef {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub kind: VarKind,
    pub objective: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ConstraintDef {
    pub terms: Vec<(usize, f64)>,
    pub op: ConstraintOp,
    pub rhs: f64,
}

/// A linear optimisation model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<ConstraintDef>,
}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal solution was found.
    Optimal,
    /// The problem is infeasible.
    Infeasible,
    /// The problem is unbounded in the optimisation direction.
    Unbounded,
    /// The iteration or node limit was reached; the incumbent (if any) is
    /// returned.
    LimitReached,
    /// A caller-supplied [`crate::budget::SolveBudget`] ran out before the
    /// search finished; the returned point is the best incumbent found in
    /// time (feasible for MILP solves, a primal-feasible basic point for LP
    /// solves) but is not proven optimal.
    Degraded,
    /// A caller-supplied [`crate::budget::SolveBudget`] ran out before any
    /// usable point was found; the returned values are meaningless and the
    /// objective is the worst value for the optimisation sense.
    BudgetExceeded,
}

/// Why a solve produced no usable point: the typed-error twin of the
/// point-free [`SolveStatus`] variants, for serving-path callers that must
/// propagate failure instead of inspecting statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverError {
    /// The problem admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The [`crate::budget::SolveBudget`] ran out before any usable point
    /// was found.
    BudgetExceeded,
    /// The model input was rejected before solving: a non-finite
    /// coefficient, bound, objective or right-hand side, inconsistent
    /// bounds, or a constraint referencing an unknown variable. NaNs and
    /// infinities must never reach pivot arithmetic — they would silently
    /// poison every reduced cost downstream.
    Input(&'static str),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Infeasible => write!(f, "the problem is infeasible"),
            SolverError::Unbounded => {
                write!(
                    f,
                    "the objective is unbounded in the optimisation direction"
                )
            }
            SolverError::BudgetExceeded => write!(
                f,
                "the solve budget ran out before any usable point was found"
            ),
            SolverError::Input(msg) => write!(f, "invalid model input: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Result of solving a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective value of the returned point (meaningful for `Optimal` and
    /// `LimitReached` with an incumbent).
    pub objective: f64,
    /// Value of every variable, indexed by [`Variable`] id.
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of a variable in this solution.
    pub fn value(&self, var: Variable) -> f64 {
        self.values[var.0]
    }

    /// `Ok(())` when the solution carries a usable point (`Optimal`,
    /// `LimitReached`, `Degraded`); the matching [`SolverError`] otherwise.
    pub fn require_usable(&self) -> Result<(), SolverError> {
        match self.status {
            SolveStatus::Optimal | SolveStatus::LimitReached | SolveStatus::Degraded => Ok(()),
            SolveStatus::Infeasible => Err(SolverError::Infeasible),
            SolveStatus::Unbounded => Err(SolverError::Unbounded),
            SolveStatus::BudgetExceeded => Err(SolverError::BudgetExceeded),
        }
    }
}

impl Model {
    /// Create an empty model with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Fallible twin of [`Model::add_continuous`]: rejects non-finite or
    /// inconsistent inputs with [`SolverError::Input`] instead of panicking.
    pub fn try_add_continuous(
        &mut self,
        name: &str,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<Variable, SolverError> {
        if !lower.is_finite() {
            return Err(SolverError::Input("lower bound must be finite"));
        }
        if upper.is_nan() {
            return Err(SolverError::Input("upper bound must not be NaN"));
        }
        if lower > upper {
            return Err(SolverError::Input("lower bound exceeds upper bound"));
        }
        if !objective.is_finite() {
            return Err(SolverError::Input("objective coefficient must be finite"));
        }
        self.vars.push(VarDef {
            name: name.to_string(),
            lower,
            upper,
            kind: VarKind::Continuous,
            objective,
        });
        Ok(Variable(self.vars.len() - 1))
    }

    /// Add a continuous variable with bounds `[lower, upper]` and objective
    /// coefficient `objective`.
    /// The upper bound may be `f64::INFINITY` for an unbounded-above variable.
    ///
    /// # Panics
    /// On invalid input; [`Model::try_add_continuous`] is the typed-error
    /// twin for callers that must not panic.
    pub fn add_continuous(
        &mut self,
        name: &str,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Variable {
        match self.try_add_continuous(name, lower, upper, objective) {
            Ok(v) => v,
            Err(e) => panic!("add_continuous({name}): {e}"),
        }
    }

    /// Fallible twin of [`Model::add_binary`]: rejects a non-finite
    /// objective with [`SolverError::Input`] instead of panicking.
    pub fn try_add_binary(&mut self, name: &str, objective: f64) -> Result<Variable, SolverError> {
        if !objective.is_finite() {
            return Err(SolverError::Input("objective coefficient must be finite"));
        }
        self.vars.push(VarDef {
            name: name.to_string(),
            lower: 0.0,
            upper: 1.0,
            kind: VarKind::Binary,
            objective,
        });
        Ok(Variable(self.vars.len() - 1))
    }

    /// Add a binary variable with objective coefficient `objective`.
    ///
    /// # Panics
    /// On a non-finite objective; see [`Model::try_add_binary`].
    pub fn add_binary(&mut self, name: &str, objective: f64) -> Variable {
        match self.try_add_binary(name, objective) {
            Ok(v) => v,
            Err(e) => panic!("add_binary({name}): {e}"),
        }
    }

    /// Fallible twin of [`Model::add_constraint`]: rejects empty term
    /// lists, unknown variables, and non-finite coefficients or right-hand
    /// sides with [`SolverError::Input`] instead of panicking.
    pub fn try_add_constraint(
        &mut self,
        terms: &[(Variable, f64)],
        op: ConstraintOp,
        rhs: f64,
    ) -> Result<(), SolverError> {
        if terms.is_empty() {
            return Err(SolverError::Input("constraint needs at least one term"));
        }
        for &(v, c) in terms {
            if v.0 >= self.vars.len() {
                return Err(SolverError::Input("constraint references unknown variable"));
            }
            if !c.is_finite() {
                return Err(SolverError::Input("constraint coefficient must be finite"));
            }
        }
        if !rhs.is_finite() {
            return Err(SolverError::Input("constraint rhs must be finite"));
        }
        self.constraints.push(ConstraintDef {
            terms: terms.iter().map(|(v, c)| (v.0, *c)).collect(),
            op,
            rhs,
        });
        Ok(())
    }

    /// Add a linear constraint `Σ coeff·var  op  rhs`.
    ///
    /// # Panics
    /// On invalid input; [`Model::try_add_constraint`] is the typed-error
    /// twin for callers that must not panic.
    pub fn add_constraint(&mut self, terms: &[(Variable, f64)], op: ConstraintOp, rhs: f64) {
        if let Err(e) = self.try_add_constraint(terms, op, rhs) {
            panic!("add_constraint: {e}");
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Indices of the binary variables.
    pub fn binary_vars(&self) -> Vec<Variable> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| Variable(i))
            .collect()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, var: Variable) -> &str {
        &self.vars[var.0].name
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(
            values.len(),
            self.vars.len(),
            "value vector length mismatch"
        );
        self.vars
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Check whether a point satisfies every constraint and bound within
    /// `tol`. Used by tests and by debug assertions in the planner.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(i, coeff)| coeff * values[i]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_construction_and_introspection() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 10.0, 1.0);
        let y = m.add_binary("y", 5.0);
        m.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 8.0);
        assert_eq!(m.n_vars(), 2);
        assert_eq!(m.n_constraints(), 1);
        assert_eq!(m.binary_vars(), vec![y]);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.objective_value(&[3.0, 1.0]), 8.0);
    }

    #[test]
    fn feasibility_checks_bounds_and_constraints() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 5.0, 1.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[1.0], 1e-9)); // violates >= 2
        assert!(!m.is_feasible(&[6.0], 1e-9)); // violates upper bound
        assert!(!m.is_feasible(&[3.0, 0.0], 1e-9)); // wrong length
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper bound")]
    fn bad_bounds_rejected() {
        let mut m = Model::new(Sense::Maximize);
        m.add_continuous("x", 2.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_with_unknown_variable_rejected() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_continuous("x", 0.0, 1.0, 0.0);
        m.add_constraint(&[(Variable(5), 1.0)], ConstraintOp::Le, 1.0);
    }

    #[test]
    fn non_finite_variable_inputs_return_typed_errors() {
        let mut m = Model::new(Sense::Maximize);
        assert_eq!(
            m.try_add_continuous("x", f64::NAN, 1.0, 0.0),
            Err(SolverError::Input("lower bound must be finite"))
        );
        assert_eq!(
            m.try_add_continuous("x", f64::NEG_INFINITY, 1.0, 0.0),
            Err(SolverError::Input("lower bound must be finite"))
        );
        assert_eq!(
            m.try_add_continuous("x", 0.0, f64::NAN, 0.0),
            Err(SolverError::Input("upper bound must not be NaN"))
        );
        assert_eq!(
            m.try_add_continuous("x", 2.0, 1.0, 0.0),
            Err(SolverError::Input("lower bound exceeds upper bound"))
        );
        assert_eq!(
            m.try_add_continuous("x", 0.0, 1.0, f64::NAN),
            Err(SolverError::Input("objective coefficient must be finite"))
        );
        assert_eq!(
            m.try_add_continuous("x", 0.0, 1.0, f64::INFINITY),
            Err(SolverError::Input("objective coefficient must be finite"))
        );
        assert_eq!(
            m.try_add_binary("b", f64::NAN),
            Err(SolverError::Input("objective coefficient must be finite"))
        );
        // Nothing was added by any rejected call.
        assert_eq!(m.n_vars(), 0);
        // +inf upper bound stays legal (unbounded-above variable).
        assert!(m.try_add_continuous("x", 0.0, f64::INFINITY, 1.0).is_ok());
    }

    #[test]
    fn non_finite_constraint_inputs_return_typed_errors() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        assert_eq!(
            m.try_add_constraint(&[], ConstraintOp::Le, 1.0),
            Err(SolverError::Input("constraint needs at least one term"))
        );
        assert_eq!(
            m.try_add_constraint(&[(Variable(9), 1.0)], ConstraintOp::Le, 1.0),
            Err(SolverError::Input("constraint references unknown variable"))
        );
        assert_eq!(
            m.try_add_constraint(&[(x, f64::NAN)], ConstraintOp::Le, 1.0),
            Err(SolverError::Input("constraint coefficient must be finite"))
        );
        assert_eq!(
            m.try_add_constraint(&[(x, f64::INFINITY)], ConstraintOp::Ge, 1.0),
            Err(SolverError::Input("constraint coefficient must be finite"))
        );
        assert_eq!(
            m.try_add_constraint(&[(x, 1.0)], ConstraintOp::Eq, f64::NAN),
            Err(SolverError::Input("constraint rhs must be finite"))
        );
        assert_eq!(m.n_constraints(), 0);
        assert!(m
            .try_add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0)
            .is_ok());
        assert_eq!(m.n_constraints(), 1);
    }

    #[test]
    #[should_panic(expected = "coefficient must be finite")]
    fn panicking_facade_rejects_nan_coefficient() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, f64::NAN)], ConstraintOp::Le, 1.0);
    }
}
