//! Atomic model swap: hot-swapping a park's resident model from a stack
//! snapshot mid-traffic must never expose a torn artifact — every served
//! answer is wholly the old model's or wholly the new one's, in-flight
//! queries finish on the bundle they snapshotted, and queries admitted
//! after the swap see the new model.

use paws_core::{ModelConfig, Scenario, ServingModel, WeakLearnerKind};
use paws_data::{build_dataset, split_by_test_year, Dataset, Discretization};
use paws_geo::Park;
use paws_serve::{PawsServer, QueryKind, QueryRequest, QueryResponse};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn fit(dataset: &Dataset, seed: u64, n_learners: usize) -> ServingModel {
    let split = split_by_test_year(dataset, 2016, 2).expect("split exists");
    let mut config = ModelConfig::new(WeakLearnerKind::DecisionTree, true, seed);
    config.n_learners = n_learners;
    config.n_estimators = 4;
    config.weight_mode = paws_iware::WeightMode::Uniform;
    paws_core::train(dataset, &split, &config).into_serving()
}

fn risk_of(answer: &QueryResponse) -> (&[f64], &[f64]) {
    match answer {
        QueryResponse::RiskMap { risk, uncertainty } => (risk, uncertainty),
        other => panic!("expected a risk map, got {other:?}"),
    }
}

#[test]
fn mid_traffic_snapshot_swap_never_tears_a_query() {
    let scenario = Scenario::test_scenario(11);
    let history = scenario.simulate_years(2014, 3);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let park: Park = scenario.park;
    let prev = vec![0.0; park.n_cells()];

    // Two genuinely different models of the same park (v2 sees more
    // learners), and v2's wire-format snapshot for the swap.
    let v1 = fit(&dataset, 11, 4);
    let v2 = fit(&dataset, 12, 6);
    let (r1, u1) = v1
        .try_risk_map(&park, &dataset, &prev, 1.0)
        .expect("v1 serves");
    let (r2, u2) = v2
        .try_risk_map(&park, &dataset, &prev, 1.0)
        .expect("v2 serves");
    assert_ne!(r1, r2, "the two model versions must be distinguishable");
    let v2_bytes = v2.to_stack_snapshot().expect("tree stack snapshots");
    let v2_config = v2.config.clone();
    let v2_scaler = v2.scaler.clone();

    let server = Arc::new(PawsServer::new());
    server
        .registry()
        .install("mondulkiri", v1, park, &dataset, &prev)
        .expect("install succeeds");

    // Query threads hammer the park while the main thread swaps.
    let stop = Arc::new(AtomicBool::new(false));
    let swapped = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let swapped = Arc::clone(&swapped);
            let (r1, u1, r2, u2) = (r1.clone(), u1.clone(), r2.clone(), u2.clone());
            std::thread::spawn(move || {
                let mut seen_v1 = 0usize;
                let mut seen_v2 = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // Read the swap flag BEFORE submitting: if the swap
                    // already happened, the answer must be v2's.
                    let swap_done = swapped.load(Ordering::SeqCst);
                    let answers = server.submit(&[QueryRequest::new(
                        "mondulkiri",
                        QueryKind::RiskMap { effort_km: 1.0 },
                    )]);
                    let answer = answers[0].as_ref().expect("query succeeds");
                    let (risk, uncertainty) = risk_of(answer);
                    if risk == r1.as_slice() {
                        assert_eq!(uncertainty, u1.as_slice(), "torn v1 answer");
                        assert!(!swap_done, "v1 answer after the swap completed");
                        seen_v1 += 1;
                    } else {
                        assert_eq!(risk, r2.as_slice(), "answer matches neither model");
                        assert_eq!(uncertainty, u2.as_slice(), "torn v2 answer");
                        seen_v2 += 1;
                    }
                }
                (seen_v1, seen_v2)
            })
        })
        .collect();

    // Let traffic build up on v1, then hot-swap from the snapshot.
    std::thread::sleep(std::time::Duration::from_millis(50));
    server
        .registry()
        .swap_from_snapshot("mondulkiri", &v2_bytes, v2_config, v2_scaler)
        .expect("swap succeeds");
    swapped.store(true, Ordering::SeqCst);
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);

    let mut total_v1 = 0;
    let mut total_v2 = 0;
    for h in handles {
        let (seen_v1, seen_v2) = h.join().expect("no query thread panics");
        total_v1 += seen_v1;
        total_v2 += seen_v2;
    }
    assert!(total_v1 > 0, "no pre-swap traffic was served");
    assert!(total_v2 > 0, "no post-swap traffic was served");

    // Queries admitted after the swap deterministically see v2 — including
    // through the coalesced batch path and the prepared response surface.
    let answers = server.submit(&[
        QueryRequest::new("mondulkiri", QueryKind::RiskMap { effort_km: 1.0 }),
        QueryRequest::new("mondulkiri", QueryKind::RiskMap { effort_km: 0.5 }),
        QueryRequest::new("mondulkiri", QueryKind::RiskMap { effort_km: 1.0 }),
    ]);
    for idx in [0, 2] {
        let (risk, uncertainty) = risk_of(answers[idx].as_ref().expect("post-swap risk map"));
        assert_eq!(risk, r2.as_slice(), "coalesced post-swap answer {idx}");
        assert_eq!(uncertainty, u2.as_slice());
    }
    assert!(answers[1].is_ok(), "uncached level serves post-swap too");

    // Swapping an unknown park is a typed error, not a panic.
    assert!(server
        .registry()
        .swap_model("nonexistent", fit(&dataset, 13, 4))
        .is_err());
}
