//! Concurrency parity: N threads issuing interleaved queries for several
//! resident parks through the batched admission layer must get answers
//! **bit-identical** to direct single-caller `try_*` calls on the same
//! artifacts — coalescing, caching and the work-stealing fan-out change
//! wall-clock, never bits.

use paws_core::{ModelConfig, Scenario, ServingModel, TraversalLayout, WeakLearnerKind};
use paws_data::{build_dataset, split_by_test_year, Dataset, Discretization, Matrix};
use paws_geo::Park;
use paws_plan::{try_plan, PatrolPlan, PlannerConfig};
use paws_serve::{PawsServer, QueryKind, QueryRequest, QueryResponse};
use std::sync::Arc;

const GRID: [f64; 4] = [0.0, 0.5, 1.0, 2.0];
const PLAN_GRID: [f64; 5] = [0.0, 0.5, 1.0, 2.0, 4.0];
const RISK_LEVELS: [f64; 3] = [0.5, 1.0, 2.0];

struct Fixture {
    name: &'static str,
    park: Park,
    dataset: Dataset,
    prev: Vec<f64>,
}

/// Train one park model; `tweak` selects the serving engines.
fn fit_park(name: &'static str, seed: u64, tweak: u8) -> (Fixture, ServingModel) {
    let scenario = Scenario::test_scenario(seed);
    let history = scenario.simulate_years(2014, 3);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2016, 2).expect("split exists");
    let mut config = ModelConfig::new(WeakLearnerKind::DecisionTree, tweak != 3, seed);
    config.n_learners = 4;
    config.n_estimators = 4;
    config.weight_mode = paws_iware::WeightMode::Uniform;
    match tweak {
        1 => config.precision = paws_core::Precision::F32,
        2 => config.layout = TraversalLayout::BitVector,
        _ => {}
    }
    let model = paws_core::train(&dataset, &split, &config).into_serving();
    let prev = vec![0.0; scenario.park.n_cells()];
    (
        Fixture {
            name,
            park: scenario.park,
            dataset,
            prev,
        },
        model,
    )
}

/// The per-park answers a direct single caller gets from the `try_*` API.
struct Reference {
    risk: Vec<(Vec<f64>, Vec<f64>)>,
    response: (Matrix, Matrix),
    plan: PatrolPlan,
}

fn direct_reference(fixture: &Fixture, model: &ServingModel) -> Reference {
    let risk = RISK_LEVELS
        .iter()
        .map(|&e| {
            model
                .try_risk_map(&fixture.park, &fixture.dataset, &fixture.prev, e)
                .expect("valid direct risk map")
        })
        .collect();
    let response = model
        .try_park_response(&fixture.park, &fixture.dataset, &fixture.prev, &GRID)
        .expect("valid direct response");
    let prepared = model
        .prepare_park(&fixture.park, &fixture.dataset, &fixture.prev)
        .expect("valid prepared park");
    let problem = model
        .try_planning_problem_prepared(
            &fixture.park,
            &prepared,
            fixture.park.patrol_posts[0],
            &PLAN_GRID,
            8.0,
            2,
            0.8,
        )
        .expect("valid direct problem");
    let plan = try_plan(&problem, &PlannerConfig::default()).expect("direct plan solves");
    Reference {
        risk,
        response,
        plan,
    }
}

fn batch_for(fixtures: &[Fixture]) -> Vec<QueryRequest> {
    let mut batch = Vec::new();
    // Interleave parks and query kinds so every park group coalesces
    // several risk levels (including duplicates) per submitted batch.
    for &level in &RISK_LEVELS {
        for f in fixtures {
            batch.push(QueryRequest::new(
                f.name,
                QueryKind::RiskMap { effort_km: level },
            ));
        }
    }
    for f in fixtures {
        batch.push(QueryRequest::new(
            f.name,
            QueryKind::RiskMap {
                effort_km: RISK_LEVELS[1],
            },
        ));
        batch.push(QueryRequest::new(
            f.name,
            QueryKind::ParkResponse {
                effort_grid: GRID.to_vec(),
            },
        ));
        batch.push(QueryRequest::new(
            f.name,
            QueryKind::PatrolPlan {
                post: f.park.patrol_posts[0],
                effort_grid: PLAN_GRID.to_vec(),
                patrol_length_km: 8.0,
                n_patrols: 2,
                beta: 0.8,
            },
        ));
    }
    batch
}

fn assert_answer_matches(req: &QueryRequest, answer: &QueryResponse, reference: &Reference) {
    match (&req.kind, answer) {
        (QueryKind::RiskMap { effort_km }, QueryResponse::RiskMap { risk, uncertainty }) => {
            let level = RISK_LEVELS
                .iter()
                .position(|l| l == effort_km)
                .expect("known level");
            assert_eq!(
                risk, &reference.risk[level].0,
                "{} risk @{effort_km}",
                req.park
            );
            assert_eq!(
                uncertainty, &reference.risk[level].1,
                "{} uncertainty @{effort_km}",
                req.park
            );
        }
        (QueryKind::ParkResponse { .. }, QueryResponse::ParkResponse { probs, vars }) => {
            assert_eq!(probs.as_slice(), reference.response.0.as_slice());
            assert_eq!(vars.as_slice(), reference.response.1.as_slice());
        }
        (QueryKind::PatrolPlan { .. }, QueryResponse::PatrolPlan(plan)) => {
            assert_eq!(plan.coverage, reference.plan.coverage, "{} plan", req.park);
            assert_eq!(plan.objective, reference.plan.objective);
            assert_eq!(plan.status, reference.plan.status);
        }
        (kind, answer) => panic!("answer shape mismatch: {kind:?} vs {answer:?}"),
    }
}

#[test]
fn threaded_batches_are_bit_identical_to_direct_calls() {
    // Four resident parks spanning the engine matrix: f64/interleaved,
    // f32/interleaved, f64/bitvector, plain bagging.
    let specs = [
        ("gonarezhou", 3u64, 0u8),
        ("mondulkiri", 4, 1),
        ("queen-elizabeth", 5, 2),
        ("srepok-plain", 6, 3),
    ];
    let server = Arc::new(PawsServer::new());
    let mut fixtures = Vec::new();
    let mut references = Vec::new();
    for (name, seed, tweak) in specs {
        let (fixture, model) = fit_park(name, seed, tweak);
        references.push(direct_reference(&fixture, &model));
        server
            .registry()
            .install(
                name,
                model,
                fixture.park.clone(),
                &fixture.dataset,
                &fixture.prev,
            )
            .expect("install succeeds");
        fixtures.push(fixture);
    }
    let fixtures = Arc::new(fixtures);
    let references = Arc::new(references);

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let server = Arc::clone(&server);
            let fixtures = Arc::clone(&fixtures);
            let references = Arc::clone(&references);
            std::thread::spawn(move || {
                for round in 0..3 {
                    let mut batch = batch_for(&fixtures);
                    // Different interleavings per thread/round: parity must
                    // not depend on request order.
                    if (t + round) % 2 == 1 {
                        batch.reverse();
                    }
                    let answers = server.submit(&batch);
                    assert_eq!(answers.len(), batch.len());
                    for (req, answer) in batch.iter().zip(&answers) {
                        let park_idx = fixtures
                            .iter()
                            .position(|f| f.name == req.park)
                            .expect("known park");
                        let answer = answer.as_ref().expect("query succeeds");
                        assert_answer_matches(req, answer, &references[park_idx]);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no serving thread panics");
    }
}
