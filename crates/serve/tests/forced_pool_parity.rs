//! Forced worker-count parity: with the pool forced to 2, 4 or 8 workers,
//! every parallel surface — the ensemble fit, prepared risk maps and
//! response surfaces (including the spatial-shard fan-out on LLC-scale
//! stacks), and the batched serving layer — must produce answers
//! **bit-identical** to the 1-thread run. Worker count changes wall-clock,
//! never bits: every fan-out is an ordered indexed collect over
//! per-item-deterministic work.

use paws_core::{ModelConfig, Scenario, ServingModel, WeakLearnerKind};
use paws_data::{
    build_dataset, split_by_test_year, Dataset, Discretization, Matrix, TrainTestSplit,
};
use paws_serve::{PawsServer, QueryKind, QueryRequest, QueryResponse};
use std::sync::Arc;

const FORCED: [usize; 3] = [2, 4, 8];
const GRID: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

fn fixture(seed: u64) -> (Scenario, Dataset, TrainTestSplit) {
    let scenario = Scenario::test_scenario(seed);
    let history = scenario.simulate_years(2014, 3);
    let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
    let split = split_by_test_year(&dataset, 2016, 2).expect("split exists");
    (scenario, dataset, split)
}

fn config(seed: u64, use_iware: bool) -> ModelConfig {
    let mut config = ModelConfig::new(WeakLearnerKind::DecisionTree, use_iware, seed);
    config.n_learners = 4;
    config.n_estimators = 4;
    config.weight_mode = paws_iware::WeightMode::Uniform;
    config
}

/// A deterministic LLC-scale raw feature stack, wide enough to tile into
/// several spatial shards once prepared (25k rows × model width ≳ 1 MiB
/// per plane).
fn big_raw_stack(n_rows: usize, n_features: usize) -> Matrix {
    let mut flat = Vec::with_capacity(n_rows * n_features);
    for i in 0..n_rows {
        for j in 0..n_features {
            flat.push(((i * 31 + j * 17) % 997) as f64 / 997.0);
        }
    }
    Matrix::from_flat(flat, n_features)
}

/// The learner×tree nested parallel fit must not depend on the worker
/// count: same weights, same thresholds, same served bits at 1, 2, 4 and
/// 8 forced workers.
#[test]
fn parallel_fit_is_bit_identical_to_the_one_thread_fit() {
    let (scenario, dataset, split) = fixture(11);
    for use_iware in [true, false] {
        let cfg = config(11, use_iware);
        let reference: ServingModel = rayon::with_num_threads(1, || {
            paws_core::train(&dataset, &split, &cfg).into_serving()
        });
        let prev = vec![0.0; scenario.park.n_cells()];
        let (r_ref, u_ref) = reference
            .try_risk_map(&scenario.park, &dataset, &prev, 1.0)
            .expect("reference risk map");
        for forced in FORCED {
            let model = rayon::with_num_threads(forced, || {
                paws_core::train(&dataset, &split, &cfg).into_serving()
            });
            let (r, u) = model
                .try_risk_map(&scenario.park, &dataset, &prev, 1.0)
                .expect("forced-fit risk map");
            assert_eq!(r, r_ref, "risk drifted: iware={use_iware} x{forced}");
            assert_eq!(u, u_ref, "uncertainty drifted: iware={use_iware} x{forced}");
        }
    }
}

/// Prepared park queries — including the multi-shard fan-out on an
/// LLC-scale stack — serve the same bits at every forced worker count.
#[test]
fn sharded_prepared_queries_are_bit_identical_across_forced_counts() {
    let (_, dataset, split) = fixture(12);
    let model = rayon::with_num_threads(1, || {
        paws_core::train(&dataset, &split, &config(12, true)).into_serving()
    });
    let prepared = model
        .prepare_rows(big_raw_stack(25_000, model.n_features()))
        .expect("big stack prepares");
    assert!(
        prepared.shards().len() > 1,
        "fixture must exercise the shard fan-out, got {:?}",
        prepared.shards()
    );

    let (r_ref, u_ref) = rayon::with_num_threads(1, || model.risk_map_prepared(&prepared, 1.0));
    let (p_ref, v_ref) =
        rayon::with_num_threads(1, || model.park_response_prepared(&prepared, &GRID));
    for forced in FORCED {
        rayon::with_num_threads(forced, || {
            let (r, u) = model.risk_map_prepared(&prepared, 1.0);
            assert_eq!(r, r_ref, "sharded risk drifted x{forced}");
            assert_eq!(u, u_ref, "sharded uncertainty drifted x{forced}");
            let (p, v) = model.park_response_prepared(&prepared, &GRID);
            assert_eq!(p.as_slice(), p_ref.as_slice(), "response probs x{forced}");
            assert_eq!(v.as_slice(), v_ref.as_slice(), "response vars x{forced}");
        });
    }
}

/// The batched admission layer on top of the forced pool: answers coming
/// back through `PawsServer::submit` match the 1-thread direct reference
/// bit for bit at every forced worker count.
#[test]
fn batched_serve_is_bit_identical_across_forced_counts() {
    let (scenario, dataset, split) = fixture(13);
    let model = rayon::with_num_threads(1, || {
        paws_core::train(&dataset, &split, &config(13, true)).into_serving()
    });
    let prev = vec![0.0; scenario.park.n_cells()];
    let (r_ref, u_ref) = rayon::with_num_threads(1, || {
        model
            .try_risk_map(&scenario.park, &dataset, &prev, 1.0)
            .expect("direct risk map")
    });
    let (p_ref, v_ref) = rayon::with_num_threads(1, || {
        model
            .try_park_response(&scenario.park, &dataset, &prev, &GRID)
            .expect("direct response")
    });

    let server = Arc::new(PawsServer::new());
    server
        .registry()
        .install("forced-park", model, scenario.park.clone(), &dataset, &prev)
        .expect("install succeeds");
    let batch = vec![
        QueryRequest::new("forced-park", QueryKind::RiskMap { effort_km: 1.0 }),
        QueryRequest::new(
            "forced-park",
            QueryKind::ParkResponse {
                effort_grid: GRID.to_vec(),
            },
        ),
    ];
    for forced in FORCED {
        let answers = rayon::with_num_threads(forced, || server.submit(&batch));
        assert_eq!(answers.len(), 2);
        match answers[0].as_ref().expect("risk query succeeds") {
            QueryResponse::RiskMap { risk, uncertainty } => {
                assert_eq!(risk, &r_ref, "served risk drifted x{forced}");
                assert_eq!(uncertainty, &u_ref, "served uncertainty drifted x{forced}");
            }
            other => panic!("answer shape mismatch: {other:?}"),
        }
        match answers[1].as_ref().expect("response query succeeds") {
            QueryResponse::ParkResponse { probs, vars } => {
                assert_eq!(probs.as_slice(), p_ref.as_slice(), "served probs x{forced}");
                assert_eq!(vars.as_slice(), v_ref.as_slice(), "served vars x{forced}");
            }
            other => panic!("answer shape mismatch: {other:?}"),
        }
    }
}
