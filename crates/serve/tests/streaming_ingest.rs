//! Mid-traffic patrol-log ingest: folding a fresh batch of months into a
//! streaming park must refit (warm) and hot-swap atomically — every served
//! answer is wholly the pre-ingest model's or wholly the post-ingest one's
//! (both pinned against direct model calls), and queries admitted after
//! the ingest deterministically see the refreshed artifact.

use paws_core::{ColdReason, ModelConfig, RefitPath, Scenario, StreamConfig, WeakLearnerKind};
use paws_data::{build_dataset, Discretization};
use paws_serve::{ModelRegistry, PawsServer, QueryKind, QueryRequest, QueryResponse, ServeError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn config() -> ModelConfig {
    let mut config = ModelConfig::new(WeakLearnerKind::DecisionTree, true, 21);
    config.n_learners = 4;
    config.n_estimators = 4;
    config.weight_mode = paws_iware::WeightMode::Uniform;
    config
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        warmup_batches: 1,
        tolerance: 0.5,
        scaler_drift: 10.0,
    }
}

fn risk_of(answer: &QueryResponse) -> (&[f64], &[f64]) {
    match answer {
        QueryResponse::RiskMap { risk, uncertainty } => (risk, uncertainty),
        other => panic!("expected a risk map, got {other:?}"),
    }
}

#[test]
fn mid_traffic_ingest_batch_hot_swaps_without_tearing() {
    let scenario = Scenario::test_scenario(21);
    let park = scenario.park.clone();
    let batches = scenario.patrol_log_batches(2014, 2, 12);
    assert_eq!(batches.len(), 2);
    let dataset0 = build_dataset(&park, &batches[0], Discretization::quarterly());

    // Direct-call oracles: v1 is the cold install on batch 1; v2 is the
    // deterministic warm refit after batch 2, mirrored offline through an
    // identical registry so the live ingest can be checked bit-for-bit.
    let mirror = ModelRegistry::new();
    mirror
        .install_streaming(
            "oracle",
            park.clone(),
            dataset0.clone(),
            &config(),
            stream_config(),
        )
        .expect("mirror install succeeds");
    let v1 = mirror.resident("oracle").expect("oracle resident");
    let prev0 = dataset0.coverage.last().expect("batch 1 has steps").clone();
    let (r1, u1) = v1
        .model
        .try_risk_map(&park, &dataset0, &prev0, 1.0)
        .expect("v1 serves directly");

    let report = mirror
        .ingest_batch("oracle", &batches[1])
        .expect("mirror ingest succeeds")
        .expect("batch 2 has training points");
    assert!(
        matches!(report.path, RefitPath::Warm(stats) if stats.learners_kept + stats.learners_refitted > 0),
        "expected a warm refit, got {:?}",
        report.path
    );
    let mut dataset_full = dataset0.clone();
    dataset_full
        .append_observations(&park, &batches[1])
        .expect("batch 2 appends");
    let prev1 = dataset_full
        .coverage
        .last()
        .expect("batch 2 has steps")
        .clone();
    let v2 = mirror.resident("oracle").expect("oracle resident");
    let (r2, u2) = v2
        .model
        .try_risk_map(&park, &dataset_full, &prev1, 1.0)
        .expect("v2 serves directly");
    assert_ne!(r1, r2, "ingest must change the served surface");

    // The live server under traffic.
    let server = Arc::new(PawsServer::new());
    server
        .registry()
        .install_streaming(
            "mondulkiri",
            park.clone(),
            dataset0.clone(),
            &config(),
            stream_config(),
        )
        .expect("install succeeds");
    assert!(server.registry().is_streaming("mondulkiri"));

    let stop = Arc::new(AtomicBool::new(false));
    let swapped = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let swapped = Arc::clone(&swapped);
            let (r1, u1, r2, u2) = (r1.clone(), u1.clone(), r2.clone(), u2.clone());
            std::thread::spawn(move || {
                let mut seen_v1 = 0usize;
                let mut seen_v2 = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let swap_done = swapped.load(Ordering::SeqCst);
                    let answers = server.submit(&[QueryRequest::new(
                        "mondulkiri",
                        QueryKind::RiskMap { effort_km: 1.0 },
                    )]);
                    let answer = answers[0].as_ref().expect("query succeeds");
                    let (risk, uncertainty) = risk_of(answer);
                    if risk == r1.as_slice() {
                        assert_eq!(uncertainty, u1.as_slice(), "torn v1 answer");
                        assert!(!swap_done, "v1 answer after the ingest completed");
                        seen_v1 += 1;
                    } else {
                        assert_eq!(risk, r2.as_slice(), "answer matches neither model");
                        assert_eq!(uncertainty, u2.as_slice(), "torn v2 answer");
                        seen_v2 += 1;
                    }
                }
                (seen_v1, seen_v2)
            })
        })
        .collect();

    // Let traffic build up on v1, then ingest batch 2 mid-traffic.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let live_report = server
        .registry()
        .ingest_batch("mondulkiri", &batches[1])
        .expect("live ingest succeeds")
        .expect("batch 2 has training points");
    assert_eq!(
        live_report.path, report.path,
        "live ingest mirrors the oracle"
    );
    swapped.store(true, Ordering::SeqCst);
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);

    let mut total_v1 = 0;
    let mut total_v2 = 0;
    for h in handles {
        let (seen_v1, seen_v2) = h.join().expect("no query thread panics");
        total_v1 += seen_v1;
        total_v2 += seen_v2;
    }
    assert!(total_v1 > 0, "no pre-ingest traffic was served");
    assert!(total_v2 > 0, "no post-ingest traffic was served");

    // Queries admitted after the ingest deterministically see v2.
    let answers = server.submit(&[QueryRequest::new(
        "mondulkiri",
        QueryKind::RiskMap { effort_km: 1.0 },
    )]);
    let (risk, uncertainty) = risk_of(answers[0].as_ref().expect("post-ingest risk map"));
    assert_eq!(risk, r2.as_slice(), "post-ingest answer is not v2's");
    assert_eq!(uncertainty, u2.as_slice());
}

#[test]
fn ingest_rejections_are_typed_and_leave_serving_untouched() {
    let scenario = Scenario::test_scenario(22);
    let park = scenario.park.clone();
    let batches = scenario.patrol_log_batches(2014, 2, 12);
    let dataset0 = build_dataset(&park, &batches[0], Discretization::quarterly());

    let registry = ModelRegistry::new();
    let report = registry
        .install_streaming(
            "mondulkiri",
            park.clone(),
            dataset0,
            &config(),
            stream_config(),
        )
        .expect("install succeeds");
    assert_eq!(report.path, RefitPath::Cold(ColdReason::Warmup));

    // Replaying batch 1 is out of order — typed rejection, model untouched.
    let before = registry.resident("mondulkiri").expect("resident");
    assert!(matches!(
        registry.ingest_batch("mondulkiri", &batches[0]),
        Err(ServeError::Ingest(_))
    ));
    let after = registry.resident("mondulkiri").expect("still resident");
    assert!(
        Arc::ptr_eq(&before, &after),
        "rejected ingest must not swap"
    );

    // Ingesting into a non-streaming park is a typed error too.
    assert!(matches!(
        registry.ingest_batch("nonexistent", &batches[1]),
        Err(ServeError::Ingest(_))
    ));

    // A valid batch still lands after the rejections.
    assert!(registry
        .ingest_batch("mondulkiri", &batches[1])
        .expect("ingest succeeds")
        .is_some());

    // Eviction drops the streaming slot with the bundle.
    registry.evict("mondulkiri");
    assert!(!registry.is_streaming("mondulkiri"));
    assert!(matches!(
        registry.ingest_batch("mondulkiri", &batches[1]),
        Err(ServeError::Ingest(_))
    ));
}
