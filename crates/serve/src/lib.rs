//! # paws-serve
//!
//! The deployment-facing serving surface of the PAWS reproduction: many
//! parks resident at once, each served from immutable artifacts, with
//! batched query admission on top.
//!
//! The paper's system serves risk maps and patrol plans continuously for
//! many protected areas; this crate is that architecture over the repo's
//! fit/serve split ([`paws_core::serving`]):
//!
//! * [`ModelRegistry`] — resident parks as atomic-swappable
//!   `Arc<ResidentPark>` bundles (serving model, prepared feature planes
//!   and park geometry). Hot-swapping a model from a live fit or a stack
//!   snapshot never tears an in-flight query. Parks installed via
//!   [`ModelRegistry::install_streaming`] also keep their dataset and a
//!   [`paws_core::StreamingFit`] warm-refit driver resident, so
//!   [`ModelRegistry::ingest_batch`] can fold a fresh patrol-log batch
//!   into the dataset, refit incrementally, and hot-swap mid-traffic.
//! * [`PawsServer`] — batched admission: group by park, snapshot each
//!   bundle once, coalesce same-park risk-map levels into one pass of the
//!   256-row block kernels, share identical response grids, fan park
//!   groups across the work-stealing pool, and answer every request with
//!   a typed result honouring its [`paws_solver::SolveBudget`] deadline.
//!
//! ```no_run
//! use paws_core::{Scenario, ModelConfig, WeakLearnerKind};
//! use paws_data::{build_dataset, split_by_test_year, Discretization};
//! use paws_serve::{PawsServer, QueryKind, QueryRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::test_scenario(7);
//! let history = scenario.simulate_years(2014, 4);
//! let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
//! let split = split_by_test_year(&dataset, 2017, 3).ok_or("2017 present")?;
//! let config = ModelConfig::new(WeakLearnerKind::DecisionTree, true, 7);
//! let model = paws_core::train(&dataset, &split, &config).into_serving();
//!
//! let server = PawsServer::new();
//! let prev = vec![0.0; scenario.park.n_cells()];
//! server
//!     .registry()
//!     .install("mondulkiri", model, scenario.park.clone(), &dataset, &prev)?;
//! let answers = server.submit(&[QueryRequest::new(
//!     "mondulkiri",
//!     QueryKind::RiskMap { effort_km: 1.0 },
//! )]);
//! assert!(answers[0].is_ok());
//! # Ok(())
//! # }
//! ```

pub mod registry;
pub mod request;
pub mod server;

pub use registry::{ModelRegistry, ResidentPark};
pub use request::{QueryKind, QueryRequest, QueryResponse, ServeError};
pub use server::PawsServer;
