//! Typed serving requests, responses and errors.
//!
//! A [`QueryRequest`] names a resident park, the query to run against its
//! cached artifacts, and a per-request [`SolveBudget`] deadline. Admission
//! ([`crate::server::PawsServer::submit`]) answers each request with a
//! [`QueryResponse`] or a typed [`ServeError`]; nothing on the serving
//! surface panics on caller input.

use paws_core::PawsError;
use paws_data::Matrix;
use paws_geo::CellId;
use paws_plan::PatrolPlan;
use paws_solver::SolveBudget;
use std::fmt;

/// What to compute against a resident park's cached artifacts.
#[derive(Debug, Clone)]
pub enum QueryKind {
    /// Risk + uncertainty for every park cell at one prospective effort
    /// level. Same-park risk-map requests in a batch are coalesced into a
    /// single response-surface evaluation over their sorted union grid.
    RiskMap {
        /// Prospective patrol effort (km) applied to every cell.
        effort_km: f64,
    },
    /// Full `cells × effort-levels` response surfaces g_v(c), ν_v(c).
    /// Identical grids within a batch are computed once and shared.
    ParkResponse {
        /// Prospective effort levels, one response column each.
        effort_grid: Vec<f64>,
    },
    /// A robust patrol plan for one patrol post, built from the park's
    /// cached response surface; the request's remaining deadline bounds
    /// the MILP solve (anytime, degrading — never hanging).
    PatrolPlan {
        /// Patrol post the routes must start from.
        post: CellId,
        /// Effort levels discretising the per-cell response curves.
        effort_grid: Vec<f64>,
        /// Maximum patrol length (km) per patroller.
        patrol_length_km: f64,
        /// Number of simultaneous patrols.
        n_patrols: usize,
        /// Risk-aversion weight β on the squashed uncertainty term.
        beta: f64,
    },
}

/// One admission-layer request against a resident park.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Registry name of the resident park to query.
    pub park: String,
    /// The query to run.
    pub kind: QueryKind,
    /// Per-request deadline: requests whose wall-clock budget is exhausted
    /// are answered [`ServeError::DeadlineExceeded`] instead of being
    /// served late, and a patrol-plan solve receives only the budget that
    /// remains when it starts. [`SolveBudget::unlimited`] opts out.
    pub budget: SolveBudget,
}

impl QueryRequest {
    /// An unbudgeted request (no deadline).
    pub fn new(park: impl Into<String>, kind: QueryKind) -> Self {
        Self {
            park: park.into(),
            kind,
            budget: SolveBudget::unlimited(),
        }
    }

    /// Attach a solve budget to the request.
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// A served query result, mirroring [`QueryKind`].
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// Per-cell risk and uncertainty at the requested effort level.
    RiskMap {
        /// Detection probability per park cell.
        risk: Vec<f64>,
        /// Predictive variance per park cell.
        uncertainty: Vec<f64>,
    },
    /// Flat `cells × effort-levels` response surfaces.
    ParkResponse {
        /// Predicted detection probability per (cell, effort level).
        probs: Matrix,
        /// Predictive variance per (cell, effort level).
        vars: Matrix,
    },
    /// The computed patrol plan (possibly `Degraded` under a tight budget).
    PatrolPlan(PatrolPlan),
}

/// Why the admission layer refused (or failed) a request.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The named park has no resident model.
    UnknownPark(String),
    /// The request's wall-clock budget ran out before its query started.
    DeadlineExceeded {
        /// The park the request addressed.
        park: String,
    },
    /// The model layer rejected the query (bad input, plan failure, …).
    Model(PawsError),
    /// A patrol-log ingest was rejected before any state changed
    /// (park/dataset mismatch, out-of-order months, no streaming slot, …).
    Ingest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownPark(park) => write!(f, "no resident model for park {park:?}"),
            ServeError::DeadlineExceeded { park } => {
                write!(f, "request deadline exhausted before serving park {park:?}")
            }
            ServeError::Model(e) => write!(f, "model layer rejected the query: {e}"),
            ServeError::Ingest(msg) => write!(f, "patrol-log ingest rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PawsError> for ServeError {
    fn from(e: PawsError) -> Self {
        ServeError::Model(e)
    }
}

impl From<paws_data::AppendError> for ServeError {
    fn from(e: paws_data::AppendError) -> Self {
        ServeError::Ingest(e.to_string())
    }
}
