//! The resident-model registry: which parks are being served, by which
//! immutable artifacts.
//!
//! Each resident park is one [`ResidentPark`] bundle — serving model,
//! prepared feature planes and park geometry, built together so they can
//! never be observed torn — published behind an `Arc`. Readers snapshot the
//! `Arc` under a short read lock and then serve entirely lock-free;
//! [`ModelRegistry::swap_model`] builds the replacement bundle *outside*
//! the lock (standardise + narrow against the incoming scaler) and only
//! then swaps the map entry, so in-flight queries finish on the artifact
//! they snapshotted while new queries see the new one.

use crate::request::ServeError;
use paws_core::{ModelConfig, PreparedPark, ServingModel};
use paws_data::{Dataset, Matrix, StandardScaler};
use paws_geo::Park;
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Everything needed to serve one park, as a single immutable bundle.
pub struct ResidentPark {
    /// The immutable serving artifact.
    pub model: ServingModel,
    /// The park's feature stack, standardised + narrowed once against
    /// `model`'s scaler.
    pub prepared: PreparedPark,
    /// Park geometry (adjacency, patrol posts) for plan queries.
    pub park: Park,
    /// The raw (unscaled) feature stack the planes were prepared from;
    /// kept so a model swap can re-prepare without re-touching the
    /// dataset.
    raw_rows: Matrix,
}

/// Multi-park registry of resident serving artifacts.
#[derive(Default)]
pub struct ModelRegistry {
    parks: RwLock<HashMap<String, Arc<ResidentPark>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // A poisoned registry lock would mean a panic *while holding the
    // write lock*; swaps build the new bundle before locking, so the
    // critical sections are a map insert/lookup only. Recover the data
    // rather than cascading the poison to every serving thread.
    fn read_parks(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<ResidentPark>>> {
        match self.parks.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_parks(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<ResidentPark>>> {
        match self.parks.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Install (or replace) a resident park: assemble its feature stack
    /// from the dataset at the given previous coverage, prepare both
    /// precision planes against the model's scaler, and publish the
    /// bundle.
    pub fn install(
        &self,
        name: impl Into<String>,
        model: ServingModel,
        park: Park,
        dataset: &Dataset,
        prev_coverage: &[f64],
    ) -> Result<(), ServeError> {
        let name = name.into();
        if prev_coverage.len() != park.n_cells() {
            return Err(ServeError::Model(paws_core::PawsError::Input(
                "previous-coverage length does not match the park's cell count",
            )));
        }
        let raw_rows = dataset.full_feature_matrix(&park, prev_coverage);
        let prepared = model.prepare_rows(raw_rows.clone())?;
        let resident = Arc::new(ResidentPark {
            model,
            prepared,
            park,
            raw_rows,
        });
        self.write_parks().insert(name, resident);
        Ok(())
    }

    /// Snapshot the current bundle for a park. The returned `Arc` stays
    /// valid (and unchanged) for as long as the caller holds it, however
    /// many swaps happen meanwhile.
    pub fn resident(&self, name: &str) -> Option<Arc<ResidentPark>> {
        self.read_parks().get(name).cloned()
    }

    /// Hot-swap a park's serving artifact. The replacement bundle —
    /// including freshly prepared feature planes against the incoming
    /// model's scaler — is built before the registry lock is taken, so
    /// readers only ever observe the old bundle or the complete new one.
    ///
    /// # Errors
    /// [`ServeError::UnknownPark`] when the park is not resident;
    /// [`ServeError::Model`] when the park's stack cannot be prepared for
    /// the incoming model (e.g. feature-width mismatch).
    pub fn swap_model(&self, name: &str, model: ServingModel) -> Result<(), ServeError> {
        let current = self
            .resident(name)
            .ok_or_else(|| ServeError::UnknownPark(name.to_string()))?;
        let raw_rows = current.raw_rows.clone();
        let prepared = model.prepare_rows(raw_rows.clone())?;
        let resident = Arc::new(ResidentPark {
            model,
            prepared,
            park: current.park.clone(),
            raw_rows,
        });
        self.write_parks().insert(name.to_string(), resident);
        Ok(())
    }

    /// Hot-swap a park's serving artifact from a learner-stack snapshot
    /// (see [`ServingModel::from_stack_snapshot`]): rehydrate, re-prepare
    /// the park's cached stack, publish atomically.
    pub fn swap_from_snapshot(
        &self,
        name: &str,
        bytes: &[u8],
        config: ModelConfig,
        scaler: StandardScaler,
    ) -> Result<(), ServeError> {
        let model = ServingModel::from_stack_snapshot(bytes, config, scaler)?;
        self.swap_model(name, model)
    }

    /// Remove a resident park; returns its final bundle if it existed.
    pub fn evict(&self, name: &str) -> Option<Arc<ResidentPark>> {
        self.write_parks().remove(name)
    }

    /// Names of all resident parks (unordered).
    pub fn names(&self) -> Vec<String> {
        self.read_parks().keys().cloned().collect()
    }

    /// Number of resident parks.
    pub fn len(&self) -> usize {
        self.read_parks().len()
    }

    /// True when no park is resident.
    pub fn is_empty(&self) -> bool {
        self.read_parks().is_empty()
    }
}
