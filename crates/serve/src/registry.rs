//! The resident-model registry: which parks are being served, by which
//! immutable artifacts.
//!
//! Each resident park is one [`ResidentPark`] bundle — serving model,
//! prepared feature planes and park geometry, built together so they can
//! never be observed torn — published behind an `Arc`. Readers snapshot the
//! `Arc` under a short read lock and then serve entirely lock-free;
//! [`ModelRegistry::swap_model`] builds the replacement bundle *outside*
//! the lock (standardise + narrow against the incoming scaler) and only
//! then swaps the map entry, so in-flight queries finish on the artifact
//! they snapshotted while new queries see the new one.

use crate::request::ServeError;
use paws_core::{BatchReport, ModelConfig, PreparedPark, ServingModel, StreamConfig, StreamingFit};
use paws_data::{Dataset, Matrix, StandardScaler};
use paws_geo::Park;
use paws_sim::History;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Everything needed to serve one park, as a single immutable bundle.
pub struct ResidentPark {
    /// The immutable serving artifact.
    pub model: ServingModel,
    /// The park's feature stack, standardised + narrowed once against
    /// `model`'s scaler.
    pub prepared: PreparedPark,
    /// Park geometry (adjacency, patrol posts) for plan queries.
    pub park: Park,
    /// The raw (unscaled) feature stack the planes were prepared from;
    /// kept so a model swap can re-prepare without re-touching the
    /// dataset.
    raw_rows: Matrix,
}

/// Mutable fit-side state of one streaming park: the growing dataset and
/// the warm-refit driver. Kept separate from the immutable serving bundle
/// — queries never touch this, only [`ModelRegistry::ingest_batch`] does,
/// one batch at a time under the slot's mutex.
struct StreamSlot {
    park: Park,
    dataset: Dataset,
    fit: StreamingFit,
}

/// Multi-park registry of resident serving artifacts.
#[derive(Default)]
pub struct ModelRegistry {
    parks: RwLock<HashMap<String, Arc<ResidentPark>>>,
    streams: RwLock<HashMap<String, Arc<Mutex<StreamSlot>>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // A poisoned registry lock would mean a panic *while holding the
    // write lock*; swaps build the new bundle before locking, so the
    // critical sections are a map insert/lookup only. Recover the data
    // rather than cascading the poison to every serving thread.
    fn read_parks(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<ResidentPark>>> {
        match self.parks.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_parks(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<ResidentPark>>> {
        match self.parks.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Install (or replace) a resident park: assemble its feature stack
    /// from the dataset at the given previous coverage, prepare both
    /// precision planes against the model's scaler, and publish the
    /// bundle.
    pub fn install(
        &self,
        name: impl Into<String>,
        model: ServingModel,
        park: Park,
        dataset: &Dataset,
        prev_coverage: &[f64],
    ) -> Result<(), ServeError> {
        let name = name.into();
        if prev_coverage.len() != park.n_cells() {
            return Err(ServeError::Model(paws_core::PawsError::Input(
                "previous-coverage length does not match the park's cell count",
            )));
        }
        let raw_rows = dataset.full_feature_matrix(&park, prev_coverage);
        let prepared = model.prepare_rows(raw_rows.clone())?;
        let resident = Arc::new(ResidentPark {
            model,
            prepared,
            park,
            raw_rows,
        });
        self.write_parks().insert(name, resident);
        Ok(())
    }

    /// Snapshot the current bundle for a park. The returned `Arc` stays
    /// valid (and unchanged) for as long as the caller holds it, however
    /// many swaps happen meanwhile.
    pub fn resident(&self, name: &str) -> Option<Arc<ResidentPark>> {
        self.read_parks().get(name).cloned()
    }

    /// Hot-swap a park's serving artifact. The replacement bundle —
    /// including freshly prepared feature planes against the incoming
    /// model's scaler — is built before the registry lock is taken, so
    /// readers only ever observe the old bundle or the complete new one.
    ///
    /// # Errors
    /// [`ServeError::UnknownPark`] when the park is not resident;
    /// [`ServeError::Model`] when the park's stack cannot be prepared for
    /// the incoming model (e.g. feature-width mismatch).
    pub fn swap_model(&self, name: &str, model: ServingModel) -> Result<(), ServeError> {
        let current = self
            .resident(name)
            .ok_or_else(|| ServeError::UnknownPark(name.to_string()))?;
        let raw_rows = current.raw_rows.clone();
        let prepared = model.prepare_rows(raw_rows.clone())?;
        let resident = Arc::new(ResidentPark {
            model,
            prepared,
            park: current.park.clone(),
            raw_rows,
        });
        self.write_parks().insert(name.to_string(), resident);
        Ok(())
    }

    /// Hot-swap a park's serving artifact from a learner-stack snapshot
    /// (see [`ServingModel::from_stack_snapshot`]): rehydrate, re-prepare
    /// the park's cached stack, publish atomically.
    pub fn swap_from_snapshot(
        &self,
        name: &str,
        bytes: &[u8],
        config: ModelConfig,
        scaler: StandardScaler,
    ) -> Result<(), ServeError> {
        let model = ServingModel::from_stack_snapshot(bytes, config, scaler)?;
        self.swap_model(name, model)
    }

    fn read_streams(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<Mutex<StreamSlot>>>> {
        match self.streams.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_streams(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<Mutex<StreamSlot>>>> {
        match self.streams.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    // A poisoned slot means a refit panicked mid-ingest. Both the dataset
    // append and the streaming driver validate before mutating, so the
    // slot is either untouched or holds a consistently grown batch whose
    // refit never published; recovering lets the next batch retry the fit
    // instead of wedging the park's ingest path forever.
    fn lock_slot(slot: &Mutex<StreamSlot>) -> MutexGuard<'_, StreamSlot> {
        match slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Install a park on the *streaming* ingest path: cold-fit the
    /// streaming driver on every training point already in the dataset,
    /// publish the resulting bundle, and keep the dataset + driver
    /// resident so later [`ModelRegistry::ingest_batch`] calls can refit
    /// warmly. Returns the cold batch's report.
    ///
    /// # Errors
    /// [`ServeError::Ingest`] when the dataset is empty or does not match
    /// the park; [`ServeError::Model`] when the cold fit cannot serve at
    /// the configured precision.
    pub fn install_streaming(
        &self,
        name: impl Into<String>,
        park: Park,
        dataset: Dataset,
        config: &ModelConfig,
        stream: StreamConfig,
    ) -> Result<BatchReport, ServeError> {
        let name = name.into();
        if dataset.n_points() == 0 {
            return Err(ServeError::Ingest(
                "cannot install a streaming park from an empty dataset".to_string(),
            ));
        }
        let mut fit = StreamingFit::new(config.clone(), stream);
        let idx: Vec<usize> = (0..dataset.n_points()).collect();
        let (model, report) = fit.ingest(
            dataset.feature_rows(&idx).view(),
            &dataset.labels(&idx),
            &dataset.efforts(&idx),
        )?;
        let prev = last_coverage(&dataset, &park);
        self.install(name.clone(), model, park.clone(), &dataset, &prev)?;
        let slot = Arc::new(Mutex::new(StreamSlot { park, dataset, fit }));
        self.write_streams().insert(name, slot);
        Ok(report)
    }

    /// Ingest one patrol-log batch into a streaming park: append the new
    /// months to its resident dataset, refit (warm where the drift budget
    /// allows, cold otherwise), and hot-swap the serving bundle — queries
    /// in flight finish on the artifact they snapshotted, later ones see
    /// the refreshed model and coverage. Returns `None` when the batch
    /// contained no patrolled cells (nothing to learn from; no swap).
    ///
    /// Per-park ingests are serialised by the slot's mutex; queries are
    /// never blocked by an ingest.
    ///
    /// # Errors
    /// [`ServeError::Ingest`] when the park was not installed via
    /// [`ModelRegistry::install_streaming`] or the batch is rejected by
    /// dataset validation (wrong park, out-of-order months, non-finite
    /// values) — the dataset is untouched on every rejection.
    pub fn ingest_batch(
        &self,
        name: &str,
        history: &History,
    ) -> Result<Option<BatchReport>, ServeError> {
        let slot = self
            .read_streams()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::Ingest(format!("park {name:?} is not streaming")))?;
        let mut slot = Self::lock_slot(&slot);
        let before = slot.dataset.n_points();
        let appended = {
            let StreamSlot { park, dataset, .. } = &mut *slot;
            dataset.append_observations(park, history)?
        };
        if appended == 0 {
            return Ok(None);
        }
        let idx: Vec<usize> = (before..before + appended).collect();
        let rows = slot.dataset.feature_rows(&idx);
        let labels = slot.dataset.labels(&idx);
        let efforts = slot.dataset.efforts(&idx);
        let (model, report) = slot.fit.ingest(rows.view(), &labels, &efforts)?;
        let prev = last_coverage(&slot.dataset, &slot.park);
        self.install(name, model, slot.park.clone(), &slot.dataset, &prev)?;
        Ok(Some(report))
    }

    /// True when the park was installed on the streaming ingest path.
    pub fn is_streaming(&self, name: &str) -> bool {
        self.read_streams().contains_key(name)
    }

    /// Remove a resident park; returns its final bundle if it existed.
    /// Any streaming ingest state for the park is dropped with it.
    pub fn evict(&self, name: &str) -> Option<Arc<ResidentPark>> {
        self.write_streams().remove(name);
        self.write_parks().remove(name)
    }

    /// Names of all resident parks (unordered).
    pub fn names(&self) -> Vec<String> {
        self.read_parks().keys().cloned().collect()
    }

    /// Number of resident parks.
    pub fn len(&self) -> usize {
        self.read_parks().len()
    }

    /// True when no park is resident.
    pub fn is_empty(&self) -> bool {
        self.read_parks().is_empty()
    }
}

/// The most recent per-cell coverage the dataset has seen, or all-zero
/// before the first step — the `prev_coverage` the serving feature stack
/// is assembled at.
fn last_coverage(dataset: &Dataset, park: &Park) -> Vec<f64> {
    match dataset.coverage.last() {
        Some(cov) => cov.clone(),
        None => vec![0.0; park.n_cells()],
    }
}
