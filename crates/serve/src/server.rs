//! Batched query admission over the resident-model registry.
//!
//! [`PawsServer::submit`] takes a batch of [`QueryRequest`]s addressed to
//! any number of resident parks and answers every one of them:
//!
//! 1. requests are grouped by park, and each group snapshots its park's
//!    [`crate::registry::ResidentPark`] bundle exactly once — a hot swap
//!    landing mid-batch never mixes artifacts within a group;
//! 2. park groups fan out across the work-stealing pool, and inside a
//!    group same-park work is **coalesced**: every risk-map request joins
//!    one response-surface evaluation over the sorted union of requested
//!    effort levels (one pass of the 256-row block kernels instead of one
//!    per request — bit-identical, because a level's qualified learner set
//!    depends only on the level, not on its neighbours in the grid), and
//!    identical park-response / plan grids are computed once and shared;
//! 3. each answer is a typed [`QueryResponse`] / [`ServeError`] — the
//!    admission layer never panics on caller input — and a request whose
//!    [`paws_solver::SolveBudget`] wall-clock deadline lapses before its
//!    query starts is refused with [`ServeError::DeadlineExceeded`], while
//!    a patrol-plan solve receives only its remaining budget (degrading
//!    gracefully instead of overrunning).

use crate::registry::{ModelRegistry, ResidentPark};
use crate::request::{QueryKind, QueryRequest, QueryResponse, ServeError};
use paws_core::try_planning_problem_from_response;
use paws_data::Matrix;
use paws_plan::{try_plan, PlannerConfig};
use paws_solver::SolveBudget;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The serving front end: a registry plus the batched admission layer.
#[derive(Default)]
pub struct PawsServer {
    registry: ModelRegistry,
    /// Planner settings for patrol-plan queries (method, PWL segments);
    /// the per-request budget is injected on top of these.
    pub planner: PlannerConfig,
}

/// One park's slice of a batch: the original request indices (answers are
/// scattered back into submission order).
struct ParkGroup<'a> {
    name: &'a str,
    requests: Vec<(usize, &'a QueryRequest)>,
}

impl PawsServer {
    /// A server with an empty registry and default planner settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// The resident-model registry (install/swap/evict parks here).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Serve a batch of queries, one answer per request, in submission
    /// order. See the module docs for the admission pipeline.
    pub fn submit(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, ServeError>> {
        let admitted = Instant::now();
        // Group by park, preserving first-seen park order for determinism.
        let mut order: Vec<&str> = Vec::new();
        let mut groups: HashMap<&str, Vec<(usize, &QueryRequest)>> = HashMap::new();
        for (idx, req) in requests.iter().enumerate() {
            let slot = groups.entry(req.park.as_str()).or_insert_with(|| {
                order.push(req.park.as_str());
                Vec::new()
            });
            slot.push((idx, req));
        }
        let groups: Vec<ParkGroup<'_>> = order
            .into_iter()
            .map(|name| ParkGroup {
                name,
                requests: groups.remove(name).unwrap_or_default(),
            })
            .collect();

        // Snapshot each park's bundle once per batch, then fan out.
        let mut answers: Vec<Option<Result<QueryResponse, ServeError>>> =
            (0..requests.len()).map(|_| None).collect();
        let served: Vec<Vec<(usize, Result<QueryResponse, ServeError>)>> = groups
            .par_iter()
            .map(|group| {
                let resident = self.registry.resident(group.name);
                self.serve_group(group, resident, admitted)
            })
            .collect();
        for (idx, answer) in served.into_iter().flatten() {
            answers[idx] = Some(answer);
        }
        answers
            .into_iter()
            .map(|a| {
                a.unwrap_or(Err(ServeError::Model(paws_core::PawsError::Input(
                    "request was not routed to any park group",
                ))))
            })
            .collect()
    }

    /// Serve one park's requests against one snapshotted bundle.
    fn serve_group(
        &self,
        group: &ParkGroup<'_>,
        resident: Option<Arc<ResidentPark>>,
        admitted: Instant,
    ) -> Vec<(usize, Result<QueryResponse, ServeError>)> {
        let Some(resident) = resident else {
            return group
                .requests
                .iter()
                .map(|&(idx, _)| (idx, Err(ServeError::UnknownPark(group.name.to_string()))))
                .collect();
        };

        // ---- Coalesce the group's risk-map levels into one union grid.
        // A level's qualified learner set depends only on the level, so one
        // response-surface pass over the sorted distinct levels yields each
        // request's risk map as a column, bit-identical to a direct call.
        let mut union_grid: Vec<f64> = group
            .requests
            .iter()
            .filter_map(|(_, req)| match req.kind {
                QueryKind::RiskMap { effort_km } if effort_km.is_finite() && effort_km >= 0.0 => {
                    Some(effort_km)
                }
                _ => None,
            })
            .collect();
        union_grid.sort_by(f64::total_cmp);
        union_grid.dedup_by(|a, b| a == b);
        let union_maps: Option<(Matrix, Matrix)> = if union_grid.len() > 1 {
            resident
                .model
                .try_park_response_prepared(&resident.prepared, &union_grid)
                .ok()
        } else {
            None
        };

        // ---- Share identical effort grids across response/plan requests.
        let mut response_cache: HashMap<Vec<u64>, Result<(Matrix, Matrix), ServeError>> =
            HashMap::new();

        group
            .requests
            .iter()
            .map(|&(idx, req)| {
                if deadline_lapsed(&req.budget, admitted) {
                    return (
                        idx,
                        Err(ServeError::DeadlineExceeded {
                            park: group.name.to_string(),
                        }),
                    );
                }
                let answer = match &req.kind {
                    QueryKind::RiskMap { effort_km } => {
                        self.serve_risk_map(&resident, *effort_km, &union_grid, union_maps.as_ref())
                    }
                    QueryKind::ParkResponse { effort_grid } => {
                        cached_response(&resident, effort_grid, &mut response_cache)
                            .map(|(probs, vars)| QueryResponse::ParkResponse { probs, vars })
                    }
                    QueryKind::PatrolPlan {
                        post,
                        effort_grid,
                        patrol_length_km,
                        n_patrols,
                        beta,
                    } => {
                        let (probs, vars) =
                            match cached_response(&resident, effort_grid, &mut response_cache) {
                                Ok(maps) => maps,
                                Err(e) => return (idx, Err(e)),
                            };
                        let problem = match try_planning_problem_from_response(
                            &resident.park,
                            *post,
                            effort_grid,
                            &probs,
                            &vars,
                            *patrol_length_km,
                            *n_patrols,
                            *beta,
                        ) {
                            Ok(p) => p,
                            Err(e) => return (idx, Err(ServeError::Model(e))),
                        };
                        // The solve gets whatever wall clock the request
                        // has left; a lapsed budget degrades the plan
                        // rather than hanging the batch.
                        let mut config = self.planner.clone();
                        config.milp.budget = remaining_budget(&req.budget, admitted);
                        try_plan(&problem, &config)
                            .map(QueryResponse::PatrolPlan)
                            .map_err(|e| ServeError::Model(e.into()))
                    }
                };
                (idx, answer)
            })
            .collect()
    }

    /// Answer one risk-map request, preferring the group's coalesced
    /// surface; single-level groups (and any level the coalesced pass
    /// could not serve) fall back to the direct prepared path.
    fn serve_risk_map(
        &self,
        resident: &ResidentPark,
        effort_km: f64,
        union_grid: &[f64],
        union_maps: Option<&(Matrix, Matrix)>,
    ) -> Result<QueryResponse, ServeError> {
        if let Some((probs, vars)) = union_maps {
            if let Some(level) = union_grid.iter().position(|&g| g == effort_km) {
                let risk: Vec<f64> = probs.rows().map(|r| r[level]).collect();
                let uncertainty: Vec<f64> = vars.rows().map(|r| r[level]).collect();
                return Ok(QueryResponse::RiskMap { risk, uncertainty });
            }
        }
        resident
            .model
            .try_risk_map_prepared(&resident.prepared, effort_km)
            .map(|(risk, uncertainty)| QueryResponse::RiskMap { risk, uncertainty })
            .map_err(ServeError::from)
    }
}

/// Compute (or reuse) the response surface for an exact effort grid.
fn cached_response(
    resident: &ResidentPark,
    effort_grid: &[f64],
    cache: &mut HashMap<Vec<u64>, Result<(Matrix, Matrix), ServeError>>,
) -> Result<(Matrix, Matrix), ServeError> {
    let key: Vec<u64> = effort_grid.iter().map(|e| e.to_bits()).collect();
    cache
        .entry(key)
        .or_insert_with(|| {
            resident
                .model
                .try_park_response_prepared(&resident.prepared, effort_grid)
                .map_err(ServeError::from)
        })
        .clone()
}

/// True when the request's wall-clock budget lapsed before its query ran.
fn deadline_lapsed(budget: &SolveBudget, admitted: Instant) -> bool {
    budget
        .time_limit
        .is_some_and(|limit| admitted.elapsed() >= limit)
}

/// The budget left for a solve that starts now.
fn remaining_budget(budget: &SolveBudget, admitted: Instant) -> SolveBudget {
    SolveBudget {
        time_limit: budget
            .time_limit
            .map(|limit| limit.saturating_sub(admitted.elapsed())),
        max_lp_iterations: budget.max_lp_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{QueryKind, QueryRequest};
    use paws_core::{ModelConfig, PawsError, Scenario, ServingModel, WeakLearnerKind};
    use paws_data::{build_dataset, split_by_test_year, Dataset, Discretization};
    use paws_geo::Park;
    use paws_solver::SolveStatus;
    use std::time::Duration;

    fn fixture() -> (Park, Dataset, ServingModel) {
        let scenario = Scenario::test_scenario(3);
        let history = scenario.simulate_years(2014, 3);
        let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
        let split = split_by_test_year(&dataset, 2016, 2).expect("split exists");
        let mut config = ModelConfig::new(WeakLearnerKind::DecisionTree, true, 3);
        config.n_learners = 4;
        config.n_estimators = 4;
        config.weight_mode = paws_iware::WeightMode::Uniform;
        let model = paws_core::train(&dataset, &split, &config).into_serving();
        (scenario.park, dataset, model)
    }

    fn server_with_park() -> (PawsServer, Park) {
        let (park, dataset, model) = fixture();
        let server = PawsServer::new();
        let prev = vec![0.0; park.n_cells()];
        server
            .registry()
            .install("mondulkiri", model, park.clone(), &dataset, &prev)
            .expect("install succeeds");
        (server, park)
    }

    #[test]
    fn unknown_parks_and_empty_batches_are_handled() {
        let (server, _) = server_with_park();
        assert!(server.submit(&[]).is_empty());
        let answers = server.submit(&[QueryRequest::new(
            "atlantis",
            QueryKind::RiskMap { effort_km: 1.0 },
        )]);
        assert!(matches!(&answers[0], Err(ServeError::UnknownPark(p)) if p == "atlantis"));
    }

    #[test]
    fn invalid_queries_get_typed_errors_without_poisoning_the_batch() {
        let (server, park) = server_with_park();
        let answers = server.submit(&[
            QueryRequest::new(
                "mondulkiri",
                QueryKind::RiskMap {
                    effort_km: f64::NAN,
                },
            ),
            QueryRequest::new("mondulkiri", QueryKind::RiskMap { effort_km: -2.0 }),
            QueryRequest::new("mondulkiri", QueryKind::RiskMap { effort_km: 1.0 }),
            QueryRequest::new(
                "mondulkiri",
                QueryKind::ParkResponse {
                    effort_grid: vec![],
                },
            ),
            QueryRequest::new(
                "mondulkiri",
                QueryKind::PatrolPlan {
                    post: park.patrol_posts[0],
                    effort_grid: vec![0.0, 1.0],
                    patrol_length_km: 8.0,
                    n_patrols: 2,
                    beta: 1.5,
                },
            ),
        ]);
        assert!(matches!(
            &answers[0],
            Err(ServeError::Model(PawsError::Input(_)))
        ));
        assert!(matches!(
            &answers[1],
            Err(ServeError::Model(PawsError::Input(_)))
        ));
        assert!(answers[2].is_ok(), "the valid query still serves");
        assert!(matches!(
            &answers[3],
            Err(ServeError::Model(PawsError::Query(_)))
        ));
        assert!(
            matches!(&answers[4], Err(ServeError::Model(PawsError::Input(_)))),
            "beta outside [0, 1] is refused, not a panic"
        );
    }

    #[test]
    fn lapsed_deadlines_refuse_queries_and_starved_plans_degrade() {
        let (server, park) = server_with_park();
        let answers = server.submit(&[
            QueryRequest::new("mondulkiri", QueryKind::RiskMap { effort_km: 1.0 })
                .with_budget(SolveBudget::with_time_limit(Duration::ZERO)),
            QueryRequest::new("mondulkiri", QueryKind::RiskMap { effort_km: 1.0 }),
        ]);
        assert!(matches!(
            &answers[0],
            Err(ServeError::DeadlineExceeded { park }) if park == "mondulkiri"
        ));
        assert!(answers[1].is_ok(), "unbudgeted sibling is unaffected");

        // A plan whose budget lapses *during* the batch (deadline checks
        // pass at admission, solver budget is already empty) degrades to
        // the greedy incumbent instead of hanging or failing.
        let plan_req = QueryRequest::new(
            "mondulkiri",
            QueryKind::PatrolPlan {
                post: park.patrol_posts[0],
                effort_grid: vec![0.0, 0.5, 1.0, 2.0],
                patrol_length_km: 8.0,
                n_patrols: 2,
                beta: 0.8,
            },
        )
        .with_budget(SolveBudget::with_time_limit(Duration::from_nanos(1)));
        // The nanosecond budget may or may not lapse before admission on a
        // fast machine; both outcomes are acceptable, a panic or an
        // untagged full solve is not.
        let answers = server.submit(&[plan_req]);
        match &answers[0] {
            Ok(QueryResponse::PatrolPlan(plan)) => {
                assert_eq!(plan.status, SolveStatus::Degraded);
            }
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("unexpected starved-plan outcome: {other:?}"),
        }
    }

    #[test]
    fn identical_grids_are_computed_once_and_shared() {
        let (server, _) = server_with_park();
        let grid = vec![0.0, 0.5, 1.0];
        let answers = server.submit(&[
            QueryRequest::new(
                "mondulkiri",
                QueryKind::ParkResponse {
                    effort_grid: grid.clone(),
                },
            ),
            QueryRequest::new("mondulkiri", QueryKind::ParkResponse { effort_grid: grid }),
        ]);
        let (a, b) = (&answers[0], &answers[1]);
        match (a, b) {
            (
                Ok(QueryResponse::ParkResponse {
                    probs: pa,
                    vars: va,
                }),
                Ok(QueryResponse::ParkResponse {
                    probs: pb,
                    vars: vb,
                }),
            ) => {
                assert_eq!(pa.as_slice(), pb.as_slice());
                assert_eq!(va.as_slice(), vb.as_slice());
            }
            other => panic!("expected two response surfaces: {other:?}"),
        }
    }
}
