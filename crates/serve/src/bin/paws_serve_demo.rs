//! Runnable serving demo: three resident parks, one mixed query batch,
//! and a mid-traffic model hot-swap.
//!
//! ```text
//! cargo run --release -p paws-serve --bin paws-serve-demo [n_queries]
//! cargo run --release -p paws-serve --bin paws-serve-demo -- --stream
//! ```
//!
//! Default mode trains three small park models (different
//! variants/planes), installs them in a [`paws_serve::PawsServer`],
//! submits an interleaved batch of risk-map / park-response / patrol-plan
//! queries, hot-swaps one park's model from a serialized stack snapshot,
//! and reports per-query outcomes plus batch throughput. `--stream`
//! instead installs one park on the streaming ingest path and replays a
//! seeded patrol-log stream through
//! [`paws_serve::ModelRegistry::ingest_batch`], querying between batches.
//! Both exit non-zero on any serving error, so CI can smoke-run them.

use paws_core::{ModelConfig, RefitPath, Scenario, StreamConfig, TraversalLayout, WeakLearnerKind};
use paws_data::{build_dataset, split_by_test_year, Discretization};
use paws_serve::{PawsServer, QueryKind, QueryRequest, QueryResponse};
use paws_solver::SolveBudget;
use std::time::{Duration, Instant};

fn stream_demo() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::test_scenario(5);
    let park = scenario.park.clone();
    // Three years of seeded patrol logs in six-month chunks: the first
    // installs the park cold, the rest stream through ingest_batch.
    let batches = scenario.patrol_log_batches(2014, 3, 6);
    let dataset = build_dataset(&park, &batches[0], Discretization::quarterly());

    let mut config = ModelConfig::new(WeakLearnerKind::DecisionTree, true, 5);
    config.n_learners = 4;
    config.n_estimators = 4;
    let stream = StreamConfig {
        warmup_batches: 1,
        tolerance: 0.5,
        scaler_drift: 1.0,
    };

    let server = PawsServer::new();
    let report = server.registry().install_streaming(
        "mondulkiri",
        park.clone(),
        dataset,
        &config,
        stream,
    )?;
    println!(
        "installed mondulkiri streaming: {} cells, {} training rows ({:?})",
        park.n_cells(),
        report.total_rows,
        report.path,
    );

    let start = Instant::now();
    for (i, batch) in batches[1..].iter().enumerate() {
        let months = batch.months.len();
        match server.registry().ingest_batch("mondulkiri", batch)? {
            Some(report) => {
                let path = match report.path {
                    RefitPath::Warm(stats) => format!(
                        "warm ({} kept, {} refitted, cv-from-cache {})",
                        stats.learners_kept, stats.learners_refitted, stats.cv_resolved_from_cache
                    ),
                    RefitPath::Cold(reason) => format!("cold ({reason:?})"),
                };
                println!(
                    "  batch {:>2}: {months} months, +{} rows -> {} total, {path}",
                    i + 2,
                    report.appended,
                    report.total_rows,
                );
            }
            None => println!(
                "  batch {:>2}: {months} months, no new training points",
                i + 2
            ),
        }
        // The refreshed model serves immediately after the swap.
        let answers = server.submit(&[QueryRequest::new(
            "mondulkiri",
            QueryKind::RiskMap { effort_km: 1.0 },
        )]);
        match answers.into_iter().next() {
            Some(Ok(_)) => {}
            Some(Err(e)) => return Err(format!("post-ingest query failed: {e}").into()),
            None => return Err("empty answer batch".into()),
        }
    }
    println!(
        "streamed {} patrol-log batches with mid-traffic refits in {:.2?}",
        batches.len() - 1,
        start.elapsed()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--stream") {
        return stream_demo();
    }
    let n_queries: usize = match arg {
        Some(arg) => arg.parse()?,
        None => 24,
    };

    // --- Fit three park models (the fit half of the split).
    let server = PawsServer::new();
    let park_names = ["gonarezhou", "mondulkiri", "queen-elizabeth"];
    let mut snapshot_source = None;
    println!("resident parks:");
    for (i, name) in park_names.iter().enumerate() {
        let seed = 3 + i as u64;
        let scenario = Scenario::test_scenario(seed);
        let history = scenario.simulate_years(2014, 3);
        let dataset = build_dataset(&scenario.park, &history, Discretization::quarterly());
        let split = split_by_test_year(&dataset, 2016, 2).ok_or("split exists")?;
        let mut config = ModelConfig::new(WeakLearnerKind::DecisionTree, true, seed);
        config.n_learners = 4;
        config.n_estimators = 4;
        config.weight_mode = paws_iware::WeightMode::Uniform;
        // Vary the serving engines across parks: plane + traversal layout.
        if i == 1 {
            config.precision = paws_core::Precision::F32;
        }
        if i == 2 {
            config.layout = TraversalLayout::BitVector;
        }
        let model = paws_core::train(&dataset, &split, &config).into_serving();
        println!(
            "  {name:<16} {} cells, {:?} plane, {:?} layout",
            scenario.park.n_cells(),
            model.precision(),
            model.layout(),
        );
        if i == 0 {
            // Keep one park's fit artifacts around for the hot-swap below.
            snapshot_source = model
                .to_stack_snapshot()
                .map(|bytes| (bytes, config.clone(), model.scaler.clone()));
        }
        let prev = vec![0.0; scenario.park.n_cells()];
        server
            .registry()
            .install(*name, model, scenario.park.clone(), &dataset, &prev)?;
    }

    // --- One interleaved batch across all three parks.
    let mut batch = Vec::new();
    for q in 0..n_queries {
        let park = park_names[q % park_names.len()];
        let kind = match q % 4 {
            0 => QueryKind::RiskMap {
                effort_km: 0.5 * (1 + q % 5) as f64,
            },
            1 => QueryKind::RiskMap { effort_km: 1.0 },
            2 => QueryKind::ParkResponse {
                effort_grid: vec![0.0, 0.5, 1.0, 2.0],
            },
            _ => {
                let resident = server.registry().resident(park).ok_or("park is resident")?;
                QueryKind::PatrolPlan {
                    post: resident.park.patrol_posts[0],
                    effort_grid: vec![0.0, 0.5, 1.0, 2.0, 4.0],
                    patrol_length_km: 8.0,
                    n_patrols: 2,
                    beta: 0.8,
                }
            }
        };
        batch.push(
            QueryRequest::new(park, kind)
                .with_budget(SolveBudget::with_time_limit(Duration::from_secs(30))),
        );
    }

    let start = Instant::now();
    let answers = server.submit(&batch);
    let elapsed = start.elapsed();

    let mut risk = 0usize;
    let mut response = 0usize;
    let mut plans = 0usize;
    for (req, answer) in batch.iter().zip(&answers) {
        match answer {
            Ok(QueryResponse::RiskMap { .. }) => risk += 1,
            Ok(QueryResponse::ParkResponse { .. }) => response += 1,
            Ok(QueryResponse::PatrolPlan(plan)) => {
                plans += 1;
                println!(
                    "  plan for {:<16} status {:?}, {:.1} km allocated",
                    req.park,
                    plan.status,
                    plan.coverage.iter().sum::<f64>()
                );
            }
            Err(e) => return Err(format!("query for {} failed: {e}", req.park).into()),
        }
    }
    println!(
        "served {} queries ({risk} risk maps, {response} response surfaces, {plans} plans) \
         in {elapsed:.2?} ({:.0} queries/s)",
        answers.len(),
        answers.len() as f64 / elapsed.as_secs_f64()
    );

    // --- Hot-swap one park's model from its stack snapshot, mid-service.
    let (bytes, config, scaler) = snapshot_source.ok_or("tree stack snapshots")?;
    server
        .registry()
        .swap_from_snapshot(park_names[0], &bytes, config, scaler)?;
    let check = server.submit(&[QueryRequest::new(
        park_names[0],
        QueryKind::RiskMap { effort_km: 1.0 },
    )]);
    match check.into_iter().next() {
        Some(Ok(_)) => println!("hot-swapped {} from snapshot: serving OK", park_names[0]),
        Some(Err(e)) => return Err(format!("post-swap query failed: {e}").into()),
        None => return Err("empty answer batch".into()),
    }
    Ok(())
}
