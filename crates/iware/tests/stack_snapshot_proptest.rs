//! Fault-injection suite for fused `LearnerStack` snapshots, driven through
//! the public `IWareModel` surface: fit a small ensemble, snapshot it, then
//! attack the bytes (truncation at every prefix length, random bit flips,
//! trailing garbage). Every corrupted slab must come back as a typed
//! [`SnapshotError`] — never a panic — and a clean round trip must serve
//! bit-identical effort-response surfaces.

use paws_data::Matrix;
use paws_iware::{IWareConfig, IWareModel};
use paws_ml::bagging::BaggingConfig;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const EFFORT_GRID: [f64; 5] = [0.0, 0.5, 1.0, 2.0, 3.5];

fn synth_data(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Matrix::new(2);
    let mut observed = Vec::with_capacity(n);
    let mut efforts = Vec::with_capacity(n);
    for _ in 0..n {
        let x0: f64 = rng.gen_range(-1.0..1.0);
        let x1: f64 = rng.gen_range(-1.0..1.0);
        let attack_p = 1.0 / (1.0 + (-(2.0 * x0 + x1)).exp());
        let attack = rng.gen::<f64>() < attack_p;
        let effort: f64 = rng.gen_range(0.0..4.0);
        let detect = attack && rng.gen::<f64>() < 1.0 - (-1.2 * effort).exp();
        rows.push_row(&[x0, x1]);
        observed.push(if detect { 1.0 } else { 0.0 });
        efforts.push(effort);
    }
    (rows, observed, efforts)
}

fn fit_model(seed: u64) -> (IWareModel, IWareConfig, Matrix) {
    let (rows, labels, efforts) = synth_data(220, seed);
    let config = IWareConfig::new(3, BaggingConfig::trees(4, seed ^ 0x5eed), seed);
    let model = IWareModel::fit(&config, rows.view(), &labels, &efforts);
    (model, config, rows)
}

fn check_round_trip(seed: u64) {
    let (model, config, rows) = fit_model(seed);
    let bytes = model
        .to_stack_snapshot()
        .expect("freshly fitted stack is snapshotable");
    let loaded = IWareModel::from_stack_snapshot(&bytes, config).expect("clean snapshot decodes");
    let queries = rows.view().head(48);
    let (g, v) = model.effort_response(queries, &EFFORT_GRID);
    let (g2, v2) = loaded.effort_response(queries, &EFFORT_GRID);
    assert_eq!(g.as_slice(), g2.as_slice(), "g_v diverged (seed {seed})");
    assert_eq!(v.as_slice(), v2.as_slice(), "nu_v diverged (seed {seed})");
    // Canonical: the reloaded model re-encodes to the identical slab.
    assert_eq!(
        loaded
            .to_stack_snapshot()
            .expect("reloaded stack re-encodes"),
        bytes,
        "re-encode not canonical (seed {seed})"
    );
}

fn check_truncations(seed: u64) {
    let (model, config, _) = fit_model(seed);
    let bytes = model.to_stack_snapshot().unwrap();
    // Exhaustive truncation is quadratic in slab size; stride through the
    // payload but always hit the structural boundaries near the front.
    let stride = (bytes.len() / 256).max(1);
    let mut lengths: Vec<usize> = (0..bytes.len().min(128)).collect();
    lengths.extend((128..bytes.len()).step_by(stride));
    for len in lengths {
        assert!(
            IWareModel::from_stack_snapshot(&bytes[..len], config.clone()).is_err(),
            "truncation to {len}/{} bytes decoded (seed {seed})",
            bytes.len()
        );
    }
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 3]);
    assert!(
        IWareModel::from_stack_snapshot(&padded, config).is_err(),
        "trailing bytes accepted (seed {seed})"
    );
}

fn check_bit_flips(seed: u64) {
    let (model, config, _) = fit_model(seed);
    let bytes = model.to_stack_snapshot().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
    for _ in 0..48 {
        let mut corrupt = bytes.clone();
        let at = rng.gen_range(0..corrupt.len());
        corrupt[at] ^= 1 << rng.gen_range(0..8u32);
        assert!(
            IWareModel::from_stack_snapshot(&corrupt, config.clone()).is_err(),
            "bit flip at byte {at} decoded (seed {seed})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn clean_stack_round_trips_bit_identically(seed in 0.0..1e9) {
        check_round_trip(seed as u64);
    }

    #[test]
    fn truncated_stack_snapshots_are_typed_errors(seed in 0.0..1e9) {
        check_truncations(seed as u64);
    }

    #[test]
    fn bit_flipped_stack_snapshots_are_typed_errors(seed in 0.0..1e9) {
        check_bit_flips(seed as u64);
    }
}
