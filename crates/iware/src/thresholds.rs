//! Patrol-effort thresholds for the iWare-E filtered datasets.
//!
//! Sec. IV: the original iWare-E picked 16 equally-spaced thresholds from
//! 0 km to 7.5 km; the paper's enhancement selects thresholds at patrol-
//! effort *percentiles* instead, "to produce a consistent amount of training
//! data for each classifier", turning the number of classifiers into the
//! single hyperparameter and handling sparse effort ranges gracefully.

use serde::{Deserialize, Serialize};

/// How the I thresholds are placed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdMode {
    /// Thresholds at evenly-spaced percentiles of the training patrol effort
    /// (the paper's enhancement).
    Percentile,
    /// Thresholds evenly spaced between two effort values in km (the
    /// original iWare-E scheme; kept as an ablation baseline).
    FixedSpacing {
        /// Lowest threshold (km).
        min_km: f64,
        /// Highest threshold (km).
        max_km: f64,
    },
}

/// Compute up to `n` **strictly ascending** thresholds for the given
/// training efforts.
///
/// The first threshold is always 0 (the classifier trained on the entire
/// dataset), mirroring θ₁ = 0 in the original formulation.
///
/// With heavy ties in the training effort (e.g. many never-patrolled cells
/// recorded at 0.0) several percentiles land on the same value; emitting
/// them verbatim would train identical filtered learners that are then
/// double-counted in the weighted vote. Tied percentile candidates are
/// therefore advanced to the next distinct effort value, and when no
/// strictly larger value remains the list ends early — the result can hold
/// fewer than `n` thresholds, never duplicates. A zero-width
/// `FixedSpacing` range likewise collapses to its single distinct value.
pub fn select_thresholds(mode: ThresholdMode, efforts: &[f64], n: usize) -> Vec<f64> {
    assert!(n >= 1, "need at least one threshold");
    assert!(!efforts.is_empty(), "no training efforts supplied");
    match mode {
        ThresholdMode::Percentile => {
            let mut sorted = efforts.to_vec();
            sorted.sort_by(f64::total_cmp);
            let mut thresholds = Vec::with_capacity(n);
            thresholds.push(0.0);
            for i in 1..n {
                let pct = i as f64 / n as f64;
                let rank = (pct * (sorted.len() - 1) as f64).round() as usize;
                let last = *thresholds.last().unwrap();
                if sorted[rank] > last {
                    thresholds.push(sorted[rank]);
                } else if let Some(&next) = sorted[rank..].iter().find(|&&v| v > last) {
                    // Tied with an earlier threshold: advance to the next
                    // distinct effort value.
                    thresholds.push(next);
                } else {
                    // Every remaining effort equals the current top
                    // threshold; stop rather than duplicate learners.
                    break;
                }
            }
            thresholds
        }
        ThresholdMode::FixedSpacing { min_km, max_km } => {
            assert!(max_km >= min_km, "max threshold below min threshold");
            if n == 1 || max_km == min_km {
                // A zero-width range would repeat min_km n times; collapse
                // to the single distinct threshold instead.
                return vec![min_km];
            }
            (0..n)
                .map(|i| min_km + (max_km - min_km) * i as f64 / (n - 1) as f64)
                .collect()
        }
    }
}

/// Indices of the classifiers qualified to predict at a given patrol effort:
/// all learners whose threshold does not exceed the effort. The first
/// learner (θ = 0) is always qualified.
pub fn qualified_learners(thresholds: &[f64], effort: f64) -> Vec<usize> {
    let mut q: Vec<usize> = thresholds
        .iter()
        .enumerate()
        .filter(|(_, &t)| t <= effort)
        .map(|(i, _)| i)
        .collect();
    if q.is_empty() {
        q.push(0);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_thresholds_are_ascending_and_start_at_zero() {
        let efforts: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
        let t = select_thresholds(ThresholdMode::Percentile, &efforts, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t[0], 0.0);
        for w in t.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(
            *t.last().unwrap() < 10.0,
            "top threshold must leave some data"
        );
    }

    #[test]
    fn percentile_thresholds_balance_data_counts() {
        // With uniformly distributed efforts, consecutive thresholds should
        // each exclude roughly the same number of additional points.
        let efforts: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let t = select_thresholds(ThresholdMode::Percentile, &efforts, 5);
        let counts: Vec<usize> = t
            .iter()
            .map(|&theta| efforts.iter().filter(|&&e| e > theta).count())
            .collect();
        for w in counts.windows(2) {
            let drop = w[0] - w[1];
            assert!((drop as i64 - 200).abs() <= 10, "unequal bucket: {drop}");
        }
    }

    #[test]
    fn tied_percentiles_advance_to_the_next_distinct_effort() {
        // 70% of cells never patrolled: percentiles 1..=3 of 5 all land on
        // 0.0, which used to emit duplicate thresholds (and thus identical
        // filtered learners voting repeatedly).
        let mut efforts = vec![0.0; 70];
        efforts.extend((1..=30).map(|i| i as f64 / 10.0));
        let t = select_thresholds(ThresholdMode::Percentile, &efforts, 5);
        for w in t.windows(2) {
            assert!(w[1] > w[0], "thresholds must be strictly ascending: {t:?}");
        }
        assert_eq!(t[0], 0.0);
        // The first tied candidate advances to the smallest positive effort.
        assert!((t[1] - 0.1).abs() < 1e-12, "expected 0.1, got {t:?}");
    }

    #[test]
    fn all_tied_efforts_collapse_to_a_single_threshold() {
        let efforts = vec![0.0; 50];
        let t = select_thresholds(ThresholdMode::Percentile, &efforts, 8);
        assert_eq!(t, vec![0.0]);
    }

    #[test]
    fn fixed_spacing_matches_original_scheme() {
        let efforts = vec![1.0, 2.0, 3.0];
        let t = select_thresholds(
            ThresholdMode::FixedSpacing {
                min_km: 0.0,
                max_km: 7.5,
            },
            &efforts,
            16,
        );
        assert_eq!(t.len(), 16);
        assert_eq!(t[0], 0.0);
        assert!((t[15] - 7.5).abs() < 1e-12);
        assert!((t[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fixed_spacing_with_equal_bounds_collapses_to_one_threshold() {
        let efforts = vec![1.0, 2.0, 3.0];
        let t = select_thresholds(
            ThresholdMode::FixedSpacing {
                min_km: 2.0,
                max_km: 2.0,
            },
            &efforts,
            4,
        );
        assert_eq!(t, vec![2.0]);
    }

    #[test]
    fn qualification_grows_with_effort() {
        let thresholds = vec![0.0, 0.5, 1.0, 2.0, 4.0];
        assert_eq!(qualified_learners(&thresholds, 0.0), vec![0]);
        assert_eq!(qualified_learners(&thresholds, 0.75), vec![0, 1]);
        assert_eq!(qualified_learners(&thresholds, 2.0), vec![0, 1, 2, 3]);
        assert_eq!(qualified_learners(&thresholds, 10.0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn qualification_never_empty() {
        let thresholds = vec![1.0, 2.0];
        assert_eq!(qualified_learners(&thresholds, 0.1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn zero_thresholds_rejected() {
        select_thresholds(ThresholdMode::Percentile, &[1.0], 0);
    }
}
