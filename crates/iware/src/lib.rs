//! # paws-iware
//!
//! The enhanced iWare-E (imperfect-observation-aware Ensemble) of Sec. IV:
//! patrol-effort-filtered weak learners, percentile threshold placement,
//! cross-validated classifier weights, and Gaussian-process uncertainty.
//!
//! Entry point: [`ensemble::IWareModel`]; the [`ensemble::IWareModel::effort_response`]
//! method produces the g_v(c) / ν_v(c) curves the patrol planner optimises.

pub mod ensemble;
pub mod thresholds;
pub mod weights;

pub use ensemble::{FitCache, IWareConfig, IWareModel, RefitStats};
pub use paws_ml::forest32::NarrowError;
pub use paws_ml::layout::TraversalLayout;
pub use paws_ml::precision::Precision;
pub use paws_ml::snapshot::SnapshotError;
pub use paws_ml::traits::QueryError;
pub use thresholds::{qualified_learners, select_thresholds, ThresholdMode};
pub use weights::{combine, optimize_weights, WeightMode};
