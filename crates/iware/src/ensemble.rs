//! The enhanced iWare-E ensemble.
//!
//! iWare-E (imperfect-observation-aware Ensemble, Gholami et al. 2018)
//! handles the one-sided label noise of patrol data by training I weak
//! learners on datasets filtered at increasing patrol-effort thresholds:
//! learner C_{θᵢ⁻} sees every positive but only the negatives recorded with
//! effort above θᵢ (low-effort negatives are unreliable). At prediction time
//! only the learners whose threshold does not exceed the point's patrol
//! effort are *qualified* to vote.
//!
//! This implementation includes the paper's three enhancements (Sec. IV):
//! 1. classifier weights optimised by stratified cross-validation on log
//!    loss rather than uniform voting,
//! 2. thresholds placed at patrol-effort percentiles, and
//! 3. Gaussian-process weak learners whose predictive variance gives each
//!    prediction an uncertainty score, later consumed by the robust patrol
//!    planner.
//!
//! Feature batches are flat row-major [`MatrixView`]s. Effort-filtered
//! training subsets are index-gathered (one flat copy per learner; the
//! full-data fallback trains on the borrowed batch with no copy at all),
//! the I learners fit in parallel, and [`IWareModel::effort_response`]
//! evaluates the park-wide g_v(c) / ν_v(c) surfaces cell-parallel into flat
//! response matrices.
//!
//! When the weak learners are tree ensembles, the whole I×B learner stack
//! is additionally fused into one arena-backed [`Forest`]: every
//! park-wide prediction (`effort_response`, the `*_at_effort` entry
//! points) runs a single level-synchronous batch traversal over the
//! combined slab instead of I separate per-learner member passes, then
//! reduces the member rows per learner in the exact member order of the
//! per-learner path (bit-identical results).

use crate::thresholds::{qualified_learners, select_thresholds, ThresholdMode};
use crate::weights::{optimize_weights, WeightMode};
use paws_data::matrix::{Matrix, MatrixView};
use paws_data::matrix32::{Matrix32, MatrixView32};
use paws_data::{simd, simd32};
use paws_ml::bagging::{BaggingClassifier, BaggingConfig};
use paws_ml::cv::stratified_kfold;
use paws_ml::forest::Forest;
use paws_ml::forest32::{Forest32, NarrowError};
use paws_ml::layout::TraversalLayout;
use paws_ml::precision::Precision;
use paws_ml::qs::{QuickScorer, QuickScorer32};
use paws_ml::snapshot::{
    section as snapshot_section, PayloadKind, SnapshotError, SnapshotReader, SnapshotWriter,
};
use paws_ml::traits::{
    validate_effort_grid, validate_query, Classifier, QueryError, UncertainClassifier,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the iWare-E ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IWareConfig {
    /// Number of weak learners I (the paper uses 20 for MFNP/QENP, 10 for SWS).
    pub n_learners: usize,
    /// Configuration of each weak learner (a bagging ensemble).
    pub base: BaggingConfig,
    /// Threshold placement scheme.
    pub threshold_mode: ThresholdMode,
    /// Weight combination scheme.
    pub weight_mode: WeightMode,
    /// Minimum number of training points a filtered subset must retain;
    /// below this the learner falls back to the unfiltered data.
    pub min_subset_size: usize,
    /// Base random seed.
    pub seed: u64,
}

impl IWareConfig {
    /// A reasonable default around a given weak-learner configuration.
    pub fn new(n_learners: usize, base: BaggingConfig, seed: u64) -> Self {
        Self {
            n_learners,
            base,
            threshold_mode: ThresholdMode::Percentile,
            weight_mode: WeightMode::default(),
            min_subset_size: 20,
            seed,
        }
    }
}

/// Rows are evaluated in blocks of this many across the park-wide
/// prediction paths (matches the forest traversal's internal block size,
/// so fused traverse→reduce→combine stays cache-resident).
const ROW_CHUNK: usize = 256;

/// The whole learner stack's trees fused into one arena: `ranges[i]` is the
/// tree index range of learner `i` within the combined forest. `qs` holds
/// the bitvector lift of the fused arena while the model is switched to
/// [`TraversalLayout::BitVector`] — per-tree values are bit-identical
/// either way, so everything downstream of the per-tree block is shared.
struct LearnerStack {
    forest: Forest,
    ranges: Vec<std::ops::Range<usize>>,
    qs: Option<QuickScorer>,
}

impl LearnerStack {
    /// Per-tree predictions for one row block through the selected
    /// traversal engine (tree-major `n_trees × len`).
    fn per_tree_block(&self, x: MatrixView<'_>, start: usize, len: usize, out: &mut [f64]) {
        match &self.qs {
            Some(qs) => qs.predict_proba_block(x, start, len, out),
            None => self.forest.predict_proba_block(x, start, len, out),
        }
    }

    /// Per-tree predictions for a whole batch through the selected
    /// traversal engine.
    fn per_tree_batch(&self, x: MatrixView<'_>) -> Matrix {
        match &self.qs {
            Some(qs) => qs.predict_proba_batch(x),
            None => self.forest.predict_proba_batch(x),
        }
    }

    /// Fused traverse-and-reduce for one row block: batch-traverse the
    /// arena for rows `start..start + len`, then fold each learner's
    /// member rows into `(means, spreads)` (`n_learners × len`, learner-
    /// major) while the per-tree block is still cache-resident.
    fn block_prob_var(&self, x: MatrixView<'_>, start: usize, len: usize) -> (Vec<f64>, Vec<f64>) {
        let mut per_tree = vec![0.0; self.forest.n_trees() * len];
        self.per_tree_block(x, start, len, &mut per_tree);
        let nl = self.ranges.len();
        let mut probs = vec![0.0; nl * len];
        let mut vars = vec![0.0; nl * len];
        for (li, range) in self.ranges.iter().enumerate() {
            reduce_members(
                &per_tree,
                len,
                range.clone(),
                &mut probs[li * len..(li + 1) * len],
                None,
            );
        }
        for (li, range) in self.ranges.iter().enumerate() {
            reduce_members(
                &per_tree,
                len,
                range.clone(),
                &mut vars[li * len..(li + 1) * len],
                Some(&probs[li * len..(li + 1) * len]),
            );
        }
        (probs, vars)
    }
}

/// The f32 image of [`LearnerStack`]: the fused arena narrowed to 8-byte
/// nodes, plus the classifier weights narrowed once — everything the fused
/// f32 traverse→reduce→combine pipeline touches per block.
struct LearnerStack32 {
    forest: Forest32,
    ranges: Vec<std::ops::Range<usize>>,
    weights: Vec<f32>,
    /// Bitvector lift of the narrowed arena, present while the model is
    /// switched to [`TraversalLayout::BitVector`].
    qs: Option<QuickScorer32>,
}

impl LearnerStack32 {
    /// Fused traverse-and-reduce for one row block on the f32 plane —
    /// [`LearnerStack::block_prob_var`] with `f32x8` kernels in the same
    /// member order.
    fn block_prob_var(
        &self,
        x: MatrixView32<'_>,
        start: usize,
        len: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let per_tree = self.block_per_tree(x, start, len);
        let nl = self.ranges.len();
        let mut probs = vec![0.0f32; nl * len];
        let mut vars = vec![0.0f32; nl * len];
        for (li, range) in self.ranges.iter().enumerate() {
            reduce_members32(
                &per_tree,
                len,
                range.clone(),
                &mut probs[li * len..(li + 1) * len],
                None,
            );
        }
        for (li, range) in self.ranges.iter().enumerate() {
            reduce_members32(
                &per_tree,
                len,
                range.clone(),
                &mut vars[li * len..(li + 1) * len],
                Some(&probs[li * len..(li + 1) * len]),
            );
        }
        (probs, vars)
    }

    /// Fused traverse-and-reduce for one row block, member means only (the
    /// probability-only prediction path skips the spread pass).
    fn block_probs(&self, x: MatrixView32<'_>, start: usize, len: usize) -> Vec<f32> {
        let per_tree = self.block_per_tree(x, start, len);
        let nl = self.ranges.len();
        let mut probs = vec![0.0f32; nl * len];
        for (li, range) in self.ranges.iter().enumerate() {
            reduce_members32(
                &per_tree,
                len,
                range.clone(),
                &mut probs[li * len..(li + 1) * len],
                None,
            );
        }
        probs
    }

    fn block_per_tree(&self, x: MatrixView32<'_>, start: usize, len: usize) -> Vec<f32> {
        let mut per_tree = vec![0.0f32; self.forest.n_trees() * len];
        match &self.qs {
            Some(qs) => qs.predict_proba_block(x, start, len, &mut per_tree),
            None => self
                .forest
                .predict_proba_block(x, start, len, &mut per_tree),
        }
        per_tree
    }
}

/// One learner's record inside a [`FitCache`]: its effort-filter
/// threshold, the exact row subset it trained on, the degenerate-fallback
/// flag, and the fitted members themselves (which carry their bootstrap
/// in-bag row counts).
#[derive(Debug, Clone)]
struct LearnerRecord {
    /// Effort threshold θᵢ the subset was filtered at — the learner's
    /// identity for seed keying and cross-count warm-refit matching.
    threshold: f64,
    /// Ascending row indices of the effort-filtered training subset.
    filtered: Vec<usize>,
    /// Whether the filter was degenerate and the learner fell back to the
    /// full batch.
    degenerate: bool,
    /// The fitted weak learner (bagged members + bootstrap indices).
    learner: BaggingClassifier,
}

/// Cached out-of-fold artefacts of the CV-weight solve: one member
/// prediction row, patrol effort and label per validation point. Efforts
/// are stored raw — not pre-resolved qualified sets — so a warm resolve
/// can recompute qualification against thresholds that moved since.
#[derive(Debug, Clone)]
struct CvCache {
    predictions: Vec<Vec<f64>>,
    efforts: Vec<f64>,
    labels: Vec<f64>,
    iterations: usize,
}

/// Persistent record of a staged [`IWareModel::fit_cached`]: per learner
/// its filter range, training subset and fitted members, plus the cached
/// out-of-fold member predictions of the CV-weight solve. Feed it back to
/// [`IWareModel::warm_refit`] to keep unchanged learners, refit only moved
/// ones, and re-solve weights without retraining fold models.
#[derive(Debug, Clone)]
pub struct FitCache {
    records: Vec<LearnerRecord>,
    cv: Option<CvCache>,
    n_rows: usize,
}

impl FitCache {
    /// Number of training rows the cache describes.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of learners recorded.
    pub fn n_learners(&self) -> usize {
        self.records.len()
    }

    /// Whether cached out-of-fold CV predictions are available (absent for
    /// uniform weights or when the batch was too small to stratify).
    pub fn has_cv_cache(&self) -> bool {
        self.cv.is_some()
    }
}

/// What a [`IWareModel::warm_refit`] actually did, per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefitStats {
    /// Learners kept verbatim (exact or within-tolerance subsets).
    pub learners_kept: usize,
    /// Learners refit from their new filtered subsets.
    pub learners_refitted: usize,
    /// Whether the CV-weight solve ran on cached out-of-fold predictions
    /// (the cheap resolve-only path).
    pub cv_resolved_from_cache: bool,
    /// Whether a full fold-retraining CV solve ran instead.
    pub full_cv: bool,
}

/// A fitted iWare-E ensemble.
pub struct IWareModel {
    thresholds: Vec<f64>,
    /// Per-threshold weak learners. Empty for a model reconstructed from a
    /// stack snapshot — every park-wide serving path then answers from the
    /// fused `stack`, and the sizing of learner-major tables goes through
    /// `ranges`/`weights`, never `learners.len()`.
    learners: Vec<BaggingClassifier>,
    weights: Vec<f64>,
    /// Feature width the learners were fitted on (recorded at fit or
    /// snapshot-load time; the query-validation width).
    n_features: usize,
    /// Present when every learner is a tree ensemble (the DTB variants).
    stack: Option<LearnerStack>,
    /// Which plane serves the park-wide prediction paths; fitting and the
    /// f64 stack are untouched by the switch.
    precision: Precision,
    /// Narrowed stack, present only while `precision` is
    /// [`Precision::F32`] and the learners are tree ensembles (a derived
    /// cache of `stack`, rebuilt on demand, never serialized).
    stack32: Option<LearnerStack32>,
    /// Which traversal engine serves the park-wide prediction paths.
    layout: TraversalLayout,
    config: IWareConfig,
}

impl IWareModel {
    /// Fit the ensemble on a training feature batch, binary labels and the
    /// patrol effort associated with each point (the filtering variable).
    ///
    /// With heavy ties in the training effort, tied percentile thresholds
    /// are deduplicated (see [`select_thresholds`]), so the fitted model
    /// can hold fewer learners than `config.n_learners` — never duplicate
    /// ones.
    pub fn fit(config: &IWareConfig, x: MatrixView<'_>, labels: &[f64], efforts: &[f64]) -> Self {
        Self::fit_cached(config, x, labels, efforts).0
    }

    /// The staged fit pipeline, returning both the model and the
    /// [`FitCache`] that enables warm incremental refits: percentile
    /// threshold selection → effort-filtered subset gather → per-learner
    /// member fits → fused arena build → CV-weight solve on cached
    /// out-of-fold member predictions. [`IWareModel::fit`] is exactly this
    /// pipeline with the cache dropped — the two produce bit-identical
    /// models (every stage draws from its own index-derived RNG stream, so
    /// staging changes no floats).
    pub fn fit_cached(
        config: &IWareConfig,
        x: MatrixView<'_>,
        labels: &[f64],
        efforts: &[f64],
    ) -> (Self, FitCache) {
        assert_eq!(x.n_rows(), labels.len(), "rows/labels length mismatch");
        assert_eq!(x.n_rows(), efforts.len(), "rows/efforts length mismatch");
        assert!(config.n_learners >= 1, "need at least one learner");
        // Stage 1: threshold selection.
        let thresholds = select_thresholds(config.threshold_mode, efforts, config.n_learners);
        assert!(
            thresholds.windows(2).all(|w| w[1] > w[0]),
            "thresholds must be strictly ascending — duplicates would train \
             identical learners that are double-counted in the weighted vote"
        );
        let n_learners = thresholds.len();

        // Stage 2: effort-filtered subset gather. The plans record the
        // exact row subset each learner sees — the warm-refit keep/refit
        // signal.
        let plans = plan_filtered_learners(config, &thresholds, labels, efforts);

        // Stage 3: per-learner member fits on the planned subsets.
        let learners = fit_planned_learners(config, &thresholds, &plans, x, labels);

        // Stage 4: fused learner-stack arena build.
        let stack = build_stack(&learners, x.n_cols());

        // Stage 5: CV-weight solve, caching the out-of-fold member
        // predictions (and each point's effort/label) it optimised over.
        let uniform = vec![1.0 / n_learners as f64; n_learners];
        let (weights, cv) = match config.weight_mode {
            WeightMode::Uniform => (uniform, None),
            WeightMode::CvOptimized { folds, iterations } => {
                match cv_weight_fit_cached(
                    config,
                    &thresholds,
                    x,
                    labels,
                    efforts,
                    folds,
                    iterations,
                ) {
                    Some((w, cv)) => (w, Some(cv)),
                    None => (uniform, None),
                }
            }
        };

        let records = learner_records(plans, &thresholds, &learners);
        let cache = FitCache {
            records,
            cv,
            n_rows: x.n_rows(),
        };
        let model = Self {
            thresholds,
            learners,
            weights,
            n_features: x.n_cols(),
            stack,
            precision: Precision::F64,
            stack32: None,
            layout: TraversalLayout::default(),
            config: config.clone(),
        };
        (model, cache)
    }

    /// Warm incremental refit against the cache of a previous
    /// [`IWareModel::fit_cached`] (or earlier `warm_refit`), on an
    /// **append-only** extension of the cached training batch: rows
    /// `0..cache.n_rows()` must be the exact rows the cache was built on.
    ///
    /// Thresholds are recomputed from scratch — percentile ranks move on
    /// every append, so threshold *values* are not the keep signal; the
    /// effort-filtered subsets are. Per learner:
    ///
    /// * recomputed subset identical to the recorded one, at an unmoved
    ///   threshold (and both non-degenerate) → the refit would be
    ///   bit-identical, keep the fitted members verbatim;
    /// * relative subset drift (symmetric difference over the recorded
    ///   size) within a non-zero `tolerance` → keep too. This is the warm
    ///   path's only source of divergence from a cold fit: the kept
    ///   learner saw a slightly stale subset (or a θ-keyed seed that
    ///   moved with its threshold). It is bounded by `tolerance` per
    ///   learner and disappears at `tolerance = 0`;
    /// * anything else — including degenerate full-batch learners, whose
    ///   inputs change on any append — refits with the same
    ///   threshold-keyed seed a cold fit would use.
    ///
    /// The CV-weight solve then reruns on the cached out-of-fold member
    /// predictions, extended with the current learners' predictions on the
    /// appended rows, and qualified sets recomputed against the moved
    /// thresholds — no fold models are retrained. When threshold
    /// deduplication changes the learner *count*, records are matched to
    /// the new threshold list by θ identity instead of by position (seeds
    /// are θ-keyed, so surviving thresholds keep their learners warm) and
    /// only the weight solve falls back to a full fold-retraining CV —
    /// see [`IWareModel::warm_refit_count_changed`].
    ///
    /// The cache is updated in place to describe the returned model.
    ///
    /// # Panics
    /// Panics when the batch shrinks below the cached row count or the
    /// shape assertions of [`IWareModel::fit`] fail.
    pub fn warm_refit(
        config: &IWareConfig,
        cache: &mut FitCache,
        x: MatrixView<'_>,
        labels: &[f64],
        efforts: &[f64],
        tolerance: f64,
    ) -> (Self, RefitStats) {
        assert_eq!(x.n_rows(), labels.len(), "rows/labels length mismatch");
        assert_eq!(x.n_rows(), efforts.len(), "rows/efforts length mismatch");
        assert!(
            x.n_rows() >= cache.n_rows,
            "warm refit needs an append-only extension of the cached batch"
        );
        let thresholds = select_thresholds(config.threshold_mode, efforts, config.n_learners);
        assert!(
            thresholds.windows(2).all(|w| w[1] > w[0]),
            "thresholds must be strictly ascending — duplicates would train \
             identical learners that are double-counted in the weighted vote"
        );
        let appended = x.n_rows() - cache.n_rows;
        if thresholds.len() != cache.records.len() {
            return Self::warm_refit_count_changed(
                config, cache, x, labels, efforts, tolerance, thresholds, appended,
            );
        }
        let n_learners = thresholds.len();

        let plans = plan_filtered_learners(config, &thresholds, labels, efforts);
        let keep: Vec<bool> = plans
            .iter()
            .zip(&cache.records)
            .zip(&thresholds)
            .map(|((plan, rec), &theta)| keep_record(rec, plan, theta, appended, tolerance))
            .collect();
        let records = &cache.records;
        let learners: Vec<BaggingClassifier> = (0..n_learners)
            .into_par_iter()
            .map(|i| {
                if keep[i] {
                    records[i].learner.clone()
                } else {
                    fit_one_learner(config, thresholds[i], &plans[i], x, labels)
                }
            })
            .collect();

        let stack = build_stack(&learners, x.n_cols());

        let uniform = vec![1.0 / n_learners as f64; n_learners];
        let mut cv_resolved_from_cache = false;
        let mut full_cv = false;
        let weights = match config.weight_mode {
            WeightMode::Uniform => uniform,
            WeightMode::CvOptimized { folds, iterations } => match cache.cv.as_mut() {
                Some(cv) => {
                    cv_resolved_from_cache = true;
                    resolve_weights_cached(
                        cv,
                        &learners,
                        &thresholds,
                        x,
                        labels,
                        efforts,
                        cache.n_rows,
                    )
                }
                None => {
                    // The original fit could not support CV (too few
                    // points); retry in full now that the batch has grown.
                    match cv_weight_fit_cached(
                        config,
                        &thresholds,
                        x,
                        labels,
                        efforts,
                        folds,
                        iterations,
                    ) {
                        Some((w, cv)) => {
                            full_cv = true;
                            cache.cv = Some(cv);
                            w
                        }
                        None => uniform,
                    }
                }
            },
        };

        let learners_kept = keep.iter().filter(|&&k| k).count();
        let stats = RefitStats {
            learners_kept,
            learners_refitted: n_learners - learners_kept,
            cv_resolved_from_cache,
            full_cv,
        };
        cache.records = learner_records(plans, &thresholds, &learners);
        cache.n_rows = x.n_rows();
        let model = Self {
            thresholds,
            learners,
            weights,
            n_features: x.n_cols(),
            stack,
            precision: Precision::F64,
            stack32: None,
            layout: TraversalLayout::default(),
            config: config.clone(),
        };
        (model, stats)
    }

    /// Warm-refit leg for a changed learner *count* (threshold
    /// deduplication added or removed a level). Per-learner seeds are
    /// keyed by threshold identity, so cached records are matched to the
    /// new threshold list by θ bit pattern instead of by position —
    /// learners whose threshold survives the count change are kept warm,
    /// the rest refit exactly as their cold twins would. The cached CV
    /// prediction columns *are* positional in the old learner set, so the
    /// weight solve re-runs the full fold-retraining CV (identical to
    /// stage 5 of a cold fit); the refreshed cache carries the new
    /// columns. At tolerance 0 the result is bit-identical to
    /// [`IWareModel::fit_cached`] on the same batch, minus the member
    /// fits of every surviving learner.
    #[allow(clippy::too_many_arguments)] // internal leg of warm_refit, not API
    fn warm_refit_count_changed(
        config: &IWareConfig,
        cache: &mut FitCache,
        x: MatrixView<'_>,
        labels: &[f64],
        efforts: &[f64],
        tolerance: f64,
        thresholds: Vec<f64>,
        appended: usize,
    ) -> (Self, RefitStats) {
        let n_learners = thresholds.len();
        let plans = plan_filtered_learners(config, &thresholds, labels, efforts);
        let by_theta: std::collections::HashMap<u64, &LearnerRecord> = cache
            .records
            .iter()
            .map(|rec| (rec.threshold.to_bits(), rec))
            .collect();
        let kept: Vec<Option<&LearnerRecord>> = thresholds
            .iter()
            .zip(&plans)
            .map(|(&theta, plan)| {
                by_theta
                    .get(&theta.to_bits())
                    .copied()
                    .filter(|rec| keep_record(rec, plan, theta, appended, tolerance))
            })
            .collect();
        let learners: Vec<BaggingClassifier> = (0..n_learners)
            .into_par_iter()
            .map(|i| match kept[i] {
                Some(rec) => rec.learner.clone(),
                None => fit_one_learner(config, thresholds[i], &plans[i], x, labels),
            })
            .collect();
        let learners_kept = kept.iter().filter(|k| k.is_some()).count();

        let stack = build_stack(&learners, x.n_cols());

        let uniform = vec![1.0 / n_learners as f64; n_learners];
        let mut full_cv = false;
        let weights = match config.weight_mode {
            WeightMode::Uniform => {
                cache.cv = None;
                uniform
            }
            WeightMode::CvOptimized { folds, iterations } => {
                match cv_weight_fit_cached(
                    config,
                    &thresholds,
                    x,
                    labels,
                    efforts,
                    folds,
                    iterations,
                ) {
                    Some((w, cv)) => {
                        full_cv = true;
                        cache.cv = Some(cv);
                        w
                    }
                    None => {
                        cache.cv = None;
                        uniform
                    }
                }
            }
        };

        let stats = RefitStats {
            learners_kept,
            learners_refitted: n_learners - learners_kept,
            cv_resolved_from_cache: false,
            full_cv,
        };
        cache.records = learner_records(plans, &thresholds, &learners);
        cache.n_rows = x.n_rows();
        let model = Self {
            thresholds,
            learners,
            weights,
            n_features: x.n_cols(),
            stack,
            precision: Precision::F64,
            stack32: None,
            layout: TraversalLayout::default(),
            config: config.clone(),
        };
        (model, stats)
    }

    /// Select the plane that serves the park-wide prediction paths
    /// ([`IWareModel::effort_response`] and the constant-effort
    /// `predict_*_at_effort` entry points, i.e. response surfaces and risk
    /// maps). Switching to [`Precision::F32`] narrows the fused learner
    /// stack once — an 8-byte-node [`Forest32`] plus f32 weights — and the
    /// fused traverse→reduce→combine pipeline then runs end-to-end in f32,
    /// widening only the emitted surface. Per-row *varying*-effort
    /// prediction and non-tree learner stacks keep the f64 path regardless
    /// (they are not park-wide hot paths). Training is never affected.
    /// # Errors
    /// Returns the [`NarrowError`] when the fused learner-stack arena
    /// exceeds the f32 plane's packing caps (2²⁴ nodes / 256 features);
    /// the model keeps serving from its previous plane then.
    pub fn set_precision(&mut self, precision: Precision) -> Result<(), NarrowError> {
        match precision {
            Precision::F32 => {
                if self.stack32.is_none() {
                    if let Some(stack) = &self.stack {
                        let forest = Forest32::try_from_forest(&stack.forest)?;
                        let qs = (self.layout == TraversalLayout::BitVector)
                            .then(|| QuickScorer32::from_forest32(&forest));
                        self.stack32 = Some(LearnerStack32 {
                            forest,
                            ranges: stack.ranges.clone(),
                            weights: self.weights.iter().map(|&w| w as f32).collect(),
                            qs,
                        });
                    }
                }
            }
            Precision::F64 => self.stack32 = None,
        }
        self.precision = precision;
        Ok(())
    }

    /// Select the traversal engine serving the park-wide prediction paths
    /// (`effort_response`, risk maps, the constant-effort entry points).
    /// Switching to [`TraversalLayout::BitVector`] lifts the fused arena —
    /// and, when the f32 plane is active, the narrowed arena — into the
    /// QuickScorer layout once; switching back drops the lifts. Surfaces
    /// are bit-identical across layouts on either plane (the engines
    /// perform the same comparisons on the same values), so this is purely
    /// a memory-layout choice. A no-op for non-tree learner stacks.
    pub fn set_layout(&mut self, layout: TraversalLayout) {
        self.layout = layout;
        match layout {
            TraversalLayout::BitVector => {
                if let Some(stack) = &mut self.stack {
                    if stack.qs.is_none() {
                        stack.qs = Some(QuickScorer::from_forest(&stack.forest));
                    }
                }
                if let Some(stack32) = &mut self.stack32 {
                    if stack32.qs.is_none() {
                        stack32.qs = Some(QuickScorer32::from_forest32(&stack32.forest));
                    }
                }
            }
            TraversalLayout::Interleaved => {
                if let Some(stack) = &mut self.stack {
                    stack.qs = None;
                }
                if let Some(stack32) = &mut self.stack32 {
                    stack32.qs = None;
                }
            }
        }
    }

    /// The traversal engine currently serving park-wide predictions.
    pub fn layout(&self) -> TraversalLayout {
        self.layout
    }

    /// The plane currently serving park-wide predictions.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Size of the narrowed f32 arena as `(n_trees, n_nodes)`; `None`
    /// unless the model is switched to [`Precision::F32`] with a tree
    /// learner stack.
    pub fn arena32_stats(&self) -> Option<(usize, usize)> {
        self.stack32
            .as_ref()
            .map(|s| (s.forest.n_trees(), s.forest.n_nodes()))
    }

    /// The fitted thresholds θᵢ, ascending.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The fitted classifier weights (a probability simplex).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of weak learners. Counted via the weight vector (one weight
    /// per learner), which is present both on fitted models and on models
    /// reconstructed from a stack snapshot.
    pub fn n_learners(&self) -> usize {
        self.weights.len()
    }

    /// Feature width the model was fitted on (the width
    /// [`IWareModel::try_effort_response`] validates queries against).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &IWareConfig {
        &self.config
    }

    /// Size of the fused learner-stack arena as `(n_trees, n_nodes)`;
    /// `None` when the weak learners are not tree ensembles.
    pub fn arena_stats(&self) -> Option<(usize, usize)> {
        self.stack
            .as_ref()
            .map(|s| (s.forest.n_trees(), s.forest.n_nodes()))
    }

    /// Per-learner probabilities as a flat `n_learners × n_rows` matrix.
    /// Callers guard against empty batches. Tree stacks answer with one
    /// batch traversal of the fused arena.
    fn learner_probabilities(&self, x: MatrixView<'_>) -> Matrix {
        if let Some(stack) = &self.stack {
            let per_tree = stack.per_tree_batch(x);
            let stride = x.n_rows();
            let mut probs = Matrix::zeros(stack.ranges.len(), stride);
            for (li, range) in stack.ranges.iter().enumerate() {
                reduce_members(
                    per_tree.as_slice(),
                    stride,
                    range.clone(),
                    probs.row_mut(li),
                    None,
                );
            }
            return probs;
        }
        let per_learner: Vec<Vec<f64>> = self
            .learners
            .par_iter()
            .map(|l| l.predict_proba(x))
            .collect();
        Matrix::from_rows(&per_learner)
    }

    /// Per-learner (probability, variance) tables, each `n_learners × n_rows`.
    /// Callers guard against empty batches. Tree stacks answer with one
    /// batch traversal of the fused arena, then reduce each learner's
    /// member rows to mean and spread (the member order — and therefore
    /// every float — matches the per-learner path exactly).
    fn learner_prob_var(&self, x: MatrixView<'_>) -> (Matrix, Matrix) {
        if let Some(stack) = &self.stack {
            let per_tree = stack.per_tree_batch(x);
            let n_rows = x.n_rows();
            let mut probs = Matrix::zeros(stack.ranges.len(), n_rows);
            let mut vars = Matrix::zeros(stack.ranges.len(), n_rows);
            for (li, range) in stack.ranges.iter().enumerate() {
                reduce_members(
                    per_tree.as_slice(),
                    n_rows,
                    range.clone(),
                    probs.row_mut(li),
                    None,
                );
                reduce_members(
                    per_tree.as_slice(),
                    n_rows,
                    range.clone(),
                    vars.row_mut(li),
                    Some(probs.row(li)),
                );
            }
            return (probs, vars);
        }
        let pv: Vec<(Vec<f64>, Vec<f64>)> = self
            .learners
            .par_iter()
            .map(|l| l.predict_with_variance(x))
            .collect();
        let mut probs = Vec::with_capacity(pv.len());
        let mut vars = Vec::with_capacity(pv.len());
        for (p, v) in pv {
            probs.push(p);
            vars.push(v);
        }
        (Matrix::from_rows(&probs), Matrix::from_rows(&vars))
    }

    /// Constant-effort probability prediction served natively from the f32
    /// plane: the caller supplies an **already-narrowed** feature batch
    /// (e.g. the cached f32 plane of a prepared serving artifact), so no
    /// per-call `Matrix32::from_f64` pass runs — the narrowing cost that
    /// made the f32 plane a net slowdown on LLC-scale risk maps is paid
    /// once at preparation time instead. Bit-identical to
    /// [`IWareModel::predict_proba_at_effort`] on a constant-effort batch
    /// narrowed from the same rows. `None` unless the model is switched to
    /// [`Precision::F32`] with a tree learner stack.
    pub fn predict_proba_at_effort32(
        &self,
        x32: MatrixView32<'_>,
        effort: f64,
    ) -> Option<Vec<f64>> {
        let stack32 = self.stack32.as_ref()?;
        if x32.n_rows() == 0 {
            return Some(Vec::new());
        }
        let q = qualified_learners(&self.thresholds, effort);
        let n_rows = x32.n_rows();
        let starts: Vec<usize> = (0..n_rows).step_by(ROW_CHUNK).collect();
        let parts: Vec<Vec<f64>> = starts
            .into_par_iter()
            .map(|start| {
                let len = ROW_CHUNK.min(n_rows - start);
                let probs = stack32.block_probs(x32, start, len);
                let p32 =
                    combine_rows32(LearnerTable::new(&probs, len, 0), &stack32.weights, &q, len);
                let mut out = vec![0.0f64; len];
                simd32::widen(&p32, &mut out);
                out
            })
            .collect();
        Some(parts.concat())
    }

    /// Constant-effort probability + uncertainty served natively from the
    /// f32 plane (see [`IWareModel::predict_proba_at_effort32`] for the
    /// contract): the fused traverse→reduce→combine pipeline runs per
    /// 256-row block on the pre-narrowed batch, widening only the emitted
    /// surfaces. `None` unless a narrowed learner stack is resident.
    pub fn predict_with_variance_at_effort32(
        &self,
        x32: MatrixView32<'_>,
        effort: f64,
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        let stack32 = self.stack32.as_ref()?;
        if x32.n_rows() == 0 {
            return Some((Vec::new(), Vec::new()));
        }
        let q = qualified_learners(&self.thresholds, effort);
        let n_rows = x32.n_rows();
        let starts: Vec<usize> = (0..n_rows).step_by(ROW_CHUNK).collect();
        let parts: Vec<(Vec<f64>, Vec<f64>)> = starts
            .into_par_iter()
            .map(|start| {
                let len = ROW_CHUNK.min(n_rows - start);
                let (probs, vars) = stack32.block_prob_var(x32, start, len);
                let p32 =
                    combine_rows32(LearnerTable::new(&probs, len, 0), &stack32.weights, &q, len);
                let v32 =
                    combine_rows32(LearnerTable::new(&vars, len, 0), &stack32.weights, &q, len);
                let mut p = vec![0.0f64; len];
                let mut v = vec![0.0f64; len];
                simd32::widen(&p32, &mut p);
                simd32::widen(&v32, &mut v);
                (p, v)
            })
            .collect();
        let mut p_all = Vec::with_capacity(n_rows);
        let mut v_all = Vec::with_capacity(n_rows);
        for (p, v) in parts {
            p_all.extend_from_slice(&p);
            v_all.extend_from_slice(&v);
        }
        Some((p_all, v_all))
    }

    /// Predict the probability of detected poaching for each row, given the
    /// patrol effort that will be (or was) spent in the corresponding cell.
    pub fn predict_proba_at_effort(&self, x: MatrixView<'_>, efforts: &[f64]) -> Vec<f64> {
        assert_eq!(x.n_rows(), efforts.len(), "rows/efforts length mismatch");
        if x.n_rows() == 0 {
            return Vec::new();
        }
        // Constant-effort batches on the f32 plane (the risk-map shape):
        // narrow the batch once, then run the fused per-block pipeline in
        // f32 end-to-end through the pre-narrowed entry point.
        if self.stack32.is_some() && efforts.windows(2).all(|w| w[0] == w[1]) {
            let x32 = Matrix32::from_f64(x);
            if let Some(out) = self.predict_proba_at_effort32(x32.view(), efforts[0]) {
                return out;
            }
        }
        let per_learner = self.learner_probabilities(x);
        // A constant effort (the risk-map path) means one qualified set for
        // every row: combine learner-major with contiguous axpy rows.
        if efforts.windows(2).all(|w| w[0] == w[1]) {
            let q = qualified_learners(&self.thresholds, efforts[0]);
            return combine_rows(
                LearnerTable::new(per_learner.as_slice(), x.n_rows(), 0),
                &self.weights,
                &q,
                x.n_rows(),
            );
        }
        (0..x.n_rows())
            .map(|r| {
                let q = qualified_learners(&self.thresholds, efforts[r]);
                combine_indexed(&per_learner, &self.weights, &q, r)
            })
            .collect()
    }

    /// Predict probability and uncertainty (variance) for each row at the
    /// given patrol efforts.
    pub fn predict_with_variance_at_effort(
        &self,
        x: MatrixView<'_>,
        efforts: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x.n_rows(), efforts.len(), "rows/efforts length mismatch");
        if x.n_rows() == 0 {
            return (Vec::new(), Vec::new());
        }
        let n_rows = x.n_rows();
        // A constant effort (the risk-map path) means one qualified set for
        // every row; tree stacks run the fused per-block pipeline, other
        // learners combine their full tables learner-major.
        if efforts.windows(2).all(|w| w[0] == w[1]) {
            let q = qualified_learners(&self.thresholds, efforts[0]);
            if self.stack32.is_some() {
                // The f32 plane's fused pipeline; narrow once, then run the
                // pre-narrowed entry point end-to-end.
                let x32 = Matrix32::from_f64(x);
                if let Some(out) = self.predict_with_variance_at_effort32(x32.view(), efforts[0]) {
                    return out;
                }
            }
            if let Some(stack) = &self.stack {
                let starts: Vec<usize> = (0..n_rows).step_by(ROW_CHUNK).collect();
                let parts: Vec<(Vec<f64>, Vec<f64>)> = starts
                    .into_par_iter()
                    .map(|start| {
                        let len = ROW_CHUNK.min(n_rows - start);
                        let (probs, vars) = stack.block_prob_var(x, start, len);
                        (
                            combine_rows(LearnerTable::new(&probs, len, 0), &self.weights, &q, len),
                            combine_rows(LearnerTable::new(&vars, len, 0), &self.weights, &q, len),
                        )
                    })
                    .collect();
                let mut p_all = Vec::with_capacity(n_rows);
                let mut v_all = Vec::with_capacity(n_rows);
                for (p, v) in parts {
                    p_all.extend_from_slice(&p);
                    v_all.extend_from_slice(&v);
                }
                return (p_all, v_all);
            }
            let (per_learner_p, per_learner_v) = self.learner_prob_var(x);
            return (
                combine_rows(
                    LearnerTable::new(per_learner_p.as_slice(), n_rows, 0),
                    &self.weights,
                    &q,
                    n_rows,
                ),
                combine_rows(
                    LearnerTable::new(per_learner_v.as_slice(), n_rows, 0),
                    &self.weights,
                    &q,
                    n_rows,
                ),
            );
        }
        let (per_learner_p, per_learner_v) = self.learner_prob_var(x);
        let mut probs = Vec::with_capacity(n_rows);
        let mut vars = Vec::with_capacity(n_rows);
        for (r, &effort) in efforts.iter().enumerate() {
            let q = qualified_learners(&self.thresholds, effort);
            probs.push(combine_indexed(&per_learner_p, &self.weights, &q, r));
            vars.push(combine_indexed(&per_learner_v, &self.weights, &q, r));
        }
        (probs, vars)
    }

    /// Evaluate probability and uncertainty for every row across a grid of
    /// hypothetical patrol efforts. Returns `(probs, vars)` as flat
    /// `n_rows × n_levels` matrices — the g_v(c) and ν_v(c) response
    /// functions the patrol planner consumes (Sec. VI).
    ///
    /// Rows are evaluated cell-parallel in 256-row blocks. Tree-backed
    /// stacks run the whole pipeline **fused per block** — batch-traverse
    /// the arena for the block, reduce the member rows per learner, combine
    /// the levels — while every intermediate is still cache-resident,
    /// instead of materialising the full `n_trees × n_rows` table first.
    /// Reductions and combines use the `f64x4` kernels with the exact
    /// per-element operation order of the reference path, so the surface
    /// is bit-identical to per-row evaluation.
    pub fn effort_response(&self, x: MatrixView<'_>, effort_grid: &[f64]) -> (Matrix, Matrix) {
        assert!(!effort_grid.is_empty(), "empty effort grid");
        if x.n_rows() == 0 {
            let empty = || Matrix::from_flat(Vec::new(), effort_grid.len());
            return (empty(), empty());
        }
        // The f32 plane narrows the feature batch once and serves the
        // whole surface from the narrowed stack.
        if self.stack32.is_some() {
            let x32 = Matrix32::from_f64(x);
            return self
                .effort_response32(x32.view(), effort_grid)
                .expect("stack32 is present");
        }
        let (qualified_per_level, prefix_lens) = self.level_plan(effort_grid);
        let n_rows = x.n_rows();
        let n_levels = effort_grid.len();

        // Non-tree stacks keep the per-learner batch kernels: compute the
        // full learner tables once, combine per block below.
        let tables = if self.stack.is_none() {
            Some(self.learner_prob_var(x))
        } else {
            None
        };

        let starts: Vec<usize> = (0..n_rows).step_by(ROW_CHUNK).collect();
        let parts: Vec<(Vec<f64>, Vec<f64>)> = starts
            .into_par_iter()
            .map(|start| {
                let len = ROW_CHUNK.min(n_rows - start);
                let mut p_flat = vec![0.0; len * n_levels];
                let mut v_flat = vec![0.0; len * n_levels];
                match (&self.stack, &tables) {
                    (Some(stack), _) => {
                        // Fused: traverse → reduce → combine, one block.
                        let (probs, vars) = stack.block_prob_var(x, start, len);
                        self.combine_levels_block(
                            prefix_lens.as_deref(),
                            &qualified_per_level,
                            LearnerTable::new(&probs, len, 0),
                            LearnerTable::new(&vars, len, 0),
                            len,
                            &mut p_flat,
                            &mut v_flat,
                        );
                    }
                    (None, Some((per_learner_p, per_learner_v))) => {
                        self.combine_levels_block(
                            prefix_lens.as_deref(),
                            &qualified_per_level,
                            LearnerTable::new(per_learner_p.as_slice(), n_rows, start),
                            LearnerTable::new(per_learner_v.as_slice(), n_rows, start),
                            len,
                            &mut p_flat,
                            &mut v_flat,
                        );
                    }
                    (None, None) => unreachable!("tables computed for non-stack models"),
                }
                (p_flat, v_flat)
            })
            .collect();

        assemble_response(parts, n_rows, n_levels)
    }

    /// [`IWareModel::effort_response`] served natively from the f32 plane:
    /// the caller supplies an already-narrowed feature batch (e.g.
    /// `StandardScaler::transform_f32`, which fuses the z-score and the
    /// narrowing into one pass), and the fused traverse→reduce→combine
    /// pipeline runs per block on `f32x8` kernels, widening only the
    /// emitted surface. Returns `None` unless the model is switched to
    /// [`Precision::F32`] with a tree learner stack — callers fall back to
    /// the f64 [`IWareModel::effort_response`] then.
    pub fn effort_response32(
        &self,
        x32: MatrixView32<'_>,
        effort_grid: &[f64],
    ) -> Option<(Matrix, Matrix)> {
        let stack32 = self.stack32.as_ref()?;
        assert!(!effort_grid.is_empty(), "empty effort grid");
        if x32.n_rows() == 0 {
            let empty = || Matrix::from_flat(Vec::new(), effort_grid.len());
            return Some((empty(), empty()));
        }
        let (qualified_per_level, prefix_lens) = self.level_plan(effort_grid);
        let n_rows = x32.n_rows();
        let n_levels = effort_grid.len();

        let starts: Vec<usize> = (0..n_rows).step_by(ROW_CHUNK).collect();
        let parts: Vec<(Vec<f64>, Vec<f64>)> = starts
            .into_par_iter()
            .map(|start| {
                let len = ROW_CHUNK.min(n_rows - start);
                let mut p_flat = vec![0.0; len * n_levels];
                let mut v_flat = vec![0.0; len * n_levels];
                let (probs, vars) = stack32.block_prob_var(x32, start, len);
                combine_levels_block32(
                    &stack32.weights,
                    prefix_lens.as_deref(),
                    &qualified_per_level,
                    LearnerTable::new(&probs, len, 0),
                    LearnerTable::new(&vars, len, 0),
                    len,
                    &mut p_flat,
                    &mut v_flat,
                );
                (p_flat, v_flat)
            })
            .collect();

        Some(assemble_response(parts, n_rows, n_levels))
    }

    /// [`IWareModel::effort_response`] with the adversarial-input guard:
    /// the query batch and effort grid are validated (width, finiteness,
    /// non-empty) and rejected with a typed [`QueryError`] instead of
    /// tripping an assert deep inside a traversal kernel — or, on non-tree
    /// learner stacks, silently flowing NaN through kernel evaluations.
    /// This is the serving-surface entry point; the panicking
    /// `effort_response` stays for trusted in-process callers.
    pub fn try_effort_response(
        &self,
        x: MatrixView<'_>,
        effort_grid: &[f64],
    ) -> Result<(Matrix, Matrix), QueryError> {
        validate_query(x, self.n_features)?;
        validate_effort_grid(effort_grid)?;
        Ok(self.effort_response(x, effort_grid))
    }

    /// Serialize the fused learner stack — forest arena, per-learner tree
    /// ranges, classifier weights and effort thresholds — as one snapshot
    /// slab (see [`paws_ml::snapshot`] for the wire format). `None` when
    /// the weak learners are not tree ensembles (there is no fused stack
    /// to snapshot). The f32 plane is a derived cache and is never
    /// serialized; reload and call [`IWareModel::set_precision`] to
    /// rebuild it.
    pub fn to_stack_snapshot(&self) -> Option<Vec<u8>> {
        let stack = self.stack.as_ref()?;
        let mut w = SnapshotWriter::new(PayloadKind::LearnerStack);
        w.push_forest(&stack.forest);
        let mut ranges = Vec::with_capacity(stack.ranges.len() * 2);
        for r in &stack.ranges {
            ranges.push(r.start as u64);
            ranges.push(r.end as u64);
        }
        w.push_u64_section(snapshot_section::RANGES, &ranges);
        w.push_f64_section(snapshot_section::WEIGHTS, &self.weights);
        w.push_f64_section(snapshot_section::THRESHOLDS, &self.thresholds);
        Some(w.finish())
    }

    /// Reconstruct a serving model from a stack snapshot. The forest
    /// arena is revalidated structurally by the snapshot decoder; on top
    /// of that, the stack-level invariants are checked here: learner
    /// ranges partition the fused forest's trees contiguously, weights are
    /// finite and non-negative, thresholds are finite and strictly
    /// ascending, and all three sections agree on the learner count.
    ///
    /// The reconstructed model serves every park-wide prediction path
    /// (`effort_response`, the constant- and varying-effort entry points)
    /// bit-identically to the fitted original; it carries no per-learner
    /// `BaggingClassifier`s, so learner-introspection surfaces specific to
    /// fitting are unavailable. `config` is carried for introspection only
    /// and does not influence predictions.
    pub fn from_stack_snapshot(bytes: &[u8], config: IWareConfig) -> Result<Self, SnapshotError> {
        let reader = SnapshotReader::parse(bytes, PayloadKind::LearnerStack)?;
        let forest = reader.read_forest()?;
        let raw_ranges = reader.read_u64_section(snapshot_section::RANGES)?;
        let weights = reader.read_f64_section(snapshot_section::WEIGHTS)?;
        let thresholds = reader.read_f64_section(snapshot_section::THRESHOLDS)?;
        if raw_ranges.len() % 2 != 0 {
            return Err(SnapshotError::SectionShape {
                section: snapshot_section::RANGES,
                detail: "ranges must be (start, end) u64 pairs",
            });
        }
        let n_learners = raw_ranges.len() / 2;
        if n_learners == 0 || weights.len() != n_learners || thresholds.len() != n_learners {
            return Err(SnapshotError::Invariant(
                "stack sections disagree on the learner count",
            ));
        }
        let mut ranges = Vec::with_capacity(n_learners);
        let mut cursor = 0u64;
        for pair in raw_ranges.chunks_exact(2) {
            let (start, end) = (pair[0], pair[1]);
            if start != cursor || end <= start {
                return Err(SnapshotError::Invariant(
                    "learner ranges must partition the fused forest's trees contiguously",
                ));
            }
            cursor = end;
            ranges.push(start as usize..end as usize);
        }
        if cursor != forest.n_trees() as u64 {
            return Err(SnapshotError::Invariant(
                "learner ranges must cover every tree of the fused forest",
            ));
        }
        if !weights.iter().all(|w| w.is_finite() && *w >= 0.0) {
            return Err(SnapshotError::Invariant(
                "learner weights must be finite and non-negative",
            ));
        }
        if !thresholds.iter().all(|t| t.is_finite()) || !thresholds.windows(2).all(|w| w[1] > w[0])
        {
            return Err(SnapshotError::Invariant(
                "effort thresholds must be finite and strictly ascending",
            ));
        }
        let n_features = forest.n_features();
        Ok(Self {
            thresholds,
            learners: Vec::new(),
            weights,
            n_features,
            stack: Some(LearnerStack {
                forest,
                ranges,
                qs: None,
            }),
            precision: Precision::F64,
            stack32: None,
            layout: TraversalLayout::default(),
            config,
        })
    }

    /// Qualified learner sets per effort level, plus the ascending-prefix
    /// fast-path lengths when they apply (shared by both planes).
    ///
    /// Thresholds are ascending, so each level's qualified set is a prefix
    /// of the learner list; when the requested grid is ascending too, one
    /// incremental pass over the learners serves every level (same
    /// accumulation order as `combine`, hence bit-identical).
    fn level_plan(&self, effort_grid: &[f64]) -> (Vec<Vec<usize>>, Option<Vec<usize>>) {
        let qualified_per_level: Vec<Vec<usize>> = effort_grid
            .iter()
            .map(|&e| qualified_learners(&self.thresholds, e))
            .collect();
        let prefix_lens: Option<Vec<usize>> = {
            let lens: Vec<usize> = qualified_per_level.iter().map(|q| q.len()).collect();
            let is_prefix = qualified_per_level
                .iter()
                .all(|q| q.iter().copied().eq(0..q.len()));
            let ascending = lens.windows(2).all(|w| w[0] <= w[1]);
            if is_prefix && ascending {
                Some(lens)
            } else {
                None
            }
        };
        (qualified_per_level, prefix_lens)
    }

    /// Combine one block of per-learner tables over every effort level,
    /// writing row-major `len × n_levels` output. `prefix_lens` selects the
    /// incremental learner-major path (contiguous `f64x4` axpy per new
    /// learner, packed emission divides); otherwise each row combines its
    /// qualified set indexed. Per element both paths replay the exact
    /// operation sequence of [`combine_indexed`].
    #[allow(clippy::too_many_arguments)]
    fn combine_levels_block(
        &self,
        prefix_lens: Option<&[usize]>,
        qualified_per_level: &[Vec<usize>],
        p_table: LearnerTable<'_, f64>,
        v_table: LearnerTable<'_, f64>,
        len: usize,
        p_flat: &mut [f64],
        v_flat: &mut [f64],
    ) {
        let n_levels = qualified_per_level.len();
        if let Some(lens) = prefix_lens {
            // Degenerate prefixes (weight mass ≤ 1e-12) fall back to the
            // unweighted mean; whether any exist depends only on the
            // weights (same accumulation order as the loop below).
            let needs_unweighted = {
                let mut wsum = 0.0;
                let mut taken = 0usize;
                lens.iter().any(|&l| {
                    while taken < l {
                        wsum += self.weights[taken];
                        taken += 1;
                    }
                    wsum <= 1e-12
                })
            };
            let mut acc_p = vec![0.0; len];
            let mut acc_v = vec![0.0; len];
            let mut sum_p = vec![0.0; if needs_unweighted { len } else { 0 }];
            let mut sum_v = vec![0.0; if needs_unweighted { len } else { 0 }];
            // Scratch for the emission divide: one packed `f64x4` division
            // pass per level (the same IEEE divide per element as the
            // scalar `acc / wsum`).
            let mut emit = vec![0.0; len];
            let mut wsum = 0.0;
            let mut taken = 0usize;
            for (e, &l) in lens.iter().enumerate() {
                while taken < l {
                    let w = self.weights[taken];
                    wsum += w;
                    simd::axpy(w, p_table.row(taken, len), &mut acc_p);
                    simd::axpy(w, v_table.row(taken, len), &mut acc_v);
                    if needs_unweighted {
                        simd::add_assign(&mut sum_p, p_table.row(taken, len));
                        simd::add_assign(&mut sum_v, v_table.row(taken, len));
                    }
                    taken += 1;
                }
                let (divisor, from_p, from_v) = if wsum <= 1e-12 {
                    (taken.max(1) as f64, &sum_p, &sum_v)
                } else {
                    (wsum, &acc_p, &acc_v)
                };
                emit.copy_from_slice(from_p);
                simd::div_assign(&mut emit, divisor);
                for (r, &val) in emit.iter().enumerate() {
                    p_flat[r * n_levels + e] = val;
                }
                emit.copy_from_slice(from_v);
                simd::div_assign(&mut emit, divisor);
                for (r, &val) in emit.iter().enumerate() {
                    v_flat[r * n_levels + e] = val;
                }
            }
        } else {
            for r in 0..len {
                for (e, q) in qualified_per_level.iter().enumerate() {
                    p_flat[r * n_levels + e] = combine_table_indexed(&p_table, &self.weights, q, r);
                    v_flat[r * n_levels + e] = combine_table_indexed(&v_table, &self.weights, q, r);
                }
            }
        }
    }
}

/// A borrowed `n_learners × width` prediction table: learner `l`'s block
/// row is `data[l·stride + offset ..][..len]`. Lets the combine kernels
/// run unchanged over a fused per-block table (`stride = len`) or a block
/// window of full-batch learner matrices (`stride = n_rows`). Generic over
/// the scalar so the f64 and f32 planes share the layout logic.
#[derive(Clone, Copy)]
struct LearnerTable<'a, T> {
    data: &'a [T],
    stride: usize,
    offset: usize,
}

impl<'a, T: Copy> LearnerTable<'a, T> {
    fn new(data: &'a [T], stride: usize, offset: usize) -> Self {
        Self {
            data,
            stride,
            offset,
        }
    }

    #[inline]
    fn row(&self, learner: usize, len: usize) -> &'a [T] {
        &self.data[learner * self.stride + self.offset..][..len]
    }

    #[inline]
    fn get(&self, learner: usize, r: usize) -> T {
        self.data[learner * self.stride + self.offset + r]
    }
}

/// [`combine_indexed`] against a block table: same operation order, same
/// results.
fn combine_table_indexed(
    table: &LearnerTable<'_, f64>,
    weights: &[f64],
    qualified: &[usize],
    r: usize,
) -> f64 {
    let mut wsum = 0.0;
    let mut acc = 0.0;
    for &i in qualified {
        wsum += weights[i];
        acc += weights[i] * table.get(i, r);
    }
    if wsum <= 1e-12 {
        let n = qualified.len().max(1) as f64;
        qualified.iter().map(|&i| table.get(i, r)).sum::<f64>() / n
    } else {
        acc / wsum
    }
}

/// Weighted combination of one qualified set across a whole block of rows
/// at once: each qualified learner streams its contiguous prediction row
/// into the accumulator with one `f64x4` axpy. Per element this performs
/// the exact operation sequence of [`combine_indexed`] (same learner
/// order, same trailing division), so results are bit-identical to the
/// per-row path.
fn combine_rows(
    per_learner: LearnerTable<'_, f64>,
    weights: &[f64],
    qualified: &[usize],
    len: usize,
) -> Vec<f64> {
    let mut acc = vec![0.0; len];
    let mut wsum = 0.0;
    for &i in qualified {
        wsum += weights[i];
        simd::axpy(weights[i], per_learner.row(i, len), &mut acc);
    }
    if wsum <= 1e-12 {
        // Degenerate weights: unweighted mean of the qualified learners.
        let n = qualified.len().max(1) as f64;
        let mut sum = vec![0.0; len];
        for &i in qualified {
            simd::add_assign(&mut sum, per_learner.row(i, len));
        }
        simd::div_assign(&mut sum, n);
        sum
    } else {
        simd::div_assign(&mut acc, wsum);
        acc
    }
}

/// Stitch per-block `(probs, vars)` strips back into the flat
/// `n_rows × n_levels` response matrices (blocks arrive in row order).
fn assemble_response(
    parts: Vec<(Vec<f64>, Vec<f64>)>,
    n_rows: usize,
    n_levels: usize,
) -> (Matrix, Matrix) {
    let mut p_all = Vec::with_capacity(n_rows * n_levels);
    let mut v_all = Vec::with_capacity(n_rows * n_levels);
    for (p, v) in parts {
        p_all.extend_from_slice(&p);
        v_all.extend_from_slice(&v);
    }
    (
        Matrix::from_flat(p_all, n_levels),
        Matrix::from_flat(v_all, n_levels),
    )
}

/// [`IWareModel::combine_levels_block`] on the f32 plane: identical level /
/// learner traversal with `f32x8` kernels and f32 weights, widening each
/// combined value to f64 only at emission into the output surface.
#[allow(clippy::too_many_arguments)]
fn combine_levels_block32(
    weights: &[f32],
    prefix_lens: Option<&[usize]>,
    qualified_per_level: &[Vec<usize>],
    p_table: LearnerTable<'_, f32>,
    v_table: LearnerTable<'_, f32>,
    len: usize,
    p_flat: &mut [f64],
    v_flat: &mut [f64],
) {
    let n_levels = qualified_per_level.len();
    if let Some(lens) = prefix_lens {
        let needs_unweighted = {
            let mut wsum = 0.0f32;
            let mut taken = 0usize;
            lens.iter().any(|&l| {
                while taken < l {
                    wsum += weights[taken];
                    taken += 1;
                }
                wsum <= DEGENERATE_WEIGHT_SUM_32
            })
        };
        let mut acc_p = vec![0.0f32; len];
        let mut acc_v = vec![0.0f32; len];
        let mut sum_p = vec![0.0f32; if needs_unweighted { len } else { 0 }];
        let mut sum_v = vec![0.0f32; if needs_unweighted { len } else { 0 }];
        let mut emit = vec![0.0f32; len];
        let mut wsum = 0.0f32;
        let mut taken = 0usize;
        for (e, &l) in lens.iter().enumerate() {
            while taken < l {
                let w = weights[taken];
                wsum += w;
                simd32::axpy(w, p_table.row(taken, len), &mut acc_p);
                simd32::axpy(w, v_table.row(taken, len), &mut acc_v);
                if needs_unweighted {
                    simd32::add_assign(&mut sum_p, p_table.row(taken, len));
                    simd32::add_assign(&mut sum_v, v_table.row(taken, len));
                }
                taken += 1;
            }
            let (divisor, from_p, from_v) = if wsum <= DEGENERATE_WEIGHT_SUM_32 {
                (taken.max(1) as f32, &sum_p, &sum_v)
            } else {
                (wsum, &acc_p, &acc_v)
            };
            emit.copy_from_slice(from_p);
            simd32::div_assign(&mut emit, divisor);
            for (r, &val) in emit.iter().enumerate() {
                p_flat[r * n_levels + e] = f64::from(val);
            }
            emit.copy_from_slice(from_v);
            simd32::div_assign(&mut emit, divisor);
            for (r, &val) in emit.iter().enumerate() {
                v_flat[r * n_levels + e] = f64::from(val);
            }
        }
    } else {
        for r in 0..len {
            for (e, q) in qualified_per_level.iter().enumerate() {
                p_flat[r * n_levels + e] =
                    f64::from(combine_table_indexed32(&p_table, weights, q, r));
                v_flat[r * n_levels + e] =
                    f64::from(combine_table_indexed32(&v_table, weights, q, r));
            }
        }
    }
}

/// The degenerate-weight cutoff of the f32 combine paths. The f64 paths use
/// `1e-12`; real weight prefixes are either exactly 0.0 (every weight in
/// the prefix optimised to zero) or ≥ the smallest representable simplex
/// mass, far above either cutoff, so the two planes agree on which prefixes
/// fall back to the unweighted mean.
const DEGENERATE_WEIGHT_SUM_32: f32 = 1e-12;

/// [`combine_table_indexed`] on the f32 plane (same learner order).
fn combine_table_indexed32(
    table: &LearnerTable<'_, f32>,
    weights: &[f32],
    qualified: &[usize],
    r: usize,
) -> f32 {
    let mut wsum = 0.0f32;
    let mut acc = 0.0f32;
    for &i in qualified {
        wsum += weights[i];
        acc += weights[i] * table.get(i, r);
    }
    if wsum <= DEGENERATE_WEIGHT_SUM_32 {
        let n = qualified.len().max(1) as f32;
        qualified.iter().map(|&i| table.get(i, r)).sum::<f32>() / n
    } else {
        acc / wsum
    }
}

/// [`combine_rows`] on the f32 plane: one `f32x8` axpy per qualified
/// learner, same learner order and trailing division.
fn combine_rows32(
    per_learner: LearnerTable<'_, f32>,
    weights: &[f32],
    qualified: &[usize],
    len: usize,
) -> Vec<f32> {
    let mut acc = vec![0.0f32; len];
    let mut wsum = 0.0f32;
    for &i in qualified {
        wsum += weights[i];
        simd32::axpy(weights[i], per_learner.row(i, len), &mut acc);
    }
    if wsum <= DEGENERATE_WEIGHT_SUM_32 {
        let n = qualified.len().max(1) as f32;
        let mut sum = vec![0.0f32; len];
        for &i in qualified {
            simd32::add_assign(&mut sum, per_learner.row(i, len));
        }
        simd32::div_assign(&mut sum, n);
        sum
    } else {
        simd32::div_assign(&mut acc, wsum);
        acc
    }
}

/// [`reduce_members`] on the f32 plane: member mean / spread of a tree-major
/// f32 prediction table, in the same member order.
fn reduce_members32(
    per_tree: &[f32],
    stride: usize,
    range: std::ops::Range<usize>,
    out: &mut [f32],
    mean: Option<&[f32]>,
) {
    let b = range.len() as f32;
    match mean {
        None => {
            for t in range {
                simd32::add_assign(out, &per_tree[t * stride..][..out.len()]);
            }
        }
        Some(mean) => {
            for t in range {
                simd32::accumulate_sq_diff(out, &per_tree[t * stride..][..out.len()], mean);
            }
        }
    }
    simd32::div_assign(out, b);
}

/// Weighted combination of one row's per-learner outputs, indexing straight
/// into the `[learner][row]` prediction table (no per-row scratch vector).
/// Operation order matches [`crate::weights::combine`] exactly, so results
/// are bit-identical.
fn combine_indexed(per_learner: &Matrix, weights: &[f64], qualified: &[usize], r: usize) -> f64 {
    let mut wsum = 0.0;
    let mut acc = 0.0;
    for &i in qualified {
        wsum += weights[i];
        acc += weights[i] * per_learner.get(i, r);
    }
    if wsum <= 1e-12 {
        // Degenerate weights: fall back to the unweighted mean of the
        // qualified learners.
        let n = qualified.len().max(1) as f64;
        qualified
            .iter()
            .map(|&i| per_learner.get(i, r))
            .sum::<f64>()
            / n
    } else {
        acc / wsum
    }
}

/// Accumulate member (tree) rows `range` of a tree-major prediction table
/// (`row t` at `per_tree[t·stride..]`, `out.len()` wide) into `out`: the
/// member mean when `mean` is `None`, otherwise the member spread around
/// the given mean. The element-wise `f64x4` kernels keep the accumulation
/// order and trailing division exactly as in [`BaggingClassifier`]'s
/// per-learner reduction, so the fused-arena path is bit-identical to it.
fn reduce_members(
    per_tree: &[f64],
    stride: usize,
    range: std::ops::Range<usize>,
    out: &mut [f64],
    mean: Option<&[f64]>,
) {
    let b = range.len() as f64;
    match mean {
        None => {
            for t in range {
                simd::add_assign(out, &per_tree[t * stride..][..out.len()]);
            }
        }
        Some(mean) => {
            for t in range {
                simd::accumulate_sq_diff(out, &per_tree[t * stride..][..out.len()], mean);
            }
        }
    }
    simd::div_assign(out, b);
}

/// Fuse every learner's tree arena into one stack-wide forest; `None` when
/// the learners are not tree ensembles.
///
/// The fused slab copies the learners' node tables (the per-learner arenas
/// stay alive for the non-stack API surface), trading roughly 2× the tree
/// node memory — tens of bytes per node — for single-traversal park-wide
/// prediction.
fn build_stack(learners: &[BaggingClassifier], n_features: usize) -> Option<LearnerStack> {
    let mut forest = Forest::new(n_features);
    let mut ranges = Vec::with_capacity(learners.len());
    for learner in learners {
        let member_forest = learner.forest()?;
        let start = forest.n_trees();
        forest.push_forest(member_forest);
        ranges.push(start..forest.n_trees());
    }
    Some(LearnerStack {
        forest,
        ranges,
        qs: None,
    })
}

/// Filter the training data for learner `i`: keep every positive, and keep
/// negatives only when their patrol effort exceeds the threshold.
fn filtered_indices(labels: &[f64], efforts: &[f64], threshold: f64) -> Vec<usize> {
    (0..labels.len())
        .filter(|&i| labels[i] > 0.5 || efforts[i] > threshold)
        .collect()
}

/// Stage-2 plan for one learner: the exact effort-filtered row subset it
/// will train on, and whether that subset is degenerate (too small or
/// single-class, in which case the learner falls back to the full batch).
#[derive(Debug, Clone)]
struct LearnerPlan {
    idx: Vec<usize>,
    degenerate: bool,
}

/// Stage 2 of the fit pipeline: gather every learner's effort-filtered row
/// subset. Pure index work — no training happens here.
fn plan_filtered_learners(
    config: &IWareConfig,
    thresholds: &[f64],
    labels: &[f64],
    efforts: &[f64],
) -> Vec<LearnerPlan> {
    thresholds
        .iter()
        .map(|&theta| {
            let idx = filtered_indices(labels, efforts, theta);
            let n_pos = idx.iter().filter(|&&j| labels[j] > 0.5).count();
            let degenerate = idx.len() < config.min_subset_size || n_pos == 0 || n_pos == idx.len();
            LearnerPlan { idx, degenerate }
        })
        .collect()
}

/// Per-learner bagging seed, keyed by the learner's threshold *identity*
/// (its `f64` bit pattern mixed through SplitMix64), not its position in
/// the threshold list. Index-tied seeds (the pre-PR-10 formula) meant
/// that whenever threshold deduplication changed the learner *count*,
/// every surviving learner's seed shifted with its index and a warm refit
/// had nothing it could keep — the whole ensemble went cold. Keyed by
/// threshold bits, a learner whose θ survives a count change keeps the
/// exact seed its cold twin would use, so it stays warm.
fn learner_seed(config: &IWareConfig, threshold: f64) -> u64 {
    let mut z = threshold.to_bits().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    config.base.seed.wrapping_add(config.seed).wrapping_add(z)
}

/// Fit one learner on its planned subset with the threshold-keyed seed —
/// the single place the per-learner seed formula lives, shared by cold
/// fits and warm refits so a refit learner is bit-identical to its cold
/// twin.
fn fit_one_learner(
    config: &IWareConfig,
    threshold: f64,
    plan: &LearnerPlan,
    x: MatrixView<'_>,
    labels: &[f64],
) -> BaggingClassifier {
    let base = BaggingConfig {
        seed: learner_seed(config, threshold),
        ..config.base.clone()
    };
    if plan.degenerate {
        // Degenerate filter: train on the full borrowed batch with no copy
        // at all.
        BaggingClassifier::fit(&base, x, labels)
    } else {
        let sx = x.gather(&plan.idx);
        let slabels: Vec<f64> = plan.idx.iter().map(|&j| labels[j]).collect();
        BaggingClassifier::fit(&base, sx.view(), &slabels)
    }
}

/// Stage 3 of the fit pipeline: per-learner member fits, in parallel.
/// Each learner's bootstrap members fit in parallel too ([`BaggingClassifier::fit`]
/// fans members over the pool), so learner × member nesting composes on
/// the persistent pool.
fn fit_planned_learners(
    config: &IWareConfig,
    thresholds: &[f64],
    plans: &[LearnerPlan],
    x: MatrixView<'_>,
    labels: &[f64],
) -> Vec<BaggingClassifier> {
    plans
        .par_iter()
        .enumerate()
        .map(|(i, plan)| fit_one_learner(config, thresholds[i], plan, x, labels))
        .collect()
}

fn train_filtered_learners(
    config: &IWareConfig,
    thresholds: &[f64],
    x: MatrixView<'_>,
    labels: &[f64],
    efforts: &[f64],
) -> Vec<BaggingClassifier> {
    let plans = plan_filtered_learners(config, thresholds, labels, efforts);
    fit_planned_learners(config, thresholds, &plans, x, labels)
}

/// Zip stage-2 plans with the fitted learners into cache records.
fn learner_records(
    plans: Vec<LearnerPlan>,
    thresholds: &[f64],
    learners: &[BaggingClassifier],
) -> Vec<LearnerRecord> {
    plans
        .into_iter()
        .zip(thresholds.iter().zip(learners))
        .map(|(plan, (&threshold, learner))| LearnerRecord {
            threshold,
            filtered: plan.idx,
            degenerate: plan.degenerate,
            learner: learner.clone(),
        })
        .collect()
}

/// Warm-refit keep rule: can the cached record's learner stand in for a
/// cold fit of `plan` at threshold `theta`?
///
/// An *exact* keep needs the identical training subset **and** identical
/// threshold bits — the bagging seed is keyed by θ, so a moved threshold
/// means the cold twin would draw a different bootstrap even on the same
/// rows. A *tolerance* keep (`tolerance > 0`) accepts bounded subset
/// drift, which subsumes a moved-θ seed drift: both are the documented
/// warm-path divergence envelope. Degenerate learners train on the full
/// batch, so their inputs only match when nothing was appended.
fn keep_record(
    rec: &LearnerRecord,
    plan: &LearnerPlan,
    theta: f64,
    appended: usize,
    tolerance: f64,
) -> bool {
    let same_theta = theta.to_bits() == rec.threshold.to_bits();
    if plan.degenerate || rec.degenerate {
        plan.degenerate && rec.degenerate && appended == 0 && (same_theta || tolerance > 0.0)
    } else if plan.idx == rec.filtered && same_theta {
        true
    } else {
        tolerance > 0.0 && subset_drift(&rec.filtered, &plan.idx) <= tolerance
    }
}

/// Relative drift between two ascending index subsets: the size of their
/// symmetric difference over the recorded subset's size. 0.0 for identical
/// subsets; an append that only *adds* qualifying rows contributes one
/// count per added row.
fn subset_drift(old: &[usize], new: &[usize]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut sym = 0usize;
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                sym += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                sym += 1;
                j += 1;
            }
        }
    }
    sym += (old.len() - i) + (new.len() - j);
    sym as f64 / old.len().max(1) as f64
}

/// Run the cross-validated weight fit, returning the optimised weights and
/// the cached out-of-fold member predictions (plus each validation point's
/// effort and label, so qualified sets can be recomputed against moved
/// thresholds at warm-resolve time). Returns `None` when the data cannot
/// support it (e.g. too few positives to stratify).
fn cv_weight_fit_cached(
    config: &IWareConfig,
    thresholds: &[f64],
    x: MatrixView<'_>,
    labels: &[f64],
    efforts: &[f64],
    folds: usize,
    iterations: usize,
) -> Option<(Vec<f64>, CvCache)> {
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    if n_pos < folds || labels.len() < folds * 4 {
        return None;
    }
    let fold_defs = stratified_kfold(labels, folds, config.seed.wrapping_add(77));

    let mut predictions: Vec<Vec<f64>> = Vec::new();
    let mut qualified: Vec<Vec<usize>> = Vec::new();
    let mut point_efforts: Vec<f64> = Vec::new();
    let mut fold_labels: Vec<f64> = Vec::new();

    for fold in &fold_defs {
        let train_x = x.gather(&fold.train);
        let train_labels: Vec<f64> = fold.train.iter().map(|&i| labels[i]).collect();
        let train_efforts: Vec<f64> = fold.train.iter().map(|&i| efforts[i]).collect();
        let valid_x = x.gather(&fold.valid);

        let learners = train_filtered_learners(
            config,
            thresholds,
            train_x.view(),
            &train_labels,
            &train_efforts,
        );
        let per_learner: Vec<Vec<f64>> = learners
            .par_iter()
            .map(|l| l.predict_proba(valid_x.view()))
            .collect();

        for (vi, &orig) in fold.valid.iter().enumerate() {
            predictions.push(per_learner.iter().map(|l| l[vi]).collect());
            qualified.push(qualified_learners(thresholds, efforts[orig]));
            point_efforts.push(efforts[orig]);
            fold_labels.push(labels[orig]);
        }
    }

    let weights = optimize_weights(&predictions, &qualified, &fold_labels, iterations);
    let cv = CvCache {
        predictions,
        efforts: point_efforts,
        labels: fold_labels,
        iterations,
    };
    Some((weights, cv))
}

/// Rerun **only** the CV-weight solve (the cheap stage of the pipeline):
/// extend the cached out-of-fold member predictions with the current
/// learners' probabilities on the appended rows, recompute every cached
/// point's qualified set against the current thresholds, and re-optimise
/// the simplex weights. No fold models are retrained.
fn resolve_weights_cached(
    cv: &mut CvCache,
    learners: &[BaggingClassifier],
    thresholds: &[f64],
    x: MatrixView<'_>,
    labels: &[f64],
    efforts: &[f64],
    from_row: usize,
) -> Vec<f64> {
    if from_row < x.n_rows() {
        let idx: Vec<usize> = (from_row..x.n_rows()).collect();
        let new_x = x.gather(&idx);
        let per_learner: Vec<Vec<f64>> = learners
            .par_iter()
            .map(|l| l.predict_proba(new_x.view()))
            .collect();
        for (vi, orig) in (from_row..x.n_rows()).enumerate() {
            cv.predictions
                .push(per_learner.iter().map(|l| l[vi]).collect());
            cv.efforts.push(efforts[orig]);
            cv.labels.push(labels[orig]);
        }
    }
    let qualified: Vec<Vec<usize>> = cv
        .efforts
        .iter()
        .map(|&e| qualified_learners(thresholds, e))
        .collect();
    optimize_weights(&cv.predictions, &qualified, &cv.labels, cv.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paws_data::matrix::Matrix;
    use paws_ml::metrics::roc_auc;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Synthetic data with iWare-E's noise structure: the true attack
    /// depends on the features, but an attack is *observed* only with
    /// probability increasing in patrol effort.
    fn noisy_poaching_data(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = Matrix::new(2);
        let mut observed = Vec::with_capacity(n);
        let mut efforts = Vec::with_capacity(n);
        let mut true_attack = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen_range(-1.0..1.0);
            let x1: f64 = rng.gen_range(-1.0..1.0);
            let attack_p = 1.0 / (1.0 + (-(2.0 * x0 + x1)).exp());
            let attack = rng.gen::<f64>() < attack_p;
            let effort: f64 = rng.gen_range(0.0..4.0);
            let detect = attack && rng.gen::<f64>() < 1.0 - (-1.2 * effort).exp();
            rows.push_row(&[x0, x1]);
            observed.push(if detect { 1.0 } else { 0.0 });
            efforts.push(effort);
            true_attack.push(if attack { 1.0 } else { 0.0 });
        }
        (rows, observed, efforts, true_attack)
    }

    fn quick_config(n_learners: usize) -> IWareConfig {
        IWareConfig {
            n_learners,
            base: BaggingConfig::trees(5, 3),
            threshold_mode: ThresholdMode::Percentile,
            weight_mode: WeightMode::CvOptimized {
                folds: 3,
                iterations: 40,
            },
            min_subset_size: 20,
            seed: 9,
        }
    }

    #[test]
    fn fit_produces_expected_shapes() {
        let (rows, labels, efforts, _) = noisy_poaching_data(400, 1);
        let model = IWareModel::fit(&quick_config(5), rows.view(), &labels, &efforts);
        assert_eq!(model.n_learners(), 5);
        assert_eq!(model.thresholds().len(), 5);
        assert_eq!(model.weights().len(), 5);
        assert!((model.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predictions_are_valid_probabilities() {
        let (rows, labels, efforts, _) = noisy_poaching_data(300, 2);
        let model = IWareModel::fit(&quick_config(4), rows.view(), &labels, &efforts);
        let p = model.predict_proba_at_effort(rows.view().head(50), &efforts[..50]);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beats_chance_on_the_observation_task() {
        let (rows, labels, efforts, _) = noisy_poaching_data(600, 3);
        let model = IWareModel::fit(&quick_config(5), rows.view(), &labels, &efforts);
        let (trows, tlabels, tefforts, _) = noisy_poaching_data(300, 4);
        let p = model.predict_proba_at_effort(trows.view(), &tefforts);
        let auc = roc_auc(&tlabels, &p);
        assert!(auc > 0.65, "auc={auc}");
    }

    #[test]
    fn effort_response_is_broadly_monotone() {
        // Higher prospective patrol effort should not decrease the predicted
        // detection probability much: more qualified learners trained on
        // cleaner negatives see the same positives.
        let (rows, labels, efforts, _) = noisy_poaching_data(500, 5);
        let model = IWareModel::fit(&quick_config(5), rows.view(), &labels, &efforts);
        let grid = vec![0.5, 1.0, 2.0, 3.5];
        let (probs, vars) = model.effort_response(rows.view().head(40), &grid);
        assert_eq!(probs.n_rows(), 40);
        assert_eq!(probs.n_cols(), grid.len());
        assert!(vars.as_slice().iter().all(|&v| v >= 0.0));
        let mut rising = 0usize;
        let mut total = 0usize;
        for r in probs.rows() {
            if r[grid.len() - 1] >= r[0] - 1e-9 {
                rising += 1;
            }
            total += 1;
        }
        assert!(
            rising as f64 / total as f64 > 0.6,
            "response mostly increasing"
        );
    }

    #[test]
    fn effort_response_matches_pointwise_prediction() {
        // The flat response matrix must agree with predict_proba_at_effort
        // evaluated level by level.
        let (rows, labels, efforts, _) = noisy_poaching_data(250, 11);
        let model = IWareModel::fit(&quick_config(4), rows.view(), &labels, &efforts);
        let grid = [0.5, 2.0];
        let q = rows.view().head(15);
        let (probs, vars) = model.effort_response(q, &grid);
        for (e, &level) in grid.iter().enumerate() {
            let level_efforts = vec![level; 15];
            let (p_ref, v_ref) = model.predict_with_variance_at_effort(q, &level_efforts);
            for r in 0..15 {
                assert_eq!(probs.get(r, e), p_ref[r]);
                assert_eq!(vars.get(r, e), v_ref[r]);
            }
        }
    }

    #[test]
    fn variance_output_present_for_tree_base() {
        let (rows, labels, efforts, _) = noisy_poaching_data(250, 6);
        let model = IWareModel::fit(&quick_config(3), rows.view(), &labels, &efforts);
        let (p, v) = model.predict_with_variance_at_effort(rows.view().head(20), &efforts[..20]);
        assert_eq!(p.len(), 20);
        assert_eq!(v.len(), 20);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn tie_heavy_efforts_deduplicate_learners() {
        // Many never-patrolled cells recorded at effort 0.0: several
        // percentile thresholds tie, and the model must deduplicate them
        // (fewer, distinct learners) instead of training identical filtered
        // learners that are double-counted in the weighted vote.
        let (rows, labels, _, _) = noisy_poaching_data(300, 13);
        // 280 never-patrolled cells and only two distinct positive efforts:
        // six percentile candidates collapse onto three distinct values.
        let mut efforts = vec![0.0; 300];
        for e in efforts.iter_mut().skip(280).take(10) {
            *e = 1.0;
        }
        for e in efforts.iter_mut().skip(290) {
            *e = 2.0;
        }
        let model = IWareModel::fit(&quick_config(6), rows.view(), &labels, &efforts);
        let t = model.thresholds();
        for w in t.windows(2) {
            assert!(w[1] > w[0], "thresholds strictly ascending: {t:?}");
        }
        assert!(t.len() < 6, "heavy ties must collapse thresholds: {t:?}");
        assert_eq!(model.n_learners(), t.len());
        assert_eq!(model.weights().len(), t.len());
        assert!((model.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The deduplicated model still predicts sanely.
        let p = model.predict_proba_at_effort(rows.view().head(20), &efforts[..20]);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn tree_learner_stack_is_arena_fused() {
        let (rows, labels, efforts, _) = noisy_poaching_data(300, 14);
        let model = IWareModel::fit(&quick_config(4), rows.view(), &labels, &efforts);
        // quick_config uses 5-tree bagging per learner.
        let (n_trees, n_nodes) = model.arena_stats().expect("tree base fuses an arena");
        assert_eq!(n_trees, model.n_learners() * 5);
        assert!(n_nodes > n_trees);

        let mut svm_cfg = quick_config(3);
        svm_cfg.base = BaggingConfig::svms(2, 3);
        let svm_model = IWareModel::fit(&svm_cfg, rows.view(), &labels, &efforts);
        assert!(svm_model.arena_stats().is_none());
    }

    #[test]
    fn f32_plane_tracks_the_f64_surfaces() {
        let (rows, labels, efforts, _) = noisy_poaching_data(400, 17);
        let mut model = IWareModel::fit(&quick_config(5), rows.view(), &labels, &efforts);
        assert_eq!(model.precision(), Precision::F64);
        assert!(model.arena32_stats().is_none());
        let q = rows.view().head(300);
        let grid = vec![0.5, 1.0, 2.0, 3.5];
        let (p64, v64) = model.effort_response(q, &grid);
        let level = vec![1.0; 300];
        let (rp64, rv64) = model.predict_with_variance_at_effort(q, &level);
        let pp64 = model.predict_proba_at_effort(q, &level);

        model.set_precision(Precision::F32).unwrap();
        let (n_trees, n_nodes) = model.arena32_stats().expect("tree stack narrows");
        assert_eq!((n_trees, n_nodes), model.arena_stats().unwrap());
        let (p32, v32) = model.effort_response(q, &grid);
        let (rp32, rv32) = model.predict_with_variance_at_effort(q, &level);
        let pp32 = model.predict_proba_at_effort(q, &level);

        let max_abs = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(max_abs(p64.as_slice(), p32.as_slice()) <= 1e-5);
        assert!(max_abs(v64.as_slice(), v32.as_slice()) <= 1e-5);
        assert!(max_abs(&rp64, &rp32) <= 1e-5);
        assert!(max_abs(&rv64, &rv32) <= 1e-5);
        assert!(max_abs(&pp64, &pp32) <= 1e-5);

        // The f32-native entry point serves the same surface from a
        // pre-narrowed batch (the fused scaler path hands it one), and is
        // simply absent while the model is on the f64 plane.
        let q32 = Matrix32::from_f64(q);
        let (p32n, v32n) = model
            .effort_response32(q32.view(), &grid)
            .expect("f32 plane active");
        assert_eq!(p32n.as_slice(), p32.as_slice());
        assert_eq!(v32n.as_slice(), v32.as_slice());

        // Switching back restores the bit-exact f64 plane.
        model.set_precision(Precision::F64).unwrap();
        assert!(model.arena32_stats().is_none());
        assert!(model.effort_response32(q32.view(), &grid).is_none());
        let (p_back, _) = model.effort_response(q, &grid);
        assert_eq!(p_back.as_slice(), p64.as_slice());
    }

    #[test]
    fn pre_narrowed_constant_effort_entry_points_match_the_narrowing_path() {
        let (rows, labels, efforts, _) = noisy_poaching_data(400, 19);
        let mut model = IWareModel::fit(&quick_config(5), rows.view(), &labels, &efforts);
        let q = rows.view().head(300);
        let q32 = Matrix32::from_f64(q);
        // Absent on the f64 plane — callers fall back to the wide path.
        assert!(model.predict_proba_at_effort32(q32.view(), 1.0).is_none());
        assert!(model
            .predict_with_variance_at_effort32(q32.view(), 1.0)
            .is_none());

        model.set_precision(Precision::F32).unwrap();
        for effort in [0.0, 0.5, 1.0, 3.5] {
            let level = vec![effort; 300];
            let pp = model.predict_proba_at_effort(q, &level);
            let (vp, vv) = model.predict_with_variance_at_effort(q, &level);
            let pp32 = model
                .predict_proba_at_effort32(q32.view(), effort)
                .expect("f32 plane active");
            let (vp32, vv32) = model
                .predict_with_variance_at_effort32(q32.view(), effort)
                .expect("f32 plane active");
            assert_eq!(pp32, pp, "probs at effort {effort}");
            assert_eq!(vp32, vp, "variance-path probs at effort {effort}");
            assert_eq!(vv32, vv, "vars at effort {effort}");
        }

        // Empty batches are served, not rejected.
        let empty = Matrix32::zeros(0, q32.n_cols());
        assert_eq!(
            model.predict_proba_at_effort32(empty.view(), 1.0),
            Some(Vec::new())
        );
        let (ep, ev) = model
            .predict_with_variance_at_effort32(empty.view(), 1.0)
            .unwrap();
        assert!(ep.is_empty() && ev.is_empty());
    }

    #[test]
    fn f32_plane_varying_efforts_fall_back_to_f64() {
        // Per-row varying efforts are not a park-wide hot path; they keep
        // the f64 path bit-exactly even when the f32 plane is selected.
        let (rows, labels, efforts, _) = noisy_poaching_data(250, 18);
        let mut model = IWareModel::fit(&quick_config(4), rows.view(), &labels, &efforts);
        let q = rows.view().head(30);
        let p64 = model.predict_proba_at_effort(q, &efforts[..30]);
        let (vp64, vv64) = model.predict_with_variance_at_effort(q, &efforts[..30]);
        model.set_precision(Precision::F32).unwrap();
        assert_eq!(model.predict_proba_at_effort(q, &efforts[..30]), p64);
        let (vp32, vv32) = model.predict_with_variance_at_effort(q, &efforts[..30]);
        assert_eq!(vp32, vp64);
        assert_eq!(vv32, vv64);
    }

    #[test]
    fn bitvector_layout_serves_bit_identical_surfaces() {
        let (rows, labels, efforts, _) = noisy_poaching_data(400, 23);
        let mut model = IWareModel::fit(&quick_config(5), rows.view(), &labels, &efforts);
        assert_eq!(model.layout(), TraversalLayout::Interleaved);
        let q = rows.view().head(300);
        let grid = vec![0.5, 1.0, 2.0, 3.5];
        let (p_il, v_il) = model.effort_response(q, &grid);
        let level = vec![1.0; 300];
        let (rp_il, rv_il) = model.predict_with_variance_at_effort(q, &level);
        let pp_il = model.predict_proba_at_effort(q, &level);
        let vary_il = model.predict_proba_at_effort(q, &efforts[..300]);

        model.set_layout(TraversalLayout::BitVector);
        assert_eq!(model.layout(), TraversalLayout::BitVector);
        let (p_bv, v_bv) = model.effort_response(q, &grid);
        assert_eq!(p_bv.as_slice(), p_il.as_slice(), "response probs");
        assert_eq!(v_bv.as_slice(), v_il.as_slice(), "response vars");
        let (rp_bv, rv_bv) = model.predict_with_variance_at_effort(q, &level);
        assert_eq!(rp_bv, rp_il, "risk-map probs");
        assert_eq!(rv_bv, rv_il, "risk-map vars");
        assert_eq!(model.predict_proba_at_effort(q, &level), pp_il);
        assert_eq!(
            model.predict_proba_at_effort(q, &efforts[..300]),
            vary_il,
            "varying-effort path routes through the lifted scorer too"
        );

        // The f32 plane under both layouts: surfaces must agree bit-tight
        // with the interleaved f32 arena (the scorer changes layout, never
        // values).
        model.set_layout(TraversalLayout::Interleaved);
        model.set_precision(Precision::F32).unwrap();
        let (p32_il, v32_il) = model.effort_response(q, &grid);
        model.set_layout(TraversalLayout::BitVector);
        let (p32_bv, v32_bv) = model.effort_response(q, &grid);
        assert_eq!(p32_bv.as_slice(), p32_il.as_slice(), "f32 response probs");
        assert_eq!(v32_bv.as_slice(), v32_il.as_slice(), "f32 response vars");

        // Precision flips while the bitvector layout is active keep the
        // lifted scorers in sync in both directions.
        model.set_precision(Precision::F64).unwrap();
        let (p_back, _) = model.effort_response(q, &grid);
        assert_eq!(p_back.as_slice(), p_il.as_slice());
        model.set_precision(Precision::F32).unwrap();
        let (p32_back, _) = model.effort_response(q, &grid);
        assert_eq!(p32_back.as_slice(), p32_il.as_slice());
    }

    #[test]
    fn uniform_weight_mode_gives_uniform_weights() {
        let (rows, labels, efforts, _) = noisy_poaching_data(200, 7);
        let mut cfg = quick_config(4);
        cfg.weight_mode = WeightMode::Uniform;
        let model = IWareModel::fit(&cfg, rows.view(), &labels, &efforts);
        for &w in model.weights() {
            assert!((w - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_data_falls_back_to_uniform_weights() {
        // Too few positives to stratify into folds: CV weight fit must bail
        // out gracefully.
        let (rows, _, efforts, _) = noisy_poaching_data(100, 8);
        let mut labels = vec![0.0; 100];
        labels[0] = 1.0;
        labels[50] = 1.0;
        let model = IWareModel::fit(&quick_config(3), rows.view(), &labels, &efforts);
        for &w in model.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    type Tamper = Box<dyn FnOnce(&mut Vec<u64>, &mut Vec<f64>, &mut Vec<f64>)>;

    /// Re-encode a fitted model's stack snapshot with tampered stack-level
    /// sections (the forest section is kept intact, so every checksum is
    /// valid and only the stack invariants can catch the corruption).
    fn tampered_stack_snapshot(
        model: &IWareModel,
        tamper: impl FnOnce(&mut Vec<u64>, &mut Vec<f64>, &mut Vec<f64>),
    ) -> Vec<u8> {
        let stack = model.stack.as_ref().expect("tree stack");
        let mut ranges: Vec<u64> = stack
            .ranges
            .iter()
            .flat_map(|r| [r.start as u64, r.end as u64])
            .collect();
        let mut weights = model.weights.clone();
        let mut thresholds = model.thresholds.clone();
        tamper(&mut ranges, &mut weights, &mut thresholds);
        let mut w = SnapshotWriter::new(PayloadKind::LearnerStack);
        w.push_forest(&stack.forest);
        w.push_u64_section(snapshot_section::RANGES, &ranges);
        w.push_f64_section(snapshot_section::WEIGHTS, &weights);
        w.push_f64_section(snapshot_section::THRESHOLDS, &thresholds);
        w.finish()
    }

    #[test]
    fn stack_snapshot_round_trips_bit_identically() {
        let (rows, labels, efforts, _) = noisy_poaching_data(300, 11);
        let cfg = quick_config(4);
        let model = IWareModel::fit(&cfg, rows.view(), &labels, &efforts);
        let bytes = model.to_stack_snapshot().expect("tree stack snapshots");
        let mut loaded = IWareModel::from_stack_snapshot(&bytes, cfg).expect("snapshot decodes");

        assert_eq!(loaded.n_learners(), model.n_learners());
        assert_eq!(loaded.n_features(), model.n_features());
        assert_eq!(loaded.weights(), model.weights());
        assert_eq!(loaded.thresholds(), model.thresholds());

        let q = rows.view().head(64);
        let grid = [0.0, 0.5, 1.0, 2.0, 3.5];
        let (p_ref, v_ref) = model.effort_response(q, &grid);
        let (p, v) = loaded.effort_response(q, &grid);
        assert_eq!(p.as_slice(), p_ref.as_slice());
        assert_eq!(v.as_slice(), v_ref.as_slice());

        // The layout switch is pure layout: the reloaded model must agree
        // with the original bit-for-bit on the bitvector plane too.
        loaded.set_layout(TraversalLayout::BitVector);
        let (p_qs, v_qs) = loaded.effort_response(q, &grid);
        assert_eq!(p_qs.as_slice(), p_ref.as_slice());
        assert_eq!(v_qs.as_slice(), v_ref.as_slice());

        // A second snapshot of the reloaded model is byte-identical: the
        // wire form is canonical.
        loaded.set_layout(TraversalLayout::Interleaved);
        assert_eq!(loaded.to_stack_snapshot().unwrap(), bytes);
    }

    #[test]
    fn stack_snapshot_rejects_tampered_sections() {
        let (rows, labels, efforts, _) = noisy_poaching_data(250, 12);
        let cfg = quick_config(3);
        let model = IWareModel::fit(&cfg, rows.view(), &labels, &efforts);

        // Sanity: an untampered re-encode decodes.
        let clean = tampered_stack_snapshot(&model, |_, _, _| {});
        assert!(IWareModel::from_stack_snapshot(&clean, cfg.clone()).is_ok());

        let cases: Vec<(&str, Tamper)> = vec![
            (
                "odd ranges",
                Box::new(|r: &mut Vec<u64>, _: &mut Vec<f64>, _: &mut Vec<f64>| {
                    r.pop();
                }),
            ),
            (
                "learner count mismatch",
                Box::new(|_, w, _| {
                    w.pop();
                }),
            ),
            (
                "non-contiguous ranges",
                Box::new(|r, _, _| {
                    r[0] = 1;
                }),
            ),
            (
                "ranges miss trailing trees",
                Box::new(|r, _, _| {
                    let last = r.len() - 1;
                    r[last] -= 1;
                }),
            ),
            (
                "empty range",
                Box::new(|r, _, _| {
                    r[1] = r[0];
                }),
            ),
            (
                "NaN weight",
                Box::new(|_, w, _| {
                    w[0] = f64::NAN;
                }),
            ),
            (
                "negative weight",
                Box::new(|_, w, _| {
                    w[0] = -0.25;
                }),
            ),
            (
                "non-ascending thresholds",
                Box::new(|_, _, t| {
                    t.swap(0, 1);
                }),
            ),
            (
                "infinite threshold",
                Box::new(|_, _, t| {
                    t[0] = f64::NEG_INFINITY;
                }),
            ),
        ];
        for (label, tamper) in cases {
            let bytes = tampered_stack_snapshot(&model, tamper);
            let err = match IWareModel::from_stack_snapshot(&bytes, cfg.clone()) {
                Ok(_) => panic!("{label}: tampered snapshot decoded"),
                Err(e) => e,
            };
            assert!(
                matches!(
                    err,
                    SnapshotError::Invariant(_) | SnapshotError::SectionShape { .. }
                ),
                "{label}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn try_effort_response_rejects_adversarial_queries() {
        let (rows, labels, efforts, _) = noisy_poaching_data(200, 13);
        let model = IWareModel::fit(&quick_config(3), rows.view(), &labels, &efforts);
        let grid = [0.5, 1.5];

        let wide = Matrix::from_rows(&[vec![0.1, 0.2, 0.3]]);
        assert_eq!(
            model.try_effort_response(wide.view(), &grid),
            Err(QueryError::WidthMismatch {
                expected: 2,
                got: 3
            })
        );

        let empty = Matrix::new(2);
        assert_eq!(
            model.try_effort_response(empty.view(), &grid),
            Err(QueryError::EmptyQuery)
        );

        let nan = Matrix::from_rows(&[vec![0.1, 0.2], vec![f64::NAN, 0.4]]);
        assert_eq!(
            model.try_effort_response(nan.view(), &grid),
            Err(QueryError::NonFinite { row: 1, col: 0 })
        );

        let q = rows.view().head(8);
        assert_eq!(
            model.try_effort_response(q, &[]),
            Err(QueryError::EmptyEffortGrid)
        );
        assert_eq!(
            model.try_effort_response(q, &[0.5, -1.0]),
            Err(QueryError::BadEffort { index: 1 })
        );
        assert_eq!(
            model.try_effort_response(q, &[0.5, f64::INFINITY]),
            Err(QueryError::BadEffort { index: 1 })
        );

        // Valid input passes through to the panicking path unchanged.
        let (p_ok, _) = model.try_effort_response(q, &grid).expect("valid query");
        let (p_ref, _) = model.effort_response(q, &grid);
        assert_eq!(p_ok.as_slice(), p_ref.as_slice());
    }

    fn concat(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = a.clone();
        out.extend_rows(b.view());
        out
    }

    #[test]
    fn subset_drift_counts_symmetric_difference() {
        assert_eq!(subset_drift(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(subset_drift(&[1, 2, 3], &[1, 2, 3, 4]), 1.0 / 3.0);
        assert_eq!(subset_drift(&[1, 2, 3], &[2, 3, 5]), 2.0 / 3.0);
        assert_eq!(subset_drift(&[], &[7]), 1.0);
    }

    #[test]
    fn staged_fit_cached_matches_fit() {
        let (x, labels, efforts, _) = noisy_poaching_data(260, 31);
        let config = quick_config(5);
        let a = IWareModel::fit(&config, x.view(), &labels, &efforts);
        let (b, cache) = IWareModel::fit_cached(&config, x.view(), &labels, &efforts);
        assert_eq!(a.thresholds(), b.thresholds());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(cache.n_rows(), 260);
        assert_eq!(cache.n_learners(), a.n_learners());
        assert!(cache.has_cv_cache());
        let (probe, _, probe_efforts, _) = noisy_poaching_data(50, 99);
        assert_eq!(
            a.predict_proba_at_effort(probe.view(), &probe_efforts),
            b.predict_proba_at_effort(probe.view(), &probe_efforts)
        );
    }

    #[test]
    fn warm_refit_without_new_rows_is_a_bit_identical_resolve() {
        let (x, labels, efforts, _) = noisy_poaching_data(260, 32);
        let config = quick_config(5);
        let (cold, mut cache) = IWareModel::fit_cached(&config, x.view(), &labels, &efforts);
        let (warm, stats) =
            IWareModel::warm_refit(&config, &mut cache, x.view(), &labels, &efforts, 0.0);
        assert_eq!(stats.learners_kept, cold.n_learners());
        assert_eq!(stats.learners_refitted, 0);
        assert!(stats.cv_resolved_from_cache);
        assert!(!stats.full_cv);
        // Identical subsets keep every learner; the weight re-solve sees
        // the same cached predictions and qualified sets, so even the
        // weights come back bit-identical.
        assert_eq!(warm.thresholds(), cold.thresholds());
        assert_eq!(warm.weights(), cold.weights());
        let (probe, _, probe_efforts, _) = noisy_poaching_data(50, 99);
        assert_eq!(
            warm.predict_proba_at_effort(probe.view(), &probe_efforts),
            cold.predict_proba_at_effort(probe.view(), &probe_efforts)
        );
    }

    #[test]
    fn zero_tolerance_warm_refit_matches_cold_fit_with_uniform_weights() {
        let mut config = quick_config(5);
        config.weight_mode = WeightMode::Uniform;
        let (x, labels, efforts, _) = noisy_poaching_data(240, 33);
        let (x2, labels2, efforts2, _) = noisy_poaching_data(40, 77);
        let (_, mut cache) = IWareModel::fit_cached(&config, x.view(), &labels, &efforts);
        let full_x = concat(&x, &x2);
        let full_labels: Vec<f64> = labels.iter().chain(&labels2).copied().collect();
        let full_efforts: Vec<f64> = efforts.iter().chain(&efforts2).copied().collect();
        let (warm, stats) = IWareModel::warm_refit(
            &config,
            &mut cache,
            full_x.view(),
            &full_labels,
            &full_efforts,
            0.0,
        );
        // At tolerance 0 every learner whose subset moved refits with its
        // cold seed, so with uniform weights the warm model reproduces the
        // cold fit on the concatenation bit-for-bit.
        let cold = IWareModel::fit(&config, full_x.view(), &full_labels, &full_efforts);
        assert_eq!(
            stats.learners_kept + stats.learners_refitted,
            cold.n_learners()
        );
        assert_eq!(warm.thresholds(), cold.thresholds());
        assert_eq!(warm.weights(), cold.weights());
        assert_eq!(cache.n_rows(), 280);
        let (probe, _, probe_efforts, _) = noisy_poaching_data(60, 98);
        assert_eq!(
            warm.predict_proba_at_effort(probe.view(), &probe_efforts),
            cold.predict_proba_at_effort(probe.view(), &probe_efforts)
        );
    }

    #[test]
    fn tolerant_warm_refit_keeps_learners_on_a_small_append() {
        let config = quick_config(5);
        let (x, labels, efforts, _) = noisy_poaching_data(400, 34);
        let (x2, labels2, efforts2, _) = noisy_poaching_data(8, 78);
        let (_, mut cache) = IWareModel::fit_cached(&config, x.view(), &labels, &efforts);
        let full_x = concat(&x, &x2);
        let full_labels: Vec<f64> = labels.iter().chain(&labels2).copied().collect();
        let full_efforts: Vec<f64> = efforts.iter().chain(&efforts2).copied().collect();
        let (warm, stats) = IWareModel::warm_refit(
            &config,
            &mut cache,
            full_x.view(),
            &full_labels,
            &full_efforts,
            1.0,
        );
        // A 2% append cannot move any subset by more than the tolerance,
        // so the warm path keeps every non-degenerate learner and only
        // re-solves the weights from cache.
        assert!(
            stats.learners_kept >= warm.n_learners() - 1,
            "expected kept learners, got {stats:?}"
        );
        assert!(stats.cv_resolved_from_cache);
        // Bounded warm-path divergence: the kept learners saw subsets at
        // most one batch stale — and, with θ-keyed seeds, possibly a
        // bootstrap drawn at the pre-append threshold — so predictions
        // stay in the same neighbourhood as the cold fit without being
        // bit-identical.
        let cold = IWareModel::fit(&config, full_x.view(), &full_labels, &full_efforts);
        let (probe, _, probe_efforts, _) = noisy_poaching_data(80, 97);
        let pw = warm.predict_proba_at_effort(probe.view(), &probe_efforts);
        let pc = cold.predict_proba_at_effort(probe.view(), &probe_efforts);
        let max_diff = pw
            .iter()
            .zip(&pc)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 0.65,
            "warm-path divergence should stay bounded, got {max_diff}"
        );
    }
}
