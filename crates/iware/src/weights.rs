//! Classifier-weight optimisation for the iWare-E ensemble.
//!
//! Sec. IV, first enhancement: instead of weighing every qualified
//! classifier equally, the enhanced iWare-E "hold[s] out a testing set and
//! perform[s] 5-fold cross validation to minimize the log loss of the
//! predictions when varying the classifier weights", then retrains on the
//! full training data with those weights.
//!
//! The optimiser works on the (validation-prediction, qualification-mask,
//! label) triples produced during cross-validation. Weights live on the
//! probability simplex; per test point only the qualified learners'
//! (renormalised) weights contribute. The simplex is parameterised with a
//! softmax and optimised by gradient descent with a numerically estimated
//! gradient — the dimensionality is the number of learners (≤ 20), so this
//! is cheap and robust.

use serde::{Deserialize, Serialize};

/// How ensemble-member predictions are combined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightMode {
    /// Equal weight to every qualified classifier (original iWare-E).
    Uniform,
    /// Cross-validated log-loss-optimal weights (the paper's enhancement).
    CvOptimized {
        /// Number of stratified CV folds (the paper uses 5).
        folds: usize,
        /// Gradient-descent iterations for the weight fit.
        iterations: usize,
    },
}

impl Default for WeightMode {
    fn default() -> Self {
        WeightMode::CvOptimized {
            folds: 5,
            iterations: 120,
        }
    }
}

/// Combine learner probabilities for one point: renormalise the weights of
/// the qualified learners and take the weighted average.
pub fn combine(probabilities: &[f64], weights: &[f64], qualified: &[usize]) -> f64 {
    debug_assert_eq!(probabilities.len(), weights.len());
    let mut wsum = 0.0;
    let mut acc = 0.0;
    for &i in qualified {
        wsum += weights[i];
        acc += weights[i] * probabilities[i];
    }
    if wsum <= 1e-12 {
        // Degenerate weights: fall back to the unweighted mean of the
        // qualified learners.
        let n = qualified.len().max(1) as f64;
        qualified.iter().map(|&i| probabilities[i]).sum::<f64>() / n
    } else {
        acc / wsum
    }
}

/// Log loss of the combined predictions under a candidate weight vector.
fn weighted_log_loss(
    predictions: &[Vec<f64>],
    qualified: &[Vec<usize>],
    labels: &[f64],
    weights: &[f64],
) -> f64 {
    let eps = 1e-9;
    let mut total = 0.0;
    for ((p, q), &y) in predictions.iter().zip(qualified).zip(labels) {
        let prob = combine(p, weights, q).clamp(eps, 1.0 - eps);
        total += if y > 0.5 {
            -prob.ln()
        } else {
            -(1.0 - prob).ln()
        };
    }
    total / labels.len().max(1) as f64
}

fn softmax(z: &[f64]) -> Vec<f64> {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Fit simplex weights minimising the cross-validated log loss.
///
/// * `predictions[point][learner]` — out-of-fold probability of each learner.
/// * `qualified[point]` — indices of the learners qualified for that point.
/// * `labels[point]` — binary labels.
pub fn optimize_weights(
    predictions: &[Vec<f64>],
    qualified: &[Vec<usize>],
    labels: &[f64],
    iterations: usize,
) -> Vec<f64> {
    assert!(
        !predictions.is_empty(),
        "no validation predictions supplied"
    );
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions/labels length mismatch"
    );
    assert_eq!(
        predictions.len(),
        qualified.len(),
        "predictions/qualified length mismatch"
    );
    let n_learners = predictions[0].len();
    assert!(n_learners >= 1, "need at least one learner");
    if n_learners == 1 {
        return vec![1.0];
    }

    let mut z = vec![0.0; n_learners];
    let mut lr = 0.5;
    let mut best_w = softmax(&z);
    let mut best_loss = weighted_log_loss(predictions, qualified, labels, &best_w);

    for _ in 0..iterations {
        // Central-difference gradient in the softmax parameterisation.
        let h = 1e-4;
        let mut grad = vec![0.0; n_learners];
        for j in 0..n_learners {
            let mut zp = z.clone();
            zp[j] += h;
            let lp = weighted_log_loss(predictions, qualified, labels, &softmax(&zp));
            let mut zm = z.clone();
            zm[j] -= h;
            let lm = weighted_log_loss(predictions, qualified, labels, &softmax(&zm));
            grad[j] = (lp - lm) / (2.0 * h);
        }
        let candidate: Vec<f64> = z.iter().zip(&grad).map(|(zi, gi)| zi - lr * gi).collect();
        let cand_w = softmax(&candidate);
        let cand_loss = weighted_log_loss(predictions, qualified, labels, &cand_w);
        if cand_loss < best_loss {
            best_loss = cand_loss;
            best_w = cand_w;
            z = candidate;
            lr = (lr * 1.1).min(2.0);
        } else {
            lr *= 0.5;
            if lr < 1e-4 {
                break;
            }
        }
    }
    best_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_renormalises_over_qualified_learners() {
        let probs = vec![0.1, 0.9, 0.5];
        let weights = vec![0.25, 0.25, 0.5];
        // Only learners 0 and 1 qualified -> (0.25*0.1 + 0.25*0.9)/0.5 = 0.5.
        assert!((combine(&probs, &weights, &[0, 1]) - 0.5).abs() < 1e-12);
        // All qualified -> plain weighted mean.
        assert!((combine(&probs, &weights, &[0, 1, 2]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn combine_falls_back_when_weights_vanish() {
        let probs = vec![0.2, 0.8];
        let weights = vec![0.0, 0.0];
        assert!((combine(&probs, &weights, &[0, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn optimizer_prefers_the_accurate_learner() {
        // Learner 0 predicts the truth, learner 1 predicts noise.
        let n = 200;
        let labels: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let predictions: Vec<Vec<f64>> = labels
            .iter()
            .enumerate()
            .map(|(i, &y)| {
                let good = if y > 0.5 { 0.9 } else { 0.1 };
                let noisy = if i % 3 == 0 { 0.8 } else { 0.3 };
                vec![good, noisy]
            })
            .collect();
        let qualified: Vec<Vec<usize>> = (0..n).map(|_| vec![0, 1]).collect();
        let w = optimize_weights(&predictions, &qualified, &labels, 200);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] > 0.8, "accurate learner should dominate: {w:?}");
    }

    #[test]
    fn optimized_weights_never_worse_than_uniform() {
        let n = 120;
        let labels: Vec<f64> = (0..n).map(|i| if i % 4 == 0 { 1.0 } else { 0.0 }).collect();
        let predictions: Vec<Vec<f64>> = labels
            .iter()
            .enumerate()
            .map(|(i, &y)| {
                vec![
                    if y > 0.5 { 0.7 } else { 0.3 },
                    if (i / 2) % 2 == 0 { 0.6 } else { 0.4 },
                    0.5,
                ]
            })
            .collect();
        let qualified: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2]
                } else {
                    vec![0, 1]
                }
            })
            .collect();
        let uniform = vec![1.0 / 3.0; 3];
        let w = optimize_weights(&predictions, &qualified, &labels, 150);
        let loss_uniform = weighted_log_loss(&predictions, &qualified, &labels, &uniform);
        let loss_opt = weighted_log_loss(&predictions, &qualified, &labels, &w);
        assert!(loss_opt <= loss_uniform + 1e-9);
    }

    #[test]
    fn single_learner_gets_all_the_weight() {
        let w = optimize_weights(&[vec![0.3]], &[vec![0]], &[1.0], 10);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn weights_form_a_probability_simplex() {
        let labels = vec![1.0, 0.0, 1.0, 0.0];
        let predictions = vec![
            vec![0.8, 0.2],
            vec![0.3, 0.6],
            vec![0.7, 0.4],
            vec![0.2, 0.5],
        ];
        let qualified: Vec<Vec<usize>> = (0..4).map(|_| vec![0, 1]).collect();
        let w = optimize_weights(&predictions, &qualified, &labels, 100);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
    }
}
