//! Linear support-vector machine with probability calibration.
//!
//! SVMs are one of the weak-learner choices evaluated in Table II (the SVB
//! variants). The implementation trains a linear SVM with the Pegasos
//! stochastic sub-gradient method on the hinge loss and calibrates decision
//! values into probabilities with Platt scaling (a logistic fit on the
//! training decision values), matching the common `SVC(probability=True)`
//! setup used by the original Python pipeline. Feature batches are flat
//! row-major [`MatrixView`]s, so the Pegasos inner loop and the batch
//! decision-value kernel stream contiguous rows, vectorised with the
//! `f64x4` kernels of [`paws_data::simd`] (the shrink/update steps are
//! element-wise and bit-identical to the scalar loops; the decision dots
//! regroup lanes within the documented ≤ 1e-12 parity envelope).

use crate::traits::{validate_training_data, Classifier};
use paws_data::matrix::MatrixView;
use paws_data::simd;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Linear-SVM hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmConfig {
    /// L2 regularisation strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of Pegasos epochs over the training set.
    pub epochs: usize,
    /// Number of iterations of the Platt-scaling logistic fit.
    pub platt_iterations: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            epochs: 30,
            platt_iterations: 300,
        }
    }
}

/// A fitted linear SVM with Platt-scaled probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    platt_a: f64,
    platt_b: f64,
}

impl LinearSvm {
    /// Fit the SVM on the feature batch `x` / binary `labels` (0.0 / 1.0).
    pub fn fit(config: &SvmConfig, x: MatrixView<'_>, labels: &[f64], seed: u64) -> Self {
        validate_training_data(x, labels);
        let n = x.n_rows();
        let k = x.n_cols();
        let y: Vec<f64> = labels
            .iter()
            .map(|&l| if l > 0.5 { 1.0 } else { -1.0 })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut w = vec![0.0; k];
        let mut b = 0.0;
        let mut t: f64 = 1.0;
        for _ in 0..config.epochs {
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let row = x.row(i);
                let eta = 1.0 / (config.lambda * t);
                let margin = y[i] * (dot(&w, row) + b);
                // Regularisation shrinkage.
                simd::scale(&mut w, 1.0 - eta * config.lambda);
                if margin < 1.0 {
                    simd::axpy(eta * y[i], row, &mut w);
                    b += eta * y[i];
                }
                t += 1.0;
            }
        }

        // Platt scaling: fit sigma(a*f + b) to the labels by gradient descent
        // on the logistic loss of the decision values.
        let decisions: Vec<f64> = x.rows().map(|r| dot(&w, r) + b).collect();
        let (platt_a, platt_b) = fit_platt(&decisions, labels, config.platt_iterations);

        Self {
            weights: w,
            bias: b,
            platt_a,
            platt_b,
        }
    }

    /// Raw (uncalibrated) decision value of one row.
    pub fn decision_function(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature width mismatch");
        dot(&self.weights, row) + self.bias
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Classifier for LinearSvm {
    fn predict_proba(&self, x: MatrixView<'_>) -> Vec<f64> {
        assert_eq!(x.n_cols(), self.weights.len(), "feature width mismatch");
        x.rows()
            .map(|r| sigmoid(self.platt_a * (dot(&self.weights, r) + self.bias) + self.platt_b))
            .collect()
    }
}

fn fit_platt(decisions: &[f64], labels: &[f64], iterations: usize) -> (f64, f64) {
    let n = decisions.len() as f64;
    let mut a = 1.0;
    let mut b = 0.0;
    let lr = 0.1;
    for _ in 0..iterations {
        let mut grad_a = 0.0;
        let mut grad_b = 0.0;
        for (&f, &y) in decisions.iter().zip(labels) {
            let p = sigmoid(a * f + b);
            let err = p - y;
            grad_a += err * f;
            grad_b += err;
        }
        a -= lr * grad_a / n;
        b -= lr * grad_b / n;
    }
    (a, b)
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    simd::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;
    use paws_data::matrix::Matrix;

    fn linearly_separable(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + 0.5 * r[1] > 0.1 { 1.0 } else { 0.0 })
            .collect();
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn separates_linear_data() {
        let (rows, labels) = linearly_separable(400, 1);
        let svm = LinearSvm::fit(&SvmConfig::default(), rows.view(), &labels, 3);
        let (trows, tlabels) = linearly_separable(200, 2);
        let probs = svm.predict_proba(trows.view());
        assert!(roc_auc(&tlabels, &probs) > 0.95);
    }

    #[test]
    #[should_panic(expected = "features must be finite")]
    fn non_finite_features_are_rejected_up_front() {
        let (rows, labels) = linearly_separable(50, 4);
        let mut raw = rows.as_slice().to_vec();
        raw[9] = f64::NEG_INFINITY;
        let x = Matrix::from_flat(raw, rows.n_cols());
        let _ = LinearSvm::fit(&SvmConfig::default(), x.view(), &labels, 3);
    }

    #[test]
    fn probabilities_are_calibrated_direction() {
        let (rows, labels) = linearly_separable(300, 3);
        let svm = LinearSvm::fit(&SvmConfig::default(), rows.view(), &labels, 3);
        // Clearly positive point gets higher probability than clearly negative.
        let p_pos = svm.predict_proba_one(&[0.9, 0.9]);
        let p_neg = svm.predict_proba_one(&[-0.9, -0.9]);
        assert!(p_pos > p_neg);
        assert!((0.0..=1.0).contains(&p_pos));
        assert!((0.0..=1.0).contains(&p_neg));
        let _ = labels;
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, labels) = linearly_separable(200, 4);
        let a = LinearSvm::fit(&SvmConfig::default(), rows.view(), &labels, 9);
        let b = LinearSvm::fit(&SvmConfig::default(), rows.view(), &labels, 9);
        assert_eq!(a.predict_proba(rows.view()), b.predict_proba(rows.view()));
    }

    #[test]
    fn weights_reflect_informative_feature() {
        let (rows, labels) = linearly_separable(500, 5);
        let svm = LinearSvm::fit(&SvmConfig::default(), rows.view(), &labels, 3);
        // Feature 0 has twice the influence of feature 1 in the ground truth.
        assert!(svm.weights()[0].abs() > svm.weights()[1].abs());
        assert!(svm.weights()[0] > 0.0);
    }

    #[test]
    fn batch_predict_matches_per_row_predict() {
        let (rows, labels) = linearly_separable(100, 6);
        let svm = LinearSvm::fit(&SvmConfig::default(), rows.view(), &labels, 3);
        let batch = svm.predict_proba(rows.view());
        for (i, &p) in batch.iter().enumerate() {
            assert_eq!(p, svm.predict_proba_one(rows.row(i)));
        }
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn decision_function_rejects_wrong_width() {
        let (rows, labels) = linearly_separable(50, 6);
        let svm = LinearSvm::fit(&SvmConfig::default(), rows.view(), &labels, 3);
        let _ = svm.decision_function(&[1.0, 2.0, 3.0]);
    }
}
