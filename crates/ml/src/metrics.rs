//! Evaluation metrics: ROC AUC, log loss, Pearson correlation.
//!
//! The paper evaluates predictive performance with AUC (Table II), optimises
//! iWare-E classifier weights by log loss (Sec. IV), and compares the
//! uncertainty signals of GPs and bagged trees with Pearson correlation
//! (Fig. 7).

/// Area under the ROC curve, computed from the rank statistic
/// (Mann–Whitney U), with ties resolved by mid-ranks.
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(labels: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average rank for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y > 0.5)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Binary cross-entropy (log loss), with probabilities clipped away from 0
/// and 1 for numerical stability.
pub fn log_loss(labels: &[f64], probabilities: &[f64]) -> f64 {
    assert_eq!(
        labels.len(),
        probabilities.len(),
        "labels/probabilities length mismatch"
    );
    assert!(!labels.is_empty(), "log loss of an empty sample");
    let eps = 1e-12;
    let total: f64 = labels
        .iter()
        .zip(probabilities)
        .map(|(&y, &p)| {
            let p = p.clamp(eps, 1.0 - eps);
            if y > 0.5 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / labels.len() as f64
}

/// Pearson correlation coefficient. Returns 0 when either input is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "correlation of an empty sample");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    let denom = (va * vb).sqrt();
    if denom < 1e-300 {
        0.0
    } else {
        cov / denom
    }
}

/// Classification accuracy at a 0.5 threshold.
pub fn accuracy(labels: &[f64], probabilities: &[f64]) -> f64 {
    assert_eq!(labels.len(), probabilities.len(), "length mismatch");
    assert!(!labels.is_empty(), "accuracy of an empty sample");
    let correct = labels
        .iter()
        .zip(probabilities)
        .filter(|(&y, &p)| (p >= 0.5) == (y > 0.5))
        .count();
    correct as f64 / labels.len() as f64
}

/// Brier score (mean squared error of probabilities).
pub fn brier_score(labels: &[f64], probabilities: &[f64]) -> f64 {
    assert_eq!(labels.len(), probabilities.len(), "length mismatch");
    assert!(!labels.is_empty(), "brier score of an empty sample");
    labels
        .iter()
        .zip(probabilities)
        .map(|(&y, &p)| (p - y).powi(2))
        .sum::<f64>()
        / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_of_perfect_ranking_is_one() {
        let labels = vec![0.0, 0.0, 1.0, 1.0];
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        assert!((roc_auc(&labels, &scores) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_inverted_ranking_is_zero() {
        let labels = vec![0.0, 0.0, 1.0, 1.0];
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        assert!(roc_auc(&labels, &scores).abs() < 1e-12);
    }

    #[test]
    fn auc_of_random_constant_scores_is_half() {
        let labels = vec![1.0, 0.0, 1.0, 0.0, 1.0];
        let scores = vec![0.5; 5];
        assert!((roc_auc(&labels, &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[1.0, 1.0], &[0.3, 0.9]), 0.5);
        assert_eq!(roc_auc(&[0.0, 0.0], &[0.3, 0.9]), 0.5);
    }

    #[test]
    fn auc_handles_ties_with_midranks() {
        // 1 positive above, 1 tied, 1 below -> AUC = (1 + 0.5 + 0) / ... hand check:
        let labels = vec![1.0, 0.0, 1.0, 0.0];
        let scores = vec![0.9, 0.5, 0.5, 0.1];
        // pairs: (p=0.9 vs n=0.5):1, (0.9 vs 0.1):1, (0.5 vs 0.5):0.5, (0.5 vs 0.1):1 => 3.5/4
        assert!((roc_auc(&labels, &scores) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_invariant_under_monotone_transform() {
        let labels = vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let scores = vec![0.1, 0.7, 0.3, 0.9, 0.6, 0.2];
        let transformed: Vec<f64> = scores.iter().map(|&s: &f64| (5.0 * s).exp()).collect();
        assert!((roc_auc(&labels, &scores) - roc_auc(&labels, &transformed)).abs() < 1e-12);
    }

    #[test]
    fn log_loss_prefers_confident_correct_predictions() {
        let labels = vec![1.0, 0.0];
        let good = log_loss(&labels, &[0.9, 0.1]);
        let bad = log_loss(&labels, &[0.6, 0.4]);
        let wrong = log_loss(&labels, &[0.1, 0.9]);
        assert!(good < bad && bad < wrong);
    }

    #[test]
    fn log_loss_handles_extreme_probabilities() {
        let labels = vec![1.0, 0.0];
        let v = log_loss(&labels, &[1.0, 0.0]);
        assert!(v.is_finite());
        assert!(v >= 0.0);
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 1.0).collect();
        let c: Vec<f64> = a.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let a = vec![1.0, 1.0, 1.0];
        let b = vec![0.2, 0.5, 0.9];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn accuracy_and_brier_basics() {
        let labels = vec![1.0, 0.0, 1.0, 0.0];
        let probs = vec![0.8, 0.3, 0.4, 0.2];
        assert!((accuracy(&labels, &probs) - 0.75).abs() < 1e-12);
        let perfect = brier_score(&labels, &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(perfect, 0.0);
        assert!(brier_score(&labels, &probs) > 0.0);
    }
}
