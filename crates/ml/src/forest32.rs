//! The f32 prediction plane's forest: an 8-byte-node arena narrowed from a
//! trained f64 [`Forest`].
//!
//! PR 3 left batch traversal at ~2 cycles/step, pinned against the load-port
//! floor of the 16-byte [`Forest`] node (one 8-byte threshold load + one
//! 8-byte topology load per step) and 8-byte feature reads. [`Forest32`]
//! halves every one of those streams: a node is **8 bytes** (f32 threshold +
//! one packed u32 topology/feature word), leaf probabilities are f32, and
//! the feature batch is a narrowed [`Matrix32`] — twice the nodes per cache
//! line, half the feature-row bandwidth.
//!
//! The layout invariants are exactly the f64 arena's: BFS sibling adjacency
//! (`right = left + 1`, only `left` stored), `+∞`-threshold self-looping
//! leaves (no leaf test in the advance), [`INTERLEAVE`]-way
//! register-interleaved row groups, [`ROW_BLOCK`]-row parallel fan-out.
//!
//! # Precision policy
//!
//! A `Forest32` is a **derived cache**, never a source of truth: training,
//! serialization and the golden parity surface all stay on the f64
//! [`Forest`]. Conversion ([`Forest32::from_forest`]) narrows each split
//! threshold **downward** to the largest f32 ≤ t (see `narrow_threshold`),
//! which makes the plane's semantics exact: a `Forest32` traversal decides
//! every comparison precisely as the f64 tree would decide it for the
//! *f32-quantized* query. The only source of divergence is therefore query
//! narrowing itself — a row whose f64 feature value lies within half an
//! f32 ulp of a split threshold can round across it and take the other
//! branch (a "leaf flip").
//!
//! CART thresholds are midpoints between adjacent distinct training
//! values, so a flip needs two training values closer than ~2 f32 ulps. On
//! the golden parity scenarios that never happens and the end-to-end
//! divergence is pinned ≤ 1e-5 (`tests/matrix_parity.rs`); on park-scale
//! standardized feature stacks it happens only where a fitted tree split a
//! noise-level gap — measured on the test-scenario park, ≥ 99.5 % of
//! response-surface cells stay within 1e-5 of the f64 surface, and a
//! flipped cell moves by at most the affected leaf gap divided by the
//! ensemble fan-in (pinned by the paws-core pipeline test).
//!
//! # Packing limits
//!
//! The packed u32 word holds `left` in the low 24 bits and `feature` in the
//! high 8, capping a `Forest32` arena at 2²⁴ ≈ 16.7 M nodes and 256
//! features — two orders of magnitude above the largest iWare-E learner
//! stack in this reproduction (asserted at conversion, not at traversal).

use crate::forest::{Forest, INTERLEAVE, ROW_BLOCK};
use paws_data::matrix32::{Matrix32, MatrixView32};
use rayon::prelude::*;

/// Maximum node count the 24-bit child index can address.
const MAX_NODES: usize = 1 << 24;
/// Maximum feature count the 8-bit feature field can address.
const MAX_FEATURES: usize = 1 << 8;

/// Compact 8-byte arena node: f32 threshold plus one u32 packing
/// `left_child | feature << 24`. Same encoding contract as the f64
/// `ArenaNode`: interior nodes store the left child (right is `left + 1`),
/// leaves store `+∞` and self-reference with `feature = 0`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaNode32 {
    /// Split threshold for interior nodes; `+∞` for leaves.
    pub(crate) value: f32,
    /// Packed `left_child | feature << 24`.
    packed: u32,
}

impl ArenaNode32 {
    #[inline]
    fn new(value: f32, left: u32, feature: u32) -> Self {
        debug_assert!(left < MAX_NODES as u32);
        debug_assert!(feature < MAX_FEATURES as u32);
        Self {
            value,
            packed: left | (feature << 24),
        }
    }

    #[inline(always)]
    pub(crate) fn left(&self) -> u32 {
        self.packed & (MAX_NODES as u32 - 1)
    }

    #[inline(always)]
    pub(crate) fn feature(&self) -> u32 {
        self.packed >> 24
    }

    /// Raw `(value_bits, packed)` words — the snapshot wire image of a
    /// node.
    #[inline]
    pub(crate) fn to_bits(self) -> (u32, u32) {
        (self.value.to_bits(), self.packed)
    }

    /// Rebuild a node from its wire image. Snapshot decoder only; the
    /// caller validates the arena before traversal can see it.
    #[inline]
    pub(crate) fn from_bits(value_bits: u32, packed: u32) -> Self {
        Self {
            value: f32::from_bits(value_bits),
            packed,
        }
    }

    /// Leaves self-reference (see the f64 `ArenaNode`).
    #[inline]
    pub(crate) fn is_leaf(&self, own: u32) -> bool {
        self.left() == own
    }

    /// `left` when `xv <= threshold` (always, for a leaf's `+∞` threshold
    /// and finite rows), `left + 1` otherwise — the f32 image of the f64
    /// advance.
    // `!(xv <= v)`, not `xv > v`: a NaN query value must fall right,
    // matching the f64 arena exactly.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline(always)]
    fn advance(&self, xv: f32) -> u32 {
        self.left() + u32::from(!(xv <= self.value))
    }
}

/// Narrow a split threshold to the **largest f32 ≤ t** (not round-to-
/// nearest). For any f32 query value `x`, `x <= t32` is then *exactly*
/// `x <= t`: the f32 plane's comparisons are the f64 tree's comparisons
/// applied to the narrowed query, and the only residual divergence is the
/// query narrowing itself (a row whose f64 value sits within half an f32
/// ulp of `t` can round across it — see the module docs). Round-to-nearest
/// would add a second, avoidable flip window whenever the threshold rounds
/// up across an f32 boundary.
#[inline]
fn narrow_threshold(t: f64) -> f32 {
    let v = t as f32; // round-to-nearest
    if f64::from(v) <= t {
        v
    } else {
        v.next_down()
    }
}

/// Why a trained f64 [`Forest`] cannot be narrowed into the f32 plane's
/// packed 24-bit-node / 8-bit-feature word. Surfaced through
/// `set_precision` on the ensembles so callers can react (keep serving
/// from the f64 plane) instead of panicking deep inside a conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NarrowError {
    /// The arena has no trees; there is nothing to narrow.
    EmptyForest,
    /// The node count exceeds the 24-bit child index (`2²⁴` nodes).
    TooManyNodes {
        /// Nodes in the source arena.
        n_nodes: usize,
        /// Exclusive cap of the packed index.
        max: usize,
    },
    /// The feature width exceeds the 8-bit feature field (256 features).
    TooManyFeatures {
        /// Feature width of the source arena.
        n_features: usize,
        /// Inclusive cap of the packed field.
        max: usize,
    },
}

impl std::fmt::Display for NarrowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NarrowError::EmptyForest => write!(f, "cannot narrow an empty forest"),
            NarrowError::TooManyNodes { n_nodes, max } => write!(
                f,
                "forest arena exceeds the 24-bit node index of the f32 plane \
                 ({n_nodes} nodes, cap {max})"
            ),
            NarrowError::TooManyFeatures { n_features, max } => write!(
                f,
                "feature width exceeds the 8-bit feature field of the f32 plane \
                 ({n_features} features, cap {max})"
            ),
        }
    }
}

impl std::error::Error for NarrowError {}

/// The packing-cap check behind [`Forest32::try_from_forest`], factored
/// out so the caps are testable without allocating a 2²⁴-node arena.
pub(crate) fn check_caps(n_nodes: usize, n_features: usize) -> Result<(), NarrowError> {
    if n_nodes >= MAX_NODES {
        return Err(NarrowError::TooManyNodes {
            n_nodes,
            max: MAX_NODES,
        });
    }
    if n_features > MAX_FEATURES {
        return Err(NarrowError::TooManyFeatures {
            n_features,
            max: MAX_FEATURES,
        });
    }
    Ok(())
}

/// An f32 arena of decision trees, converted from a trained f64 [`Forest`].
/// Same BFS layout, half the node and leaf-table footprint.
#[derive(Debug, Clone)]
pub struct Forest32 {
    nodes: Vec<ArenaNode32>,
    /// Leaf probabilities, parallel to `nodes` (0.0 at interior nodes).
    leaf_values: Vec<f32>,
    roots: Vec<u32>,
    depths: Vec<u32>,
    n_features: usize,
}

impl Forest32 {
    /// Narrow a trained f64 forest into the prediction plane: thresholds
    /// and leaf probabilities are rounded to nearest f32; topology is
    /// copied verbatim (re-packed into the 24/8-bit word).
    ///
    /// # Panics
    /// Panics when the arena exceeds the packing limits (2²⁴ nodes / 256
    /// features) or is empty; [`Forest32::try_from_forest`] surfaces those
    /// cases as a typed [`NarrowError`] instead.
    pub fn from_forest(forest: &Forest) -> Self {
        match Self::try_from_forest(forest) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible narrowing: [`Forest32::from_forest`] with the packing caps
    /// reported as a typed error instead of a panic.
    pub fn try_from_forest(forest: &Forest) -> Result<Self, NarrowError> {
        let (nodes, leaf_values, roots, depths) = forest.arena_parts();
        if roots.is_empty() {
            return Err(NarrowError::EmptyForest);
        }
        check_caps(nodes.len(), forest.n_features())?;
        let nodes32: Vec<ArenaNode32> = nodes
            .iter()
            .map(|n| {
                // Out-of-f32-range thresholds saturate consistently with the
                // query plane's ±f32::MAX clamp (`simd32::narrow`): t >
                // f32::MAX narrows down to f32::MAX (every clamped query
                // goes left, as in f64); t < -f32::MAX narrows to -inf
                // (every clamped query goes right, as in f64). Interior
                // `±∞` thresholds (synthetic trees only) narrow to
                // themselves and keep their always-left / always-right
                // semantics; NaN never occurs in an arena.
                let v32 = narrow_threshold(n.value);
                debug_assert!(!v32.is_nan(), "arena thresholds are never NaN");
                ArenaNode32::new(v32, n.left(), n.feature())
            })
            .collect();
        Ok(Self {
            nodes: nodes32,
            leaf_values: leaf_values.iter().map(|&v| v as f32).collect(),
            roots: roots.to_vec(),
            depths: depths.to_vec(),
            n_features: forest.n_features(),
        })
    }

    /// The raw arena parts `(nodes, leaf_values, roots)` — the lift input
    /// of [`crate::qs::QuickScorer32::from_forest32`].
    pub(crate) fn arena_parts32(&self) -> (&[ArenaNode32], &[f32], &[u32]) {
        (&self.nodes, &self.leaf_values, &self.roots)
    }

    /// Per-tree depths (the snapshot writer's fifth section).
    pub(crate) fn depths32(&self) -> &[u32] {
        &self.depths
    }

    /// Assemble an f32 arena from parts the snapshot decoder has already
    /// validated (same contract as `Forest::from_validated_parts`).
    pub(crate) fn from_validated_parts(
        nodes: Vec<ArenaNode32>,
        leaf_values: Vec<f32>,
        roots: Vec<u32>,
        depths: Vec<u32>,
        n_features: usize,
    ) -> Self {
        debug_assert_eq!(nodes.len(), leaf_values.len());
        debug_assert_eq!(roots.len(), depths.len());
        Self {
            nodes,
            leaf_values,
            roots,
            depths,
            n_features,
        }
    }

    /// Number of trees in the arena.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total number of nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Feature width the source trees were fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Bytes per arena node (the layout claim the plane is built on).
    pub const NODE_BYTES: usize = std::mem::size_of::<ArenaNode32>();

    /// Per-tree predictions for an f32 feature batch as a flat
    /// `n_trees × n_rows` [`Matrix32`] — the single-precision image of
    /// [`Forest::predict_proba_batch`], with identical blocking and
    /// fan-out.
    ///
    /// # Panics
    /// Panics on an empty batch, a feature-width mismatch, or non-finite
    /// query features (the guard that keeps the branch-free self-looping
    /// leaves and unchecked arena indexing sound).
    pub fn predict_proba_batch(&self, x: MatrixView32<'_>) -> Matrix32 {
        assert_eq!(x.n_cols(), self.n_features, "feature width mismatch");
        assert!(!self.roots.is_empty(), "empty forest");
        assert!(!x.is_empty(), "empty prediction batch");
        assert!(
            paws_data::simd32::all_finite(x.as_slice()),
            "prediction features must be finite"
        );
        let n_rows = x.n_rows();
        let n_trees = self.roots.len();
        let mut out = Matrix32::zeros(n_trees, n_rows);

        if n_rows <= ROW_BLOCK || rayon::current_num_threads() <= 1 {
            for start in (0..n_rows).step_by(ROW_BLOCK) {
                let len = ROW_BLOCK.min(n_rows - start);
                self.traverse_block(x, start, len, out.as_mut_slice(), n_rows, start);
            }
            return out;
        }

        let starts: Vec<usize> = (0..n_rows).step_by(ROW_BLOCK).collect();
        let blocks: Vec<Vec<f32>> = starts
            .par_iter()
            .map(|&start| {
                let len = ROW_BLOCK.min(n_rows - start);
                let mut block = vec![0.0f32; n_trees * len];
                self.traverse_block(x, start, len, &mut block, len, 0);
                block
            })
            .collect();
        for (&start, block) in starts.iter().zip(&blocks) {
            let len = ROW_BLOCK.min(n_rows - start);
            for (t, seg) in block.chunks_exact(len).enumerate() {
                out.row_mut(t)[start..start + len].copy_from_slice(seg);
            }
        }
        out
    }

    /// Per-tree predictions for rows `start..start + len`, written
    /// tree-major into `out_block` (`n_trees × len`) — the cache-blocked
    /// building block the fused iWare-E f32 pipeline consumes.
    ///
    /// # Panics
    /// Panics on shape mismatches or a non-finite feature window.
    pub fn predict_proba_block(
        &self,
        x: MatrixView32<'_>,
        start: usize,
        len: usize,
        out_block: &mut [f32],
    ) {
        assert_eq!(x.n_cols(), self.n_features, "feature width mismatch");
        assert!(!self.roots.is_empty(), "empty forest");
        assert!(len > 0 && start + len <= x.n_rows(), "block out of range");
        assert_eq!(
            out_block.len(),
            self.roots.len() * len,
            "output block shape mismatch"
        );
        let window = &x.as_slice()[start * x.n_cols()..(start + len) * x.n_cols()];
        assert!(
            paws_data::simd32::all_finite(window),
            "prediction features must be finite"
        );
        self.traverse_block(x, start, len, out_block, len, 0);
    }

    /// The f32 image of `Forest::traverse_block`: [`INTERLEAVE`]-way
    /// register-interleaved root-to-leaf walks, branch-free advance via the
    /// self-looping leaves, scalar remainder.
    fn traverse_block(
        &self,
        x: MatrixView32<'_>,
        start: usize,
        len: usize,
        out: &mut [f32],
        out_stride: usize,
        out_offset: usize,
    ) {
        debug_assert!(out.len() >= (self.roots.len() - 1) * out_stride + out_offset + len);
        let n_cols = x.n_cols();
        let rows = &x.as_slice()[start * n_cols..(start + len) * n_cols];
        let nodes = self.nodes.as_slice();
        let leaf_values = self.leaf_values.as_slice();
        for (t, (&root, &depth)) in self.roots.iter().zip(&self.depths).enumerate() {
            let out_t = &mut out[t * out_stride + out_offset..t * out_stride + out_offset + len];
            let mut j = 0usize;
            while j + INTERLEAVE <= len {
                let base = j * n_cols;
                let mut slots = [root; INTERLEAVE];
                for _ in 0..depth {
                    for (lane, slot) in slots.iter_mut().enumerate() {
                        // SAFETY: identical argument to the f64 kernel —
                        // cursors start at roots, `advance` over a finite
                        // row value only yields child indices (remapped to
                        // valid arena positions at conversion, since the
                        // source arena's invariants are copied verbatim) or
                        // the leaf itself; features are `< n_features`, so
                        // `base + lane·n_cols + f` stays inside the block
                        // window.
                        let node = unsafe { *nodes.get_unchecked(*slot as usize) };
                        let f = node.feature() as usize;
                        let xv = unsafe { *rows.get_unchecked(base + lane * n_cols + f) };
                        *slot = node.advance(xv);
                    }
                }
                for (o, &slot) in out_t[j..j + INTERLEAVE].iter_mut().zip(&slots) {
                    // SAFETY: as above — `slot` is a valid arena index.
                    *o = unsafe { *leaf_values.get_unchecked(slot as usize) };
                }
                j += INTERLEAVE;
            }
            for (o, jr) in out_t[j..].iter_mut().zip(j..len) {
                let row = &rows[jr * n_cols..(jr + 1) * n_cols];
                let mut idx = root;
                let mut node = nodes[idx as usize];
                while !node.is_leaf(idx) {
                    idx = node.advance(row[node.feature() as usize]);
                    node = nodes[idx as usize];
                }
                *o = leaf_values[idx as usize];
            }
        }
    }

    /// Prediction of tree `t` for one f32 row (classic root-to-leaf walk);
    /// the reference the batch kernel must agree with bit-for-bit.
    pub fn predict_row(&self, t: usize, row: &[f32]) -> f32 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut idx = self.roots[t];
        let mut node = self.nodes[idx as usize];
        while !node.is_leaf(idx) {
            idx = node.advance(row[node.feature() as usize]);
            node = self.nodes[idx as usize];
        }
        self.leaf_values[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, TreeConfig};
    use paws_data::matrix::Matrix;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fitted_forest(n_trees: usize) -> (Matrix, Forest) {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + r[1] > 1.0 { 1.0 } else { 0.0 })
            .collect();
        let x = Matrix::from_rows(&rows);
        let trees: Vec<DecisionTree> = (0..n_trees)
            .map(|s| {
                DecisionTree::fit(
                    &TreeConfig {
                        max_features: Some(2),
                        ..TreeConfig::default()
                    },
                    x.view(),
                    &labels,
                    s as u64,
                )
            })
            .collect();
        let forest = Forest::from_trees(3, trees.iter());
        (x, forest)
    }

    #[test]
    fn node_is_eight_bytes() {
        // The layout claim of the whole plane: half the f64 arena's node.
        assert_eq!(Forest32::NODE_BYTES, 8);
        assert_eq!(std::mem::size_of::<ArenaNode32>(), 8);
    }

    #[test]
    fn conversion_preserves_topology_and_narrows_values() {
        let (_, forest) = fitted_forest(5);
        let f32forest = Forest32::from_forest(&forest);
        assert_eq!(f32forest.n_trees(), forest.n_trees());
        assert_eq!(f32forest.n_nodes(), forest.n_nodes());
        assert_eq!(f32forest.n_features(), forest.n_features());
        let (nodes, leaf_values, roots, depths) = forest.arena_parts();
        assert_eq!(f32forest.roots, roots);
        assert_eq!(f32forest.depths, depths);
        for ((n32, n64), (l32, l64)) in f32forest
            .nodes
            .iter()
            .zip(nodes)
            .zip(f32forest.leaf_values.iter().zip(leaf_values))
        {
            assert_eq!(n32.left(), n64.left());
            assert_eq!(n32.feature(), n64.feature());
            assert_eq!(n32.value, narrow_threshold(n64.value));
            // The downward narrowing invariant: t32 ≤ t, within one ulp
            // (leaves keep their +∞ marker exactly).
            assert!(f64::from(n32.value) <= n64.value);
            if n64.value.is_finite() {
                assert!(f64::from(n32.value.next_up()) > n64.value);
            } else {
                assert_eq!(n32.value, f32::INFINITY);
            }
            assert_eq!(*l32, *l64 as f32);
        }
    }

    #[test]
    fn batch_traversal_is_bit_identical_to_per_row_walks() {
        let (x, forest) = fitted_forest(5);
        let f32forest = Forest32::from_forest(&forest);
        let q = Matrix32::from_f64(x.view());
        let batch = f32forest.predict_proba_batch(q.view());
        for t in 0..f32forest.n_trees() {
            for (r, row) in q.rows().enumerate() {
                assert_eq!(batch.get(t, r), f32forest.predict_row(t, row));
            }
        }
    }

    #[test]
    fn block_traversal_matches_the_full_batch() {
        let (x, forest) = fitted_forest(4);
        let f32forest = Forest32::from_forest(&forest);
        let q = Matrix32::from_f64(x.view());
        let batch = f32forest.predict_proba_batch(q.view());
        let (start, len) = (17, 40);
        let mut block = vec![0.0f32; f32forest.n_trees() * len];
        f32forest.predict_proba_block(q.view(), start, len, &mut block);
        for t in 0..f32forest.n_trees() {
            assert_eq!(
                &block[t * len..(t + 1) * len],
                &batch.row(t)[start..start + len]
            );
        }
    }

    #[test]
    fn packed_word_round_trips_at_the_limits() {
        let n = ArenaNode32::new(1.5, (MAX_NODES - 1) as u32, (MAX_FEATURES - 1) as u32);
        assert_eq!(n.left(), (MAX_NODES - 1) as u32);
        assert_eq!(n.feature(), (MAX_FEATURES - 1) as u32);
    }

    #[test]
    fn packing_caps_are_typed_errors() {
        // The caps themselves, checked without allocating a 2²⁴-node
        // arena: the node count must stay below the 24-bit child index and
        // the feature width within the 8-bit field.
        assert_eq!(check_caps(MAX_NODES - 1, MAX_FEATURES), Ok(()));
        assert_eq!(
            check_caps(MAX_NODES, 3),
            Err(NarrowError::TooManyNodes {
                n_nodes: MAX_NODES,
                max: MAX_NODES
            })
        );
        assert_eq!(
            check_caps(10, MAX_FEATURES + 1),
            Err(NarrowError::TooManyFeatures {
                n_features: MAX_FEATURES + 1,
                max: MAX_FEATURES
            })
        );
        // Display strings name the violated field (surfaced to users via
        // set_precision).
        assert!(check_caps(MAX_NODES, 3)
            .unwrap_err()
            .to_string()
            .contains("24-bit node index"));
    }

    #[test]
    fn try_from_forest_reports_feature_cap() {
        use crate::forest::RawNode;
        let mut forest = Forest::new(300);
        forest.push_raw_tree(&[
            RawNode::Split {
                feature: 299,
                threshold: 0.5,
                left: 1,
                right: 2,
            },
            RawNode::Leaf { value: 0.0 },
            RawNode::Leaf { value: 1.0 },
        ]);
        assert_eq!(
            Forest32::try_from_forest(&forest).unwrap_err(),
            NarrowError::TooManyFeatures {
                n_features: 300,
                max: MAX_FEATURES
            }
        );
    }

    #[test]
    fn try_from_forest_reports_empty_forests() {
        let forest = Forest::new(3);
        assert_eq!(
            Forest32::try_from_forest(&forest).unwrap_err(),
            NarrowError::EmptyForest
        );
    }

    #[test]
    #[should_panic(expected = "feature width exceeds the 8-bit feature field")]
    fn from_forest_panics_on_the_feature_cap() {
        use crate::forest::RawNode;
        let mut forest = Forest::new(257);
        forest.push_raw_tree(&[
            RawNode::Split {
                feature: 256,
                threshold: 0.5,
                left: 1,
                right: 2,
            },
            RawNode::Leaf { value: 0.0 },
            RawNode::Leaf { value: 1.0 },
        ]);
        let _ = Forest32::from_forest(&forest);
    }

    #[test]
    #[should_panic(expected = "cannot narrow an empty forest")]
    fn from_forest_panics_on_empty_forests() {
        let _ = Forest32::from_forest(&Forest::new(3));
    }

    #[test]
    #[should_panic(expected = "prediction features must be finite")]
    fn rejects_non_finite_queries() {
        let (x, forest) = fitted_forest(1);
        let f32forest = Forest32::from_forest(&forest);
        let mut q = Matrix32::from_f64(x.view());
        q.row_mut(0)[1] = f32::NAN;
        let _ = f32forest.predict_proba_batch(q.view());
    }
}
