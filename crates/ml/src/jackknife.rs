//! Infinitesimal-jackknife confidence intervals for bagged ensembles.
//!
//! Sec. V-C compares the GP posterior variance against the random-forest
//! confidence interval of Wager, Hastie & Efron (2014), computed with the
//! infinitesimal-jackknife estimator
//!
//! ```text
//! V_IJ(x) = Σ_i  Cov_b( N_{b,i}, t_b(x) )²
//! ```
//!
//! where `N_{b,i}` counts how often training sample `i` entered bootstrap
//! `b` and `t_b(x)` is member `b`'s prediction at `x`. The paper's finding
//! (Fig. 7) is that this surrogate is almost perfectly correlated with the
//! prediction itself and therefore adds little information, unlike the GP
//! variance.

use crate::bagging::BaggingClassifier;
use paws_data::matrix::MatrixView;

/// Infinitesimal-jackknife variance estimate of the bagged prediction at
/// each query row.
pub fn infinitesimal_jackknife_variance(model: &BaggingClassifier, x: MatrixView<'_>) -> Vec<f64> {
    assert!(
        model.n_members() > 1,
        "jackknife needs at least two ensemble members"
    );
    if x.n_rows() == 0 {
        return Vec::new();
    }
    let per_member = model.member_predictions(x); // n_members × n_rows
    let counts = model.in_bag_counts(); // [member][sample]
    let b = per_member.n_rows();
    let n_train = model.n_train();
    let n_rows = x.n_rows();

    // Mean in-bag count per training sample across members.
    let mut mean_counts = vec![0.0; n_train];
    for member in counts {
        for (m, &c) in mean_counts.iter_mut().zip(member) {
            *m += c as f64;
        }
    }
    for m in mean_counts.iter_mut() {
        *m /= b as f64;
    }

    // Mean prediction per row across members.
    let mut mean_pred = vec![0.0; n_rows];
    for member in per_member.rows() {
        for (m, &p) in mean_pred.iter_mut().zip(member) {
            *m += p;
        }
    }
    for m in mean_pred.iter_mut() {
        *m /= b as f64;
    }

    // V_IJ per row.
    (0..n_rows)
        .map(|r| {
            let mut total = 0.0;
            for i in 0..n_train {
                let mut cov = 0.0;
                for (member_counts, member_preds) in counts.iter().zip(per_member.rows()) {
                    cov += (member_counts[i] as f64 - mean_counts[i])
                        * (member_preds[r] - mean_pred[r]);
                }
                cov /= b as f64;
                total += cov * cov;
            }
            total
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bagging::BaggingConfig;
    use crate::metrics::pearson;
    use paws_data::matrix::Matrix;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + 0.3 * r[1] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn variance_is_non_negative_and_finite() {
        let (rows, labels) = data(300, 1);
        let model = BaggingClassifier::fit(&BaggingConfig::trees(20, 3), rows.view(), &labels);
        let v = infinitesimal_jackknife_variance(&model, rows.view().head(60));
        assert_eq!(v.len(), 60);
        assert!(v.iter().all(|&x| x.is_finite() && x >= 0.0));
        assert!(v.iter().any(|&x| x > 0.0));
    }

    #[test]
    fn jackknife_variance_tracks_prediction_for_trees() {
        // The Fig. 7 phenomenon: the bagged-tree uncertainty surrogate is
        // strongly related to the predicted probability (near-perfect
        // correlation in the paper). We check it is clearly positively
        // correlated with the member-spread variance, and far more
        // prediction-dependent than a GP-style density signal would be.
        use crate::traits::UncertainClassifier;
        let (rows, labels) = data(400, 2);
        let model = BaggingClassifier::fit(&BaggingConfig::trees(25, 3), rows.view(), &labels);
        let (preds, spread) = model.predict_with_variance(rows.view().head(150));
        let vij = infinitesimal_jackknife_variance(&model, rows.view().head(150));
        // p(1-p)-shaped signals: compare against the interior-ness of the prediction.
        let interior: Vec<f64> = preds.iter().map(|p| p * (1.0 - p)).collect();
        let corr_spread = pearson(&vij, &spread);
        let corr_interior = pearson(&vij, &interior);
        assert!(
            corr_spread > 0.3,
            "corr with member spread too low: {corr_spread}"
        );
        assert!(
            corr_interior > 0.3,
            "corr with p(1-p) too low: {corr_interior}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two ensemble members")]
    fn single_member_rejected() {
        let (rows, labels) = data(50, 3);
        let model = BaggingClassifier::fit(&BaggingConfig::trees(1, 3), rows.view(), &labels);
        let _ = infinitesimal_jackknife_variance(&model, rows.view().head(5));
    }
}
