//! Infinitesimal-jackknife confidence intervals for bagged ensembles.
//!
//! Sec. V-C compares the GP posterior variance against the random-forest
//! confidence interval of Wager, Hastie & Efron (2014), computed with the
//! infinitesimal-jackknife estimator
//!
//! ```text
//! V_IJ(x) = Σ_i  Cov_b( N_{b,i}, t_b(x) )²
//! ```
//!
//! where `N_{b,i}` counts how often training sample `i` entered bootstrap
//! `b` and `t_b(x)` is member `b`'s prediction at `x`. With a finite number
//! of bootstraps B the plug-in estimator carries a Monte-Carlo bias of
//! roughly `n/B · v̂(x)` (v̂ the member-spread variance), which dominates at
//! the small B the paper uses for Fig. 7; Wager, Hastie & Efron's
//! bias-corrected estimator subtracts it:
//!
//! ```text
//! V_IJ-U(x) = V_IJ(x) − (n / B²) Σ_b (t_b(x) − t̄(x))²
//! ```
//!
//! [`infinitesimal_jackknife_variance`] returns the corrected estimate
//! (clamped at zero); the uncorrected plug-in value is available for
//! comparison. The paper's finding (Fig. 7) is that this surrogate is
//! almost perfectly correlated with the prediction itself and therefore
//! adds little information, unlike the GP variance.
//!
//! The covariance accumulation streams the ensemble's member-prediction
//! matrix (one batch traversal of the tree arena) against a pre-centred
//! flat in-bag count matrix — the O(n_train) inner loop walks contiguous
//! rows instead of re-reading the nested count vectors per query row.

use crate::bagging::BaggingClassifier;
use paws_data::matrix::{Matrix, MatrixView};

/// Bias-corrected infinitesimal-jackknife variance estimate (V_IJ-U of
/// Wager, Hastie & Efron 2014) of the bagged prediction at each query row,
/// clamped at zero.
pub fn infinitesimal_jackknife_variance(model: &BaggingClassifier, x: MatrixView<'_>) -> Vec<f64> {
    let (raw, bias) = jackknife_components(model, x);
    raw.into_iter()
        .zip(bias)
        .map(|(v, b)| (v - b).max(0.0))
        .collect()
}

/// The uncorrected plug-in estimator V_IJ (systematically high by ≈ n/B ·
/// member-spread at small B); exposed for bias studies and tests.
pub fn infinitesimal_jackknife_variance_uncorrected(
    model: &BaggingClassifier,
    x: MatrixView<'_>,
) -> Vec<f64> {
    jackknife_components(model, x).0
}

/// Per-row (plug-in V_IJ, Monte-Carlo bias term) for the model at `x`.
fn jackknife_components(model: &BaggingClassifier, x: MatrixView<'_>) -> (Vec<f64>, Vec<f64>) {
    assert!(
        model.n_members() > 1,
        "jackknife needs at least two ensemble members"
    );
    if x.n_rows() == 0 {
        return (Vec::new(), Vec::new());
    }
    let per_member = model.member_predictions(x); // n_members × n_rows
    let counts = model.in_bag_counts(); // [member][sample]
    let b = per_member.n_rows();
    let n_train = model.n_train();
    let n_rows = x.n_rows();

    // Centre the in-bag counts once into a flat `n_members × n_train`
    // matrix: C[m][i] = N_{m,i} − mean_m(N_{·,i}).
    let mut mean_counts = vec![0.0; n_train];
    for member in counts {
        for (m, &c) in mean_counts.iter_mut().zip(member) {
            *m += c as f64;
        }
    }
    for m in mean_counts.iter_mut() {
        *m /= b as f64;
    }
    let mut centred = Matrix::zeros(b, n_train);
    for (m, member) in counts.iter().enumerate() {
        let row = centred.row_mut(m);
        for ((slot, &c), mean) in row.iter_mut().zip(member).zip(&mean_counts) {
            *slot = c as f64 - mean;
        }
    }

    let mut raw = Vec::with_capacity(n_rows);
    let mut bias = Vec::with_capacity(n_rows);
    let mut cov = vec![0.0; n_train];
    for r in 0..n_rows {
        let mut mean_pred = 0.0;
        for m in 0..b {
            mean_pred += per_member.get(m, r);
        }
        mean_pred /= b as f64;

        // cov_i = Σ_m C[m][i] · (t_m − t̄) / B, accumulated member-major so
        // both the centred counts and the prediction matrix stream
        // contiguously; then V_IJ = Σ_i cov_i².
        cov.fill(0.0);
        let mut spread = 0.0;
        for m in 0..b {
            let d = per_member.get(m, r) - mean_pred;
            spread += d * d;
            paws_data::simd::axpy(d, centred.row(m), &mut cov);
        }
        let total: f64 = cov
            .iter()
            .map(|&c| {
                let c = c / b as f64;
                c * c
            })
            .sum();
        raw.push(total);
        bias.push(n_train as f64 / (b as f64 * b as f64) * spread);
    }
    (raw, bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bagging::BaggingConfig;
    use crate::metrics::pearson;
    use paws_data::matrix::Matrix;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + 0.3 * r[1] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn variance_is_non_negative_and_finite() {
        let (rows, labels) = data(300, 1);
        let model = BaggingClassifier::fit(&BaggingConfig::trees(20, 3), rows.view(), &labels);
        let v = infinitesimal_jackknife_variance(&model, rows.view().head(60));
        assert_eq!(v.len(), 60);
        assert!(v.iter().all(|&x| x.is_finite() && x >= 0.0));
        assert!(v.iter().any(|&x| x > 0.0));
    }

    #[test]
    fn bias_correction_shrinks_the_plug_in_estimate() {
        // V_IJ-U = max(0, V_IJ − n/B² Σ(t_b − t̄)²): never larger than the
        // plug-in value, and strictly smaller wherever members disagree.
        let (rows, labels) = data(300, 4);
        let model = BaggingClassifier::fit(&BaggingConfig::trees(15, 3), rows.view(), &labels);
        let q = rows.view().head(80);
        let corrected = infinitesimal_jackknife_variance(&model, q);
        let raw = infinitesimal_jackknife_variance_uncorrected(&model, q);
        assert_eq!(corrected.len(), raw.len());
        for (c, r) in corrected.iter().zip(&raw) {
            assert!(c <= r, "corrected {c} exceeds plug-in {r}");
        }
        assert!(
            corrected.iter().zip(&raw).any(|(c, r)| c < r),
            "correction should bite somewhere at B=15"
        );
    }

    #[test]
    fn correction_fades_as_bootstraps_grow() {
        // The Monte-Carlo bias term scales with n/B: averaged over query
        // rows, the relative gap between plug-in and corrected estimates
        // must shrink when B quadruples.
        let (rows, labels) = data(250, 5);
        let rel_gap = |n_estimators: usize| {
            let model = BaggingClassifier::fit(
                &BaggingConfig::trees(n_estimators, 3),
                rows.view(),
                &labels,
            );
            let q = rows.view().head(60);
            let raw = infinitesimal_jackknife_variance_uncorrected(&model, q);
            let corrected = infinitesimal_jackknife_variance(&model, q);
            let raw_sum: f64 = raw.iter().sum();
            let corr_sum: f64 = corrected.iter().sum();
            (raw_sum - corr_sum) / raw_sum.max(1e-12)
        };
        assert!(rel_gap(10) > rel_gap(40));
    }

    #[test]
    fn jackknife_variance_tracks_prediction_for_trees() {
        // The Fig. 7 phenomenon: the bagged-tree uncertainty surrogate is
        // strongly related to the predicted probability (near-perfect
        // correlation in the paper). We check it is clearly positively
        // correlated with the member-spread variance, and far more
        // prediction-dependent than a GP-style density signal would be.
        use crate::traits::UncertainClassifier;
        let (rows, labels) = data(400, 2);
        let model = BaggingClassifier::fit(&BaggingConfig::trees(25, 3), rows.view(), &labels);
        let (preds, spread) = model.predict_with_variance(rows.view().head(150));
        let vij = infinitesimal_jackknife_variance(&model, rows.view().head(150));
        // p(1-p)-shaped signals: compare against the interior-ness of the prediction.
        let interior: Vec<f64> = preds.iter().map(|p| p * (1.0 - p)).collect();
        let corr_spread = pearson(&vij, &spread);
        let corr_interior = pearson(&vij, &interior);
        assert!(
            corr_spread > 0.3,
            "corr with member spread too low: {corr_spread}"
        );
        assert!(
            corr_interior > 0.3,
            "corr with p(1-p) too low: {corr_interior}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two ensemble members")]
    fn single_member_rejected() {
        let (rows, labels) = data(50, 3);
        let model = BaggingClassifier::fit(&BaggingConfig::trees(1, 3), rows.view(), &labels);
        let _ = infinitesimal_jackknife_variance(&model, rows.view().head(5));
    }
}
