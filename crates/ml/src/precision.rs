//! The prediction-plane precision switch.
//!
//! Training is always performed in `f64` — thresholds, leaf probabilities,
//! CV weights and the golden parity surfaces are all double-precision and
//! unaffected by this switch. [`Precision`] only selects which plane serves
//! **predictions**: the default f64 arena ([`crate::forest::Forest`], bit-
//! identical to the per-row reference), or the opt-in f32 plane
//! ([`crate::forest32::Forest32`] + `f32x8` reductions), which halves the
//! node/feature bandwidth of park-wide surfaces at the cost of a bounded
//! single-precision divergence (documented and pinned in
//! `tests/matrix_parity.rs`).

use serde::{Deserialize, Serialize};

/// Which numeric plane serves batch predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Double precision (default): bit-identical to the reference path.
    F64,
    /// Single precision: ~2× lower prediction bandwidth; divergence from
    /// the f64 goldens is ≤ 1e-5 max abs on the parity scenarios, with
    /// rare half-ulp leaf flips possible at park scale (see
    /// [`crate::forest32`] for the full contract).
    F32,
}

// Manual impl: the vendored serde derive's token walker does not accept a
// `#[default]` attribute on enum variants, which `#[derive(Default)]` needs.
#[allow(clippy::derivable_impls)]
impl Default for Precision {
    fn default() -> Self {
        Precision::F64
    }
}
