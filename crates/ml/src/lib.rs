//! # paws-ml
//!
//! From-scratch machine-learning substrate for the PAWS reproduction.
//!
//! The original pipeline uses scikit-learn and imbalanced-learn; the Rust
//! ecosystem has no drop-in equivalent, so this crate implements the pieces
//! the paper needs:
//!
//! * [`tree`] — CART decision trees (DTB weak learners).
//! * [`forest`] — arena-backed tree ensembles with level-synchronous batch
//!   traversal (one contiguous node slab per ensemble).
//! * [`forest32`] / [`precision`] — the opt-in f32 prediction plane: an
//!   8-byte-node arena narrowed from the trained f64 forest, selected per
//!   model with [`precision::Precision::F32`] (training stays f64).
//! * [`qs`] / [`layout`] — QuickScorer-style bitvector scoring over either
//!   plane, selected per model with [`layout::TraversalLayout::BitVector`]
//!   (bit-identical to the arena kernels; layout only, never values).
//! * [`svm`] — linear SVM with Platt scaling (SVB weak learners).
//! * [`gp`] — Gaussian-process classifier with predictive variance (GPB).
//! * [`bagging`] — plain and balanced (undersampled) bagging ensembles.
//! * [`jackknife`] — infinitesimal-jackknife variance for bagged trees (Fig. 7).
//! * [`metrics`] — ROC AUC, log loss, Pearson correlation.
//! * [`cv`] — (stratified) k-fold splitters for the iWare-E weight fit.
//! * [`linalg`] — the small dense Cholesky kernel behind the GP.
pub mod bagging;
pub mod cv;
pub mod forest;
pub mod forest32;
pub mod gp;
pub mod jackknife;
pub mod layout;
pub mod linalg;
pub mod metrics;
pub mod precision;
pub mod qs;
pub mod snapshot;
pub mod svm;
pub mod traits;
pub mod tree;

pub use bagging::{BaggingClassifier, BaggingConfig, BaseLearnerConfig, BaseModel};
pub use forest::{Forest, RawNode};
pub use forest32::{Forest32, NarrowError};
pub use gp::{GaussianProcess, GpConfig};
pub use layout::TraversalLayout;
pub use precision::Precision;
pub use qs::{QuickScorer, QuickScorer32};
pub use snapshot::{PayloadKind, SnapshotError, SnapshotReader, SnapshotWriter};
pub use svm::{LinearSvm, SvmConfig};
pub use traits::{Classifier, QueryError, Trainable, UncertainClassifier};
pub use tree::{DecisionTree, TreeConfig};
