//! Arena-backed ensembles of decision trees with interleaved batch
//! traversal.
//!
//! The planning loop of Sec. VI evaluates the g_v(c)/ν_v(c) response
//! surfaces over every park cell × effort level, and after the flat-matrix
//! migration that cost is pure decision-tree traversal. A bagging ensemble
//! (and, one level up, the whole iWare-E learner stack) used to keep each
//! tree's nodes in its own `Vec`, so a park-wide prediction chased pointers
//! across I×B scattered heap allocations, one row at a time.
//!
//! [`Forest`] fixes both halves of that:
//!
//! * **Arena layout** — the nodes of every tree live in one contiguous
//!   slab of packed 16-byte [`ArenaNode`]s with per-tree root offsets.
//!   Trees are re-laid out in breadth-first order when they are spliced
//!   in, which places each split's two children adjacently — so only the
//!   left child index is stored (`right = left + 1`), and a traversal
//!   step issues exactly two node loads. Whole forests can be spliced
//!   into a larger arena ([`Forest::push_forest`]), which is how the
//!   iWare-E stack builds its single learner-wide slab.
//! * **Interleaved batch traversal** — [`Forest::predict_proba_batch`]
//!   advances rows through each tree in register-resident groups of
//!   [`INTERLEAVE`] cursors: every group member is an independent
//!   root-to-leaf dependency chain, so the CPU overlaps their node loads,
//!   while the group's feature rows stay hot in L1. The per-level advance
//!   is branch-free — a leaf stores a `+∞` threshold and self-referencing
//!   child, so finished rows spin in place with no leaf test in the loop
//!   (the batch entry points assert the query matrix finite, which both
//!   guarantees the self-loop and keeps the unchecked arena indexing
//!   sound). Blocks of [`ROW_BLOCK`] rows are the unit of parallel
//!   fan-out over the work-stealing pool, and
//!   [`Forest::predict_proba_block`] exposes single-block traversal so
//!   consumers (the iWare-E stack) can fuse their per-learner reductions
//!   while a block is still cache-resident.
//!
//! Traversal performs exactly the same `feature <= threshold` comparisons
//! as the per-row walk, so predictions are bit-identical to evaluating each
//! [`DecisionTree`] on its own.

use crate::tree::DecisionTree;
use paws_data::matrix::{Matrix, MatrixView};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Compact 16-byte arena node. The BFS splice pushes a split's two
/// children consecutively, so the right child is always `left + 1` and
/// only `left` is stored — one fewer load per traversal step and a third
/// less arena memory than the fitted tree's 24-byte nodes.
///
/// Leaves are encoded so the traversal step needs **no leaf test at
/// all**: a leaf's threshold is `+∞` and its `left` is its own index, so
/// any finite row value compares `<=` and the row self-loops in place;
/// its probability lives in the forest's side table (`leaf_values`),
/// touched once per row at output time rather than once per level.
/// Feature indices of real splits are always in range, and a leaf's
/// `feature` is 0, so the per-step feature clamp disappears too.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct ArenaNode {
    /// Split threshold for interior nodes; `+∞` for leaves.
    pub(crate) value: f64,
    /// Packed `left_child | feature << 32` — one 8-byte load yields both
    /// the topology and the feature index, so a traversal step issues
    /// exactly two loads (node word + threshold) plus the row value.
    /// Right child is `left + 1`; a leaf's `left` is its own index and its
    /// `feature` is 0 (harmlessly compared against the `+∞` threshold).
    packed: u64,
}

impl ArenaNode {
    #[inline]
    fn new(value: f64, left: u32, feature: u32) -> Self {
        Self {
            value,
            packed: u64::from(left) | (u64::from(feature) << 32),
        }
    }

    #[inline(always)]
    pub(crate) fn left(&self) -> u32 {
        self.packed as u32
    }

    #[inline(always)]
    pub(crate) fn feature(&self) -> u32 {
        (self.packed >> 32) as u32
    }

    /// Leaves self-reference; interior BFS children always come after
    /// their parent, so `left == own index` identifies a leaf.
    #[inline]
    pub(crate) fn is_leaf(&self, own: u32) -> bool {
        self.left() == own
    }

    /// Raw `(value_bits, packed)` words — the snapshot wire image of a
    /// node.
    #[inline]
    pub(crate) fn to_bits(self) -> (u64, u64) {
        (self.value.to_bits(), self.packed)
    }

    /// Rebuild a node from its wire image. Only the snapshot decoder may
    /// call this, and only after (or on the way to) full arena validation.
    #[inline]
    pub(crate) fn from_bits(value_bits: u64, packed: u64) -> Self {
        Self {
            value: f64::from_bits(value_bits),
            packed,
        }
    }

    /// Index of the node this row moves to: `left` when
    /// `row-value <= threshold` (always, for a leaf's `+∞` threshold and
    /// finite rows), `left + 1` otherwise. Exactly the comparison
    /// `if xv <= threshold { left } else { right }` of the fitted tree.
    // `!(xv <= v)` (not `xv > v`) is deliberate: a NaN query value must
    // fall right, matching the fitted tree's `if xv <= v {left} else
    // {right}` exactly.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline(always)]
    fn advance(&self, xv: f64) -> u32 {
        self.left() + u32::from(!(xv <= self.value))
    }
}

/// One node of a synthetic tree for [`Forest::push_raw_tree`]: either a
/// split (`x[feature] <= threshold` → `left`, else `right`; indices into
/// the same node slice) or a leaf carrying its prediction value.
#[derive(Debug, Clone, Copy)]
pub enum RawNode {
    /// Interior split node.
    Split {
        /// Feature column compared against the threshold.
        feature: u32,
        /// Split threshold (`<=` goes left). Any non-NaN value.
        threshold: f64,
        /// Index of the left child in the node slice.
        left: u32,
        /// Index of the right child in the node slice.
        right: u32,
    },
    /// Leaf node.
    Leaf {
        /// Prediction emitted when a row exits here.
        value: f64,
    },
}

/// Rows are traversed in blocks of this many: a block's feature rows stay
/// resident in L1 while every tree streams over them, and blocks are the
/// unit of parallel fan-out across the work-stealing pool.
pub(crate) const ROW_BLOCK: usize = 256;

/// Rows advance through a tree in register-resident groups of this many
/// interleaved root-to-leaf walks (see [`Forest::traverse_block`]).
pub(crate) const INTERLEAVE: usize = 16;

/// An arena of decision trees: one contiguous node slab, per-tree roots and
/// depths. Serialized/deserialized as a single unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Forest {
    /// All nodes of all trees, each tree contiguous in BFS (level) order.
    nodes: Vec<ArenaNode>,
    /// Leaf probabilities, parallel to `nodes` (0.0 at interior nodes);
    /// read once per (row, tree) when a traversal finishes.
    leaf_values: Vec<f64>,
    /// Arena index of each tree's root.
    roots: Vec<u32>,
    /// Depth (edges on the longest root-to-leaf path) of each tree; the
    /// number of level-synchronous steps needed to reach every leaf.
    depths: Vec<u32>,
    n_features: usize,
}

impl Forest {
    /// Empty arena for trees over `n_features`-wide rows.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "forest needs at least one feature");
        Self {
            nodes: Vec::new(),
            leaf_values: Vec::new(),
            roots: Vec::new(),
            depths: Vec::new(),
            n_features,
        }
    }

    /// Build an arena from fitted trees (splicing each in BFS order).
    pub fn from_trees<'a, I>(n_features: usize, trees: I) -> Self
    where
        I: IntoIterator<Item = &'a DecisionTree>,
    {
        let mut forest = Self::new(n_features);
        for tree in trees {
            forest.push_tree(tree);
        }
        forest
    }

    /// Number of trees in the arena.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total number of nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Feature width the trees were fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Depth of tree `t` (edges on its longest root-to-leaf path).
    pub fn tree_depth(&self, t: usize) -> usize {
        self.depths[t] as usize
    }

    /// Splice a fitted tree's nodes into the arena in breadth-first order,
    /// remapping child indices; leaves become self-referencing so batch
    /// traversal can advance without a leaf branch.
    pub fn push_tree(&mut self, tree: &DecisionTree) {
        assert_eq!(
            tree.n_features(),
            self.n_features,
            "feature width mismatch between tree and forest"
        );
        let src = tree.nodes();
        assert!(!src.is_empty(), "cannot splice an unfitted tree");
        let raw: Vec<RawNode> = src
            .iter()
            .map(|node| {
                if node.is_leaf() {
                    RawNode::Leaf { value: node.value }
                } else {
                    debug_assert!(
                        node.value.is_finite(),
                        "split thresholds are finite by training-data validation"
                    );
                    RawNode::Split {
                        feature: node.feature as u32,
                        threshold: node.value,
                        left: node.left,
                        right: node.right,
                    }
                }
            })
            .collect();
        self.push_raw_tree(&raw);
    }

    /// Splice a synthetic tree described node by node (node 0 is the
    /// root) — the construction surface the property suites and benches
    /// use to build forests with exact shapes, tied thresholds, and
    /// extreme (`±∞`, denormal-adjacent) split values that a fitted CART
    /// tree would never produce. Fitted trees go through the same path
    /// via [`Forest::push_tree`].
    ///
    /// # Panics
    /// Panics when the nodes do not describe a proper binary tree rooted
    /// at node 0 (a child index out of range or referenced twice, or
    /// unreachable nodes), a split feature is out of range, or a split
    /// threshold is NaN (`±∞` is allowed: the comparison semantics of the
    /// traversal kernels handle it exactly).
    pub fn push_raw_tree(&mut self, src: &[RawNode]) {
        assert!(!src.is_empty(), "cannot splice an empty tree");
        let base = self.nodes.len() as u32;

        // BFS pass: source index and level of every node in visit order,
        // doubling as tree-shape validation (each node reached exactly
        // once from the root).
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(src.len());
        let mut new_index: Vec<u32> = vec![u32::MAX; src.len()];
        order.push((0, 0));
        new_index[0] = base;
        let mut head = 0;
        let mut depth = 0u32;
        while head < order.len() {
            let (si, level) = order[head];
            head += 1;
            depth = depth.max(level);
            if let RawNode::Split {
                feature,
                threshold,
                left,
                right,
            } = src[si as usize]
            {
                assert!(
                    (feature as usize) < self.n_features,
                    "split feature out of range"
                );
                assert!(!threshold.is_nan(), "split threshold must not be NaN");
                for child in [left, right] {
                    assert!(
                        (child as usize) < src.len(),
                        "child index out of range in raw tree"
                    );
                    assert!(
                        new_index[child as usize] == u32::MAX && child != 0,
                        "raw tree node referenced twice (not a tree)"
                    );
                    new_index[child as usize] = base + order.len() as u32;
                    order.push((child, level + 1));
                }
            }
        }
        assert_eq!(order.len(), src.len(), "raw tree has unreachable nodes");

        self.nodes.reserve(src.len());
        self.leaf_values.reserve(src.len());
        for &(si, _) in &order {
            match src[si as usize] {
                RawNode::Leaf { value } => {
                    self.nodes
                        .push(ArenaNode::new(f64::INFINITY, new_index[si as usize], 0));
                    self.leaf_values.push(value);
                }
                RawNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // The BFS pass pushed this split's children back to
                    // back, so the right child sits directly after the
                    // left one — the invariant ArenaNode::advance relies
                    // on.
                    debug_assert_eq!(
                        new_index[right as usize],
                        new_index[left as usize] + 1,
                        "BFS splice must place siblings adjacently"
                    );
                    self.nodes
                        .push(ArenaNode::new(threshold, new_index[left as usize], feature));
                    self.leaf_values.push(0.0);
                }
            }
        }
        self.roots.push(base);
        self.depths.push(depth);
    }

    /// Splice every tree of another forest into this arena (the iWare-E
    /// stack uses this to fuse its learners' forests into one slab).
    pub fn push_forest(&mut self, other: &Forest) {
        assert_eq!(
            other.n_features, self.n_features,
            "feature width mismatch between forests"
        );
        let base = self.nodes.len() as u32;
        self.nodes.extend(
            other
                .nodes
                .iter()
                .map(|n| ArenaNode::new(n.value, n.left() + base, n.feature())),
        );
        self.leaf_values.extend_from_slice(&other.leaf_values);
        self.roots.extend(other.roots.iter().map(|&r| r + base));
        self.depths.extend_from_slice(&other.depths);
    }

    /// Per-tree predictions for a feature batch as a flat
    /// `n_trees × n_rows` matrix (row `t` holds tree `t`'s probabilities),
    /// computed level-synchronously.
    ///
    /// # Panics
    /// Panics on an empty batch (an `n_trees × 0` matrix is not
    /// representable) or a feature-width mismatch; ensemble entry points
    /// guard the empty case.
    pub fn predict_proba_batch(&self, x: MatrixView<'_>) -> Matrix {
        assert_eq!(x.n_cols(), self.n_features, "feature width mismatch");
        assert!(!self.roots.is_empty(), "empty forest");
        assert!(!x.is_empty(), "empty prediction batch");
        // Finite inputs are what lets the branch-free kernel drop the
        // per-step leaf test (a leaf's `+∞` threshold captures every
        // finite row), and the guard keeps the unchecked arena indexing
        // sound for hostile inputs.
        assert!(
            paws_data::simd::all_finite(x.as_slice()),
            "prediction features must be finite"
        );
        let n_rows = x.n_rows();
        let n_trees = self.roots.len();
        let mut out = Matrix::zeros(n_trees, n_rows);

        if n_rows <= ROW_BLOCK || rayon::current_num_threads() <= 1 {
            // Single-threaded: traverse block by block straight into the
            // output matrix (stride = n_rows), no intermediate slabs.
            for start in (0..n_rows).step_by(ROW_BLOCK) {
                let len = ROW_BLOCK.min(n_rows - start);
                self.traverse_block(x, start, len, out.as_mut_slice(), n_rows, start);
            }
            return out;
        }

        // Multi-block batches fan the independent ROW_BLOCK chunks over the
        // work-stealing pool; each block produces its own tree-major slab
        // which is scattered back in order, so results are identical to the
        // sequential walk.
        let starts: Vec<usize> = (0..n_rows).step_by(ROW_BLOCK).collect();
        let blocks: Vec<Vec<f64>> = starts
            .par_iter()
            .map(|&start| {
                let len = ROW_BLOCK.min(n_rows - start);
                let mut block = vec![0.0; n_trees * len];
                self.traverse_block(x, start, len, &mut block, len, 0);
                block
            })
            .collect();
        for (&start, block) in starts.iter().zip(&blocks) {
            let len = ROW_BLOCK.min(n_rows - start);
            for (t, seg) in block.chunks_exact(len).enumerate() {
                out.row_mut(t)[start..start + len].copy_from_slice(seg);
            }
        }
        out
    }

    /// Advance rows `start..start + len` of `x` through every tree,
    /// level-synchronously, writing tree-major results into `out_block`
    /// (`n_trees × len`). The inner advance performs exactly the same
    /// `feature <= threshold` comparisons as [`Forest::predict_row`].
    ///
    /// Rows advance in register-resident groups of [`INTERLEAVE`]: the
    /// group's node cursors live in a fixed-size array (no frontier
    /// load/store per step, unlike a block-wide frontier in memory), while
    /// the group still gives the CPU [`INTERLEAVE`] independent root-to-leaf chains
    /// to overlap. Leaves self-reference, so the per-level advance stays
    /// branch-free: a row that finishes early spins in its register until
    /// the group completes the tree's depth.
    /// Results for tree `t`, row `j` land at
    /// `out[t * out_stride + out_offset + j]`, so callers can aim either at
    /// a per-block slab (`stride = len`) or straight at the strided rows of
    /// the full output matrix (`stride = n_rows`).
    fn traverse_block(
        &self,
        x: MatrixView<'_>,
        start: usize,
        len: usize,
        out: &mut [f64],
        out_stride: usize,
        out_offset: usize,
    ) {
        debug_assert!(out.len() >= (self.roots.len() - 1) * out_stride + out_offset + len);
        let n_cols = x.n_cols();
        // The block's feature rows as one contiguous window.
        let rows = &x.as_slice()[start * n_cols..(start + len) * n_cols];
        let nodes = self.nodes.as_slice();
        let leaf_values = self.leaf_values.as_slice();
        for (t, (&root, &depth)) in self.roots.iter().zip(&self.depths).enumerate() {
            let out_t = &mut out[t * out_stride + out_offset..t * out_stride + out_offset + len];
            let mut j = 0usize;
            // Full groups: the lane loop has a constant bound so the
            // INTERLEAVE cursors unroll into registers.
            while j + INTERLEAVE <= len {
                let base = j * n_cols;
                let mut slots = [root; INTERLEAVE];
                for _ in 0..depth {
                    for (lane, slot) in slots.iter_mut().enumerate() {
                        // SAFETY: every cursor starts at a tree root and is
                        // only ever replaced by `node.advance(finite xv)`;
                        // a split's `left`/`left + 1` are its two children
                        // (remapped to valid arena indices at splice time)
                        // and a leaf's `+∞` threshold sends every finite
                        // row back to the leaf itself — the batch entry
                        // point asserts the whole query matrix finite.
                        // Split features are `< n_features` (leaves use 0),
                        // so `base + lane·n_cols + f < len·n_cols` because
                        // `j + lane ≤ len − 1`.
                        let node = unsafe { *nodes.get_unchecked(*slot as usize) };
                        let f = node.feature() as usize;
                        let xv = unsafe { *rows.get_unchecked(base + lane * n_cols + f) };
                        *slot = node.advance(xv);
                    }
                }
                for (o, &slot) in out_t[j..j + INTERLEAVE].iter_mut().zip(&slots) {
                    // SAFETY: as above — `slot` is a valid arena index.
                    *o = unsafe { *leaf_values.get_unchecked(slot as usize) };
                }
                j += INTERLEAVE;
            }
            // Remainder rows (< INTERLEAVE): plain per-row walks.
            for (o, jr) in out_t[j..].iter_mut().zip(j..len) {
                let row = &rows[jr * n_cols..(jr + 1) * n_cols];
                let mut idx = root;
                let mut node = nodes[idx as usize];
                while !node.is_leaf(idx) {
                    idx = node.advance(row[node.feature() as usize]);
                    node = nodes[idx as usize];
                }
                *o = leaf_values[idx as usize];
            }
        }
    }

    /// Per-tree predictions for rows `start..start + len` of `x`, written
    /// tree-major into `out_block` (`n_trees × len`, tree `t` at
    /// `out_block[t·len..(t+1)·len]`). This is the cache-blocked building
    /// block behind [`Forest::predict_proba_batch`]: consumers that reduce
    /// per-tree predictions (the iWare-E learner stack) call it per block
    /// and fold the reduction while the block is still cache-resident,
    /// instead of materialising the full `n_trees × n_rows` table.
    ///
    /// # Panics
    /// Panics on shape mismatches or a non-finite feature window.
    pub fn predict_proba_block(
        &self,
        x: MatrixView<'_>,
        start: usize,
        len: usize,
        out_block: &mut [f64],
    ) {
        assert_eq!(x.n_cols(), self.n_features, "feature width mismatch");
        assert!(!self.roots.is_empty(), "empty forest");
        assert!(len > 0 && start + len <= x.n_rows(), "block out of range");
        assert_eq!(
            out_block.len(),
            self.roots.len() * len,
            "output block shape mismatch"
        );
        let window = &x.as_slice()[start * x.n_cols()..(start + len) * x.n_cols()];
        assert!(
            paws_data::simd::all_finite(window),
            "prediction features must be finite"
        );
        self.traverse_block(x, start, len, out_block, len, 0);
    }

    /// The raw arena parts `(nodes, leaf_values, roots, depths)` — the
    /// narrowing input of [`crate::forest32::Forest32::from_forest`].
    pub(crate) fn arena_parts(&self) -> (&[ArenaNode], &[f64], &[u32], &[u32]) {
        (&self.nodes, &self.leaf_values, &self.roots, &self.depths)
    }

    /// Assemble a forest from parts the snapshot decoder has **already
    /// validated** against every splice invariant (see
    /// [`crate::snapshot`]). Not a public constructor: unvalidated parts
    /// here would unsound the unchecked traversal kernels.
    pub(crate) fn from_validated_parts(
        nodes: Vec<ArenaNode>,
        leaf_values: Vec<f64>,
        roots: Vec<u32>,
        depths: Vec<u32>,
        n_features: usize,
    ) -> Self {
        debug_assert_eq!(nodes.len(), leaf_values.len());
        debug_assert_eq!(roots.len(), depths.len());
        Self {
            nodes,
            leaf_values,
            roots,
            depths,
            n_features,
        }
    }

    /// Number of edges tree `t` traverses for one row (diagnostics).
    pub fn row_depth(&self, t: usize, row: &[f64]) -> usize {
        let mut idx = self.roots[t];
        let mut node = self.nodes[idx as usize];
        let mut d = 0;
        while !node.is_leaf(idx) {
            idx = node.advance(row[node.feature() as usize]);
            node = self.nodes[idx as usize];
            d += 1;
        }
        d
    }

    /// Prediction of tree `t` for one row (classic root-to-leaf walk); the
    /// reference the batch kernel must agree with bit-for-bit.
    pub fn predict_row(&self, t: usize, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut idx = self.roots[t];
        let mut node = self.nodes[idx as usize];
        while !node.is_leaf(idx) {
            idx = node.advance(row[node.feature() as usize]);
            node = self.nodes[idx as usize];
        }
        self.leaf_values[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Classifier;
    use crate::tree::TreeConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + r[1] > 1.0 { 1.0 } else { 0.0 })
            .collect();
        (Matrix::from_rows(&rows), labels)
    }

    fn fitted_trees(n_trees: usize) -> (Matrix, Vec<DecisionTree>) {
        let (x, labels) = data(300, 3);
        let trees: Vec<DecisionTree> = (0..n_trees)
            .map(|s| {
                DecisionTree::fit(
                    &TreeConfig {
                        max_features: Some(2),
                        ..TreeConfig::default()
                    },
                    x.view(),
                    &labels,
                    s as u64,
                )
            })
            .collect();
        (x, trees)
    }

    #[test]
    fn arena_holds_every_tree_contiguously() {
        let (_, trees) = fitted_trees(6);
        let forest = Forest::from_trees(3, trees.iter());
        assert_eq!(forest.n_trees(), 6);
        assert_eq!(
            forest.n_nodes(),
            trees.iter().map(|t| t.n_nodes()).sum::<usize>()
        );
        for (t, tree) in trees.iter().enumerate() {
            assert_eq!(forest.tree_depth(t), tree.depth());
        }
    }

    #[test]
    fn batch_traversal_is_bit_identical_to_per_tree_prediction() {
        let (x, trees) = fitted_trees(5);
        let forest = Forest::from_trees(3, trees.iter());
        // A batch spanning several ROW_BLOCK chunks.
        let batch = forest.predict_proba_batch(x.view());
        assert_eq!(batch.n_rows(), 5);
        assert_eq!(batch.n_cols(), x.n_rows());
        for (t, tree) in trees.iter().enumerate() {
            let reference = tree.predict_proba(x.view());
            assert_eq!(batch.row(t), reference.as_slice(), "tree {t}");
        }
    }

    #[test]
    fn per_row_arena_walk_matches_the_source_trees() {
        let (x, trees) = fitted_trees(4);
        let forest = Forest::from_trees(3, trees.iter());
        for (t, tree) in trees.iter().enumerate() {
            for row in x.view().head(50).rows() {
                assert_eq!(forest.predict_row(t, row), tree.predict_proba_one(row));
            }
        }
    }

    #[test]
    fn spliced_forests_predict_like_their_parts() {
        let (x, trees) = fitted_trees(6);
        let a = Forest::from_trees(3, trees[..2].iter());
        let b = Forest::from_trees(3, trees[2..].iter());
        let mut stacked = Forest::new(3);
        stacked.push_forest(&a);
        stacked.push_forest(&b);
        assert_eq!(stacked.n_trees(), 6);
        let whole = Forest::from_trees(3, trees.iter());
        let q = x.view().head(40);
        assert_eq!(
            stacked.predict_proba_batch(q).as_slice(),
            whole.predict_proba_batch(q).as_slice()
        );
    }

    #[test]
    fn serializes_as_one_unit() {
        let (_, trees) = fitted_trees(3);
        let forest = Forest::from_trees(3, trees.iter());
        let json = serde_json::to_string(&forest).expect("forest serializes");
        // One object, one node slab covering every tree.
        assert_eq!(json.matches("\"nodes\"").count(), 1);
        assert_eq!(json.matches("\"roots\"").count(), 1);
        assert!(json.contains("\"depths\""));
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn rejects_wrong_width_trees() {
        let (_, trees) = fitted_trees(1);
        let mut forest = Forest::new(7);
        forest.push_tree(&trees[0]);
    }

    #[test]
    #[should_panic(expected = "empty prediction batch")]
    fn rejects_empty_batches() {
        let (x, trees) = fitted_trees(1);
        let forest = Forest::from_trees(3, trees.iter());
        let empty = x.gather(&[]);
        let _ = forest.predict_proba_batch(empty.view());
    }
}
