//! Arena-backed ensembles of decision trees with level-synchronous batch
//! traversal.
//!
//! The planning loop of Sec. VI evaluates the g_v(c)/ν_v(c) response
//! surfaces over every park cell × effort level, and after the flat-matrix
//! migration that cost is pure decision-tree traversal. A bagging ensemble
//! (and, one level up, the whole iWare-E learner stack) used to keep each
//! tree's nodes in its own `Vec`, so a park-wide prediction chased pointers
//! across I×B scattered heap allocations, one row at a time.
//!
//! [`Forest`] fixes both halves of that:
//!
//! * **Arena layout** — the nodes of every tree live in one contiguous
//!   `Vec<Node>` slab with per-tree root offsets. Trees are re-laid out in
//!   breadth-first order when they are spliced in, so the nodes a traversal
//!   frontier touches at one level sit next to each other in memory. Whole
//!   forests can be spliced into a larger arena ([`Forest::push_forest`]),
//!   which is how the iWare-E stack builds its single learner-wide slab.
//! * **Level-synchronous batch traversal** —
//!   [`Forest::predict_proba_batch`] advances a block of rows through one
//!   tree level at a time (a frontier of node indices per row, iterating
//!   trees × levels instead of rows × nodes). The per-row walk is a serial
//!   dependency chain — each node load waits on the previous compare — but
//!   a block of rows gives the CPU many independent chains to overlap, and
//!   each node cache line is reused across the whole block. Leaves are
//!   stored self-referencing (`left == right == self`), which makes the
//!   inner advance branch-free: rows that reach a leaf early simply spin in
//!   place until the deepest row catches up.
//!
//! Traversal performs exactly the same `feature <= threshold` comparisons
//! as the per-row walk, so predictions are bit-identical to evaluating each
//! [`DecisionTree`] on its own.

use crate::tree::{DecisionTree, Node};
use paws_data::matrix::{Matrix, MatrixView};
use serde::{Deserialize, Serialize};

/// Rows are traversed in blocks of this many: the frontier (one `u32` per
/// row) stays resident in L1 while every tree level streams over it.
const ROW_BLOCK: usize = 256;

/// An arena of decision trees: one contiguous node slab, per-tree roots and
/// depths. Serialized/deserialized as a single unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Forest {
    /// All nodes of all trees, each tree contiguous in BFS (level) order.
    nodes: Vec<Node>,
    /// Arena index of each tree's root.
    roots: Vec<u32>,
    /// Depth (edges on the longest root-to-leaf path) of each tree; the
    /// number of level-synchronous steps needed to reach every leaf.
    depths: Vec<u32>,
    n_features: usize,
}

impl Forest {
    /// Empty arena for trees over `n_features`-wide rows.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "forest needs at least one feature");
        Self {
            nodes: Vec::new(),
            roots: Vec::new(),
            depths: Vec::new(),
            n_features,
        }
    }

    /// Build an arena from fitted trees (splicing each in BFS order).
    pub fn from_trees<'a, I>(n_features: usize, trees: I) -> Self
    where
        I: IntoIterator<Item = &'a DecisionTree>,
    {
        let mut forest = Self::new(n_features);
        for tree in trees {
            forest.push_tree(tree);
        }
        forest
    }

    /// Number of trees in the arena.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total number of nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Feature width the trees were fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Depth of tree `t` (edges on its longest root-to-leaf path).
    pub fn tree_depth(&self, t: usize) -> usize {
        self.depths[t] as usize
    }

    /// Splice a fitted tree's nodes into the arena in breadth-first order,
    /// remapping child indices; leaves become self-referencing so batch
    /// traversal can advance without a leaf branch.
    pub fn push_tree(&mut self, tree: &DecisionTree) {
        assert_eq!(
            tree.n_features(),
            self.n_features,
            "feature width mismatch between tree and forest"
        );
        let src = tree.nodes();
        assert!(!src.is_empty(), "cannot splice an unfitted tree");
        let base = self.nodes.len() as u32;

        // BFS pass: source index and level of every node in visit order.
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(src.len());
        let mut new_index: Vec<u32> = vec![0; src.len()];
        order.push((0, 0));
        new_index[0] = base;
        let mut head = 0;
        let mut depth = 0u32;
        while head < order.len() {
            let (si, level) = order[head];
            head += 1;
            depth = depth.max(level);
            let node = &src[si as usize];
            if !node.is_leaf() {
                for child in [node.left, node.right] {
                    new_index[child as usize] = base + order.len() as u32;
                    order.push((child, level + 1));
                }
            }
        }

        self.nodes.reserve(src.len());
        for &(si, _) in &order {
            let node = &src[si as usize];
            if node.is_leaf() {
                let own = new_index[si as usize];
                self.nodes.push(Node {
                    feature: -1,
                    left: own,
                    right: own,
                    value: node.value,
                });
            } else {
                self.nodes.push(Node {
                    feature: node.feature,
                    left: new_index[node.left as usize],
                    right: new_index[node.right as usize],
                    value: node.value,
                });
            }
        }
        self.roots.push(base);
        self.depths.push(depth);
    }

    /// Splice every tree of another forest into this arena (the iWare-E
    /// stack uses this to fuse its learners' forests into one slab).
    pub fn push_forest(&mut self, other: &Forest) {
        assert_eq!(
            other.n_features, self.n_features,
            "feature width mismatch between forests"
        );
        let base = self.nodes.len() as u32;
        self.nodes.extend(other.nodes.iter().map(|n| Node {
            feature: n.feature,
            left: n.left + base,
            right: n.right + base,
            value: n.value,
        }));
        self.roots.extend(other.roots.iter().map(|&r| r + base));
        self.depths.extend_from_slice(&other.depths);
    }

    /// Per-tree predictions for a feature batch as a flat
    /// `n_trees × n_rows` matrix (row `t` holds tree `t`'s probabilities),
    /// computed level-synchronously.
    ///
    /// # Panics
    /// Panics on an empty batch (an `n_trees × 0` matrix is not
    /// representable) or a feature-width mismatch; ensemble entry points
    /// guard the empty case.
    pub fn predict_proba_batch(&self, x: MatrixView<'_>) -> Matrix {
        assert_eq!(x.n_cols(), self.n_features, "feature width mismatch");
        assert!(!self.roots.is_empty(), "empty forest");
        assert!(!x.is_empty(), "empty prediction batch");
        let n_rows = x.n_rows();
        let mut out = Matrix::zeros(self.roots.len(), n_rows);
        let mut frontier = [0u32; ROW_BLOCK];
        for start in (0..n_rows).step_by(ROW_BLOCK) {
            let len = ROW_BLOCK.min(n_rows - start);
            let frontier = &mut frontier[..len];
            for (t, (&root, &depth)) in self.roots.iter().zip(&self.depths).enumerate() {
                frontier.fill(root);
                for _ in 0..depth {
                    for (j, slot) in frontier.iter_mut().enumerate() {
                        let node = self.nodes[*slot as usize];
                        // Leaves store feature -1 and point to themselves,
                        // so clamping to feature 0 keeps the advance
                        // branch-free: whichever way the compare goes, a
                        // leaf row stays where it is.
                        let f = node.feature.max(0) as usize;
                        *slot = if x.get(start + j, f) <= node.value {
                            node.left
                        } else {
                            node.right
                        };
                    }
                }
                let out_row = out.row_mut(t);
                for (j, &slot) in frontier.iter().enumerate() {
                    out_row[start + j] = self.nodes[slot as usize].value;
                }
            }
        }
        out
    }

    /// Prediction of tree `t` for one row (classic root-to-leaf walk); the
    /// reference the batch kernel must agree with bit-for-bit.
    pub fn predict_row(&self, t: usize, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut node = self.nodes[self.roots[t] as usize];
        while !node.is_leaf() {
            let next = if row[node.feature as usize] <= node.value {
                node.left
            } else {
                node.right
            };
            node = self.nodes[next as usize];
        }
        node.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Classifier;
    use crate::tree::TreeConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + r[1] > 1.0 { 1.0 } else { 0.0 })
            .collect();
        (Matrix::from_rows(&rows), labels)
    }

    fn fitted_trees(n_trees: usize) -> (Matrix, Vec<DecisionTree>) {
        let (x, labels) = data(300, 3);
        let trees: Vec<DecisionTree> = (0..n_trees)
            .map(|s| {
                DecisionTree::fit(
                    &TreeConfig {
                        max_features: Some(2),
                        ..TreeConfig::default()
                    },
                    x.view(),
                    &labels,
                    s as u64,
                )
            })
            .collect();
        (x, trees)
    }

    #[test]
    fn arena_holds_every_tree_contiguously() {
        let (_, trees) = fitted_trees(6);
        let forest = Forest::from_trees(3, trees.iter());
        assert_eq!(forest.n_trees(), 6);
        assert_eq!(
            forest.n_nodes(),
            trees.iter().map(|t| t.n_nodes()).sum::<usize>()
        );
        for (t, tree) in trees.iter().enumerate() {
            assert_eq!(forest.tree_depth(t), tree.depth());
        }
    }

    #[test]
    fn batch_traversal_is_bit_identical_to_per_tree_prediction() {
        let (x, trees) = fitted_trees(5);
        let forest = Forest::from_trees(3, trees.iter());
        // A batch spanning several ROW_BLOCK chunks.
        let batch = forest.predict_proba_batch(x.view());
        assert_eq!(batch.n_rows(), 5);
        assert_eq!(batch.n_cols(), x.n_rows());
        for (t, tree) in trees.iter().enumerate() {
            let reference = tree.predict_proba(x.view());
            assert_eq!(batch.row(t), reference.as_slice(), "tree {t}");
        }
    }

    #[test]
    fn per_row_arena_walk_matches_the_source_trees() {
        let (x, trees) = fitted_trees(4);
        let forest = Forest::from_trees(3, trees.iter());
        for (t, tree) in trees.iter().enumerate() {
            for row in x.view().head(50).rows() {
                assert_eq!(forest.predict_row(t, row), tree.predict_proba_one(row));
            }
        }
    }

    #[test]
    fn spliced_forests_predict_like_their_parts() {
        let (x, trees) = fitted_trees(6);
        let a = Forest::from_trees(3, trees[..2].iter());
        let b = Forest::from_trees(3, trees[2..].iter());
        let mut stacked = Forest::new(3);
        stacked.push_forest(&a);
        stacked.push_forest(&b);
        assert_eq!(stacked.n_trees(), 6);
        let whole = Forest::from_trees(3, trees.iter());
        let q = x.view().head(40);
        assert_eq!(
            stacked.predict_proba_batch(q).as_slice(),
            whole.predict_proba_batch(q).as_slice()
        );
    }

    #[test]
    fn serializes_as_one_unit() {
        let (_, trees) = fitted_trees(3);
        let forest = Forest::from_trees(3, trees.iter());
        let json = serde_json::to_string(&forest).expect("forest serializes");
        // One object, one node slab covering every tree.
        assert_eq!(json.matches("\"nodes\"").count(), 1);
        assert_eq!(json.matches("\"roots\"").count(), 1);
        assert!(json.contains("\"depths\""));
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn rejects_wrong_width_trees() {
        let (_, trees) = fitted_trees(1);
        let mut forest = Forest::new(7);
        forest.push_tree(&trees[0]);
    }

    #[test]
    #[should_panic(expected = "empty prediction batch")]
    fn rejects_empty_batches() {
        let (x, trees) = fitted_trees(1);
        let forest = Forest::from_trees(3, trees.iter());
        let empty = x.gather(&[]);
        let _ = forest.predict_proba_batch(empty.view());
    }
}
