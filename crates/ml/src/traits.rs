//! Common interfaces of the weak learners.

/// A fitted binary classifier producing positive-class probabilities.
pub trait Classifier: Send + Sync {
    /// Probability of the positive class for each feature row.
    fn predict_proba(&self, rows: &[Vec<f64>]) -> Vec<f64>;

    /// Probability of the positive class for one feature row.
    fn predict_proba_one(&self, row: &[f64]) -> f64 {
        self.predict_proba(std::slice::from_ref(&row.to_vec()))[0]
    }
}

/// A classifier that also quantifies the uncertainty of each prediction.
///
/// For Gaussian processes this is the posterior predictive variance — "an
/// actual metric intrinsic to the model" (Sec. V-C); for bagged ensembles it
/// is a heuristic based on the spread of member predictions.
pub trait UncertainClassifier: Classifier {
    /// `(probability, variance)` per feature row.
    fn predict_with_variance(&self, rows: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>);
}

/// Training-time interface: build a fitted classifier from rows, binary
/// labels (0.0 / 1.0) and a seed for any internal randomness.
pub trait Trainable: Sized {
    /// Fit the model. Implementations must be deterministic given `seed`.
    fn fit(&self, rows: &[Vec<f64>], labels: &[f64], seed: u64) -> Self;
}

/// Validate a (rows, labels) training pair, panicking with a clear message
/// when the shapes are inconsistent. Shared by every learner's `fit`.
pub fn validate_training_data(rows: &[Vec<f64>], labels: &[f64]) {
    assert!(!rows.is_empty(), "cannot fit on an empty training set");
    assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
    let k = rows[0].len();
    assert!(k > 0, "training rows need at least one feature");
    assert!(rows.iter().all(|r| r.len() == k), "ragged feature rows");
    assert!(
        labels.iter().all(|&y| y == 0.0 || y == 1.0),
        "labels must be 0.0 or 1.0"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);
    impl Classifier for Constant {
        fn predict_proba(&self, rows: &[Vec<f64>]) -> Vec<f64> {
            vec![self.0; rows.len()]
        }
    }

    #[test]
    fn default_predict_one_delegates_to_batch() {
        let c = Constant(0.42);
        assert_eq!(c.predict_proba_one(&[1.0, 2.0]), 0.42);
    }

    #[test]
    fn validation_accepts_good_data() {
        validate_training_data(&[vec![1.0, 2.0], vec![3.0, 4.0]], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn validation_rejects_empty() {
        validate_training_data(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn validation_rejects_mismatched_labels() {
        validate_training_data(&[vec![1.0]], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn validation_rejects_ragged_rows() {
        validate_training_data(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn validation_rejects_non_binary_labels() {
        validate_training_data(&[vec![1.0], vec![2.0]], &[0.5, 1.0]);
    }
}
